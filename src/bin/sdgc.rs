//! `sdgc` — the StateLang compiler and runner CLI.
//!
//! The command-line face of the java2sdg pipeline:
//!
//! ```text
//! sdgc check <file.sl>                 # parse + semantic checks
//! sdgc lint <file.sl>                  # all diagnostics + optimization report
//! sdgc verify <file.sl> [--dot]        # effect/replay-safety certificates
//! sdgc dot <file.sl>                   # translated SDG as Graphviz DOT
//! sdgc explain <file.sl>               # tasks, state, dispatch, allocation
//! sdgc run <file.sl> 'put k=1 v=hi' 'get k=1'   # deploy, fire requests
//! sdgc run <file.sl> 'put k=1 v=hi' --metrics json  # + metrics snapshot
//! ```
//!
//! `lint` runs the whole static-analysis pipeline without deploying:
//! program-level `SL01xx` diagnostics (rendered with source spans), the
//! optimization passes, and the graph-level `SL02xx` lints, plus a
//! before/after summary of what optimization bought.
//!
//! `verify` runs the interprocedural effect and replay-safety verifier
//! (`SL03xx`), prints any violations with source spans, and summarises the
//! per-element certificates the runtime uses to gate striping, delta
//! checkpointing and edge batching. `--dot` additionally emits the graph
//! with violations drawn onto the offending state elements.
//!
//! Each quoted request is `entry name=value ...`; values parse as
//! integers, floats, `true`/`false`, or fall back to strings. All requests
//! run against one deployment, in order.

use std::process::ExitCode;
use std::time::Duration;

use sdg::common::record;
use sdg::common::value::{Record, Value};
use sdg::graph::model::{Distribution, Sdg, TaskKind};
use sdg::prelude::RuntimeConfig;
use sdg::SdgProgram;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("sdgc: {message}");
            ExitCode::FAILURE
        }
    }
}

/// How `run` reports the deployment's metrics snapshot on exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricsMode {
    Json,
    Text,
}

fn parse_metrics_mode(v: &str) -> Result<MetricsMode, String> {
    match v {
        "json" => Ok(MetricsMode::Json),
        "text" => Ok(MetricsMode::Text),
        other => Err(format!("--metrics expects `json` or `text`, got `{other}`")),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let usage = "usage: sdgc <check|lint|verify|dot|explain|run> <file> [entry] [name=value ...] \
                 [--metrics json|text] [--dot]";
    let mut metrics: Option<MetricsMode> = None;
    let mut dot = false;
    let mut positional: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a == "--dot" {
            dot = true;
        } else if let Some(v) = a.strip_prefix("--metrics=") {
            metrics = Some(parse_metrics_mode(v)?);
        } else if a == "--metrics" {
            i += 1;
            metrics = Some(parse_metrics_mode(
                args.get(i).map(String::as_str).unwrap_or(""),
            )?);
        } else if a.starts_with("--") {
            return Err(format!("unknown flag `{a}`; {usage}"));
        } else {
            positional.push(args[i].clone());
        }
        i += 1;
    }
    let args = positional;
    let command = args.first().ok_or(usage)?;
    let path = args.get(1).ok_or(usage)?;
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    // `lint` wants to show *all* diagnostics, not stop at the first
    // compile error, so it handles the source itself.
    if command == "lint" {
        return lint_cmd(&source);
    }
    if command == "verify" {
        return verify_cmd(&source, dot);
    }
    let program = SdgProgram::compile(&source).map_err(|e| e.to_string())?;

    match command.as_str() {
        "check" => {
            println!(
                "ok: {} state element(s), {} task element(s), {} dataflow(s)",
                program.graph().states.len(),
                program.graph().tasks.len(),
                program.graph().flows.len()
            );
            Ok(())
        }
        "dot" => {
            print!("{}", program.to_dot_with_lints());
            Ok(())
        }
        "explain" => {
            explain(&program);
            Ok(())
        }
        "run" => {
            if args.len() < 3 {
                return Err("run needs at least one request: 'entry name=value ...'".into());
            }
            run_requests(program, &args[2..], metrics)
        }
        other => Err(format!("unknown command `{other}`; {usage}")),
    }
}

/// The `lint` subcommand: run every analysis layer, render everything it
/// found, and summarise what the optimization passes changed.
fn lint_cmd(source: &str) -> Result<(), String> {
    use sdg::ir::diag::{render_diagnostics, Severity};

    let program = sdg::ir::parser::parse_program(source).map_err(|e| e.to_string())?;
    let diags = sdg::ir::analysis::lint_program(&program);
    print!("{}", render_diagnostics(source, &diags));
    if diags.iter().any(|d| d.severity == Severity::Error) {
        return Err("program has lint errors; skipping translation".into());
    }

    let before = SdgProgram::compile(source).map_err(|e| e.to_string())?;
    let (after, report) = SdgProgram::compile_optimized(source).map_err(|e| e.to_string())?;
    let graph_diags = sdg::graph::lint(after.graph());
    print!("{}", render_diagnostics(source, &graph_diags));

    println!("optimization: {report}");
    println!(
        "task elements: {} -> {}",
        before.graph().tasks.len(),
        after.graph().tasks.len()
    );
    println!(
        "edge payload slots: {} -> {}",
        payload_slots(before.graph()),
        payload_slots(after.graph())
    );
    if graph_diags.iter().any(|d| d.severity == Severity::Error) {
        return Err("graph has lint errors".into());
    }
    if diags.is_empty() && graph_diags.is_empty() {
        println!("ok: no diagnostics");
    }
    Ok(())
}

/// The `verify` subcommand: run the `SL03xx` effect and replay-safety
/// verifier and show which runtime optimizations each element is certified
/// for.
fn verify_cmd(source: &str, dot: bool) -> Result<(), String> {
    use sdg::ir::diag::{render_diagnostics, Severity};

    // Surface semantic errors with spans before attempting translation.
    let parsed = sdg::ir::parser::parse_program(source).map_err(|e| e.to_string())?;
    let diags = sdg::ir::analysis::lint_program(&parsed);
    if diags.iter().any(|d| d.severity == Severity::Error) {
        print!("{}", render_diagnostics(source, &diags));
        return Err("program has lint errors; skipping verification".into());
    }

    let program = SdgProgram::compile(source).map_err(|e| e.to_string())?;
    let report = program
        .verify_report()
        .ok_or("translation did not attach a verify report")?;
    print!("{}", render_diagnostics(source, &report.diagnostics));

    println!("state element certificates:");
    for state in &program.graph().states {
        let Some(cert) = report.se(&state.name) else {
            continue;
        };
        let verdict = if cert.holds() {
            "certified".to_string()
        } else {
            format!("uncertified [{}]", cert.violations.join(", "))
        };
        println!(
            "  {:<12} key-local={} replay-safe={} merge-sound={} — {verdict}",
            state.name,
            yn(cert.key_local),
            yn(cert.replay_safe),
            yn(cert.merge_sound),
        );
    }
    println!("task element certificates:");
    for task in &program.graph().tasks {
        let Some(cert) = report.te(&task.name) else {
            continue;
        };
        println!(
            "  {:<14} effect={} deterministic={}",
            task.name,
            cert.effect,
            yn(cert.deterministic),
        );
    }
    if report.is_clean() {
        println!("ok: all elements certified; runtime optimizations fully enabled");
    } else {
        println!(
            "{} verification finding(s); affected optimizations run in safe mode",
            report.diagnostics.len()
        );
    }
    if dot {
        print!("{}", program.to_dot_with_verify());
    }
    Ok(())
}

fn yn(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

/// Total live variables carried across all dataflow edges — the metric
/// the liveness-driven payload narrowing shrinks.
fn payload_slots(sdg: &Sdg) -> usize {
    sdg.flows.iter().map(|f| f.live_vars.len()).sum()
}

fn explain(program: &SdgProgram) {
    println!("state elements:");
    for state in &program.graph().states {
        let dist = match state.dist {
            Distribution::Local => "local".to_string(),
            Distribution::Partitioned { dim } => format!("partitioned by {dim}"),
            Distribution::Partial => "partial (replicated, merge to reconcile)".to_string(),
        };
        println!("  {:<12} {} — {dist}", state.name, state.ty);
    }
    println!("task elements:");
    for task in &program.graph().tasks {
        let role = match &task.kind {
            TaskKind::Entry { method } => format!("entry point of {method}()"),
            TaskKind::Compute => "pipeline stage".to_string(),
        };
        let access = match &task.access {
            None => "stateless".to_string(),
            Some(a) => {
                let state = program
                    .graph()
                    .state(a.state)
                    .map(|s| s.name.clone())
                    .unwrap_or_else(|_| a.state.to_string());
                let rw = if a.writes { "read/write" } else { "read" };
                format!("{rw} {state} ({:?})", a.mode)
            }
        };
        println!("  {:<14} {role}; {access}", task.name);
    }
    println!("dataflows:");
    for flow in &program.graph().flows {
        let from = &program.graph().task(flow.from).expect("valid").name;
        let to = &program.graph().task(flow.to).expect("valid").name;
        println!(
            "  {from} -> {to}  [{}] carrying {{{}}}",
            flow.dispatch,
            flow.live_vars.join(", ")
        );
    }
    let allocation = sdg::graph::allocate(program.graph());
    println!("allocation: {} node(s)", allocation.num_nodes);
    for task in &program.graph().tasks {
        println!(
            "  {:<14} -> {}",
            task.name,
            allocation.node_of_task(task.id)
        );
    }
}

fn parse_payload(pairs: &[String]) -> Result<Record, String> {
    let mut payload = record! {};
    for pair in pairs {
        let (name, raw) = pair
            .split_once('=')
            .ok_or_else(|| format!("argument `{pair}` is not name=value"))?;
        let value = if let Ok(i) = raw.parse::<i64>() {
            Value::Int(i)
        } else if let Ok(x) = raw.parse::<f64>() {
            Value::Float(x)
        } else if raw == "true" || raw == "false" {
            Value::Bool(raw == "true")
        } else {
            Value::str(raw)
        };
        payload.set(name, value);
    }
    Ok(payload)
}

fn run_requests(
    program: SdgProgram,
    requests: &[String],
    metrics: Option<MetricsMode>,
) -> Result<(), String> {
    let deployment = program
        .deploy(RuntimeConfig::default())
        .map_err(|e| e.to_string())?;
    for request in requests {
        let mut parts = request.split_whitespace();
        let entry = parts
            .next()
            .ok_or_else(|| format!("empty request `{request}`"))?;
        let pairs: Vec<String> = parts.map(str::to_owned).collect();
        let payload = parse_payload(&pairs)?;
        deployment
            .submit(entry, payload)
            .map_err(|e| e.to_string())?;
        if !deployment.quiesce(Duration::from_secs(30)) {
            return Err("deployment did not drain within 30s".into());
        }
        while let Ok(event) = deployment.outputs().try_recv() {
            println!(
                "{entry} -> {} (latency {:?})",
                event.value,
                event.latency.unwrap_or_default()
            );
        }
    }
    match metrics {
        Some(MetricsMode::Json) => println!("{}", deployment.metrics().to_json()),
        Some(MetricsMode::Text) => print!("{}", deployment.metrics().to_text()),
        None => {}
    }
    let errors = deployment.stats().errors;
    deployment.shutdown();
    if errors > 0 {
        return Err(format!("{errors} task error(s) during execution"));
    }
    Ok(())
}

//! # sdg — Stateful Dataflow Graphs
//!
//! A from-scratch Rust reproduction of *"Making State Explicit for
//! Imperative Big Data Processing"* (Fernandez, Migliavacca, Kalyvianaki,
//! Pietzuch — USENIX ATC 2014).
//!
//! Imperative programs with annotated mutable state (`@Partitioned`,
//! `@Partial`, `@Global`, `@Collection`) are statically analysed and
//! translated into **stateful dataflow graphs**: pipelined task elements
//! with explicit, distributed state elements, executed on a simulated
//! cluster with reactive scaling and asynchronous checkpoint-based failure
//! recovery.
//!
//! This umbrella crate re-exports the whole workspace; see [`core`] for
//! the high-level entry point [`core::SdgProgram`] and [`apps`] for the
//! paper's applications (collaborative filtering, key/value store,
//! wordcount, logistic regression).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The paper's applications, ready to deploy.
pub use sdg_apps as apps;

/// Comparison engines (micro-batch, Naiad-like, Spark-like).
pub use sdg_baselines as baselines;

/// Failure recovery: checkpoints, buffers, m-to-n restore.
pub use sdg_checkpoint as checkpoint;

/// Shared data model and utilities.
pub use sdg_common as common;

/// High-level facade (compile + deploy).
pub use sdg_core as core;

/// SDG structure, validation and allocation.
pub use sdg_graph as graph;

/// StateLang language and analyses.
pub use sdg_ir as ir;

/// The pipelined execution engine.
pub use sdg_runtime as runtime;

/// State element data structures.
pub use sdg_state as state;

/// Program-to-SDG translation.
pub use sdg_translate as translate;

pub use sdg_core::prelude;
pub use sdg_core::SdgProgram;

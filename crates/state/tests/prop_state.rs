//! Property-based tests for state structures.
//!
//! The central invariant of §5's dirty-state protocol: a sequence of
//! operations executed with an arbitrary checkpoint/consolidate pair
//! inserted anywhere must be observationally identical to the same sequence
//! executed without any checkpoint.

use proptest::prelude::*;
use sdg_common::value::{Key, Value};
use sdg_state::partition::PartitionDim;
use sdg_state::{DenseVector, KeyedTable, SparseMatrix, StateStore, StateType};

#[derive(Debug, Clone)]
enum TableOp {
    Put(i64, i64),
    Remove(i64),
}

fn arb_table_ops() -> impl Strategy<Value = Vec<TableOp>> {
    prop::collection::vec(
        prop_oneof![
            (0i64..32, any::<i64>()).prop_map(|(k, v)| TableOp::Put(k, v)),
            (0i64..32).prop_map(TableOp::Remove),
        ],
        0..64,
    )
}

fn apply_table(t: &mut KeyedTable, op: &TableOp) {
    match op {
        TableOp::Put(k, v) => {
            t.put(Key::Int(*k), Value::Int(*v));
        }
        TableOp::Remove(k) => {
            t.remove(&Key::Int(*k));
        }
    }
}

fn table_contents(t: &KeyedTable) -> Vec<(Key, Value)> {
    let mut out = Vec::new();
    t.for_each(|k, v| out.push((k.clone(), v.clone())));
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

proptest! {
    /// Checkpointing at any point must not change the visible table state.
    #[test]
    fn table_dirty_mode_is_transparent(
        ops in arb_table_ops(),
        ckpt_at in 0usize..64,
        cons_at in 0usize..64,
    ) {
        let (ckpt_at, cons_at) = (ckpt_at.min(ops.len()), cons_at.min(ops.len()));
        let (ckpt_at, cons_at) = if ckpt_at <= cons_at { (ckpt_at, cons_at) } else { (cons_at, ckpt_at) };

        let mut plain = KeyedTable::new();
        for op in &ops {
            apply_table(&mut plain, op);
        }

        let mut ckpt = KeyedTable::new();
        let mut snapshot = None;
        for (i, op) in ops.iter().enumerate() {
            if i == ckpt_at {
                snapshot = Some(ckpt.begin_checkpoint().unwrap());
            }
            if i == cons_at && snapshot.is_some() {
                ckpt.consolidate().unwrap();
                snapshot = None;
            }
            apply_table(&mut ckpt, op);
        }
        if ckpt_at == ops.len() {
            snapshot = Some(ckpt.begin_checkpoint().unwrap());
        }
        if snapshot.is_some() {
            ckpt.consolidate().unwrap();
        }

        prop_assert_eq!(table_contents(&plain), table_contents(&ckpt));
        prop_assert_eq!(plain.len(), ckpt.len());
        prop_assert_eq!(plain.approx_bytes(), ckpt.approx_bytes());
    }

    /// The snapshot must reflect exactly the state at checkpoint time,
    /// regardless of later writes.
    #[test]
    fn table_snapshot_is_frozen(ops_before in arb_table_ops(), ops_after in arb_table_ops()) {
        let mut t = KeyedTable::new();
        for op in &ops_before {
            apply_table(&mut t, op);
        }
        let expected = table_contents(&t);
        let snap = t.begin_checkpoint().unwrap();
        for op in &ops_after {
            apply_table(&mut t, op);
        }
        let mut got: Vec<(Key, Value)> = snap.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        got.sort_by(|a, b| a.0.cmp(&b.0));
        prop_assert_eq!(got, expected);
        t.consolidate().unwrap();
    }

    /// Export → import must reproduce the table exactly.
    #[test]
    fn table_export_import_roundtrips(ops in arb_table_ops()) {
        let mut t = KeyedTable::new();
        for op in &ops {
            apply_table(&mut t, op);
        }
        let mut restored = KeyedTable::new();
        restored.import_entries(&t.export_entries()).unwrap();
        prop_assert_eq!(table_contents(&restored), table_contents(&t));
    }

    /// Hash-splitting into n parts and absorbing them back must be lossless,
    /// and parts must be disjoint.
    #[test]
    fn table_split_absorb_roundtrips(ops in arb_table_ops(), n in 1usize..6) {
        let mut t = KeyedTable::new();
        for op in &ops {
            apply_table(&mut t, op);
        }
        let parts = t.split_by_hash(n);
        prop_assert_eq!(parts.iter().map(KeyedTable::len).sum::<usize>(), t.len());
        let mut merged = KeyedTable::new();
        for p in &parts {
            merged.absorb(p);
        }
        prop_assert_eq!(table_contents(&merged), table_contents(&t));
    }

    /// Matrix dirty mode must be transparent for set/add sequences.
    #[test]
    fn matrix_dirty_mode_is_transparent(
        ops in prop::collection::vec((0i64..8, 0i64..8, -100i64..100), 0..48),
        ckpt_at in 0usize..48,
    ) {
        let ckpt_at = ckpt_at.min(ops.len());
        let mut plain = SparseMatrix::new();
        for &(r, c, v) in &ops {
            plain.add(r, c, v as f64);
        }
        let mut ckpt = SparseMatrix::new();
        let mut snap = None;
        for (i, &(r, c, v)) in ops.iter().enumerate() {
            if i == ckpt_at {
                snap = Some(ckpt.begin_checkpoint().unwrap());
            }
            ckpt.add(r, c, v as f64);
        }
        if snap.is_none() {
            snap = Some(ckpt.begin_checkpoint().unwrap());
        }
        drop(snap);
        ckpt.consolidate().unwrap();

        prop_assert_eq!(plain.nnz(), ckpt.nnz());
        for r in 0..8 {
            prop_assert_eq!(plain.row(r), ckpt.row(r));
        }
    }

    /// Matrix multiply must agree with a dense reference implementation.
    #[test]
    fn matrix_multiply_matches_dense(
        cells in prop::collection::vec((0i64..6, 0i64..6, -10i64..10), 0..24),
        x in prop::collection::vec(-10i64..10, 6),
    ) {
        let mut m = SparseMatrix::new();
        let mut dense = [[0.0f64; 6]; 6];
        for &(r, c, v) in &cells {
            m.set(r, c, v as f64);
            dense[r as usize][c as usize] = v as f64;
        }
        let xs: Vec<(i64, f64)> = x.iter().enumerate().map(|(i, &v)| (i as i64, v as f64)).collect();
        let got: std::collections::HashMap<i64, f64> = m.multiply(&xs).into_iter().collect();
        for (r, row) in dense.iter().enumerate() {
            let expected: f64 = row.iter().zip(&x).map(|(a, &b)| a * b as f64).sum();
            let gv = got.get(&(r as i64)).copied().unwrap_or(0.0);
            prop_assert!((gv - expected).abs() < 1e-9, "row {}: {} != {}", r, gv, expected);
        }
    }

    /// Matrix split along either dimension must partition nnz exactly.
    #[test]
    fn matrix_split_is_total(
        cells in prop::collection::vec((0i64..16, 0i64..16, 1i64..10), 0..48),
        n in 1usize..5,
        by_row in any::<bool>(),
    ) {
        let mut m = SparseMatrix::new();
        for &(r, c, v) in &cells {
            m.set(r, c, v as f64);
        }
        let dim = if by_row { PartitionDim::Row } else { PartitionDim::Col };
        let parts = m.split_by_hash(dim, n);
        prop_assert_eq!(parts.iter().map(SparseMatrix::nnz).sum::<usize>(), m.nnz());
    }

    /// Dense vector dirty mode must be transparent.
    #[test]
    fn vector_dirty_mode_is_transparent(
        ops in prop::collection::vec((0usize..64, -100i64..100), 0..48),
        ckpt_at in 0usize..48,
    ) {
        let ckpt_at = ckpt_at.min(ops.len());
        let mut plain = DenseVector::new();
        for &(i, v) in &ops {
            plain.set(i, v as f64);
        }
        let mut ckpt = DenseVector::new();
        let mut snap = None;
        for (j, &(i, v)) in ops.iter().enumerate() {
            if j == ckpt_at {
                snap = Some(ckpt.begin_checkpoint().unwrap());
            }
            ckpt.set(i, v as f64);
        }
        if snap.is_none() {
            let _ = ckpt.begin_checkpoint().unwrap();
        }
        ckpt.consolidate().unwrap();
        prop_assert_eq!(plain.to_vec(), ckpt.to_vec());
    }

    /// merge_sum must equal elementwise addition of all parts.
    #[test]
    fn vector_merge_sum_is_elementwise(
        parts in prop::collection::vec(prop::collection::vec(-10i64..10, 0..12), 0..5),
    ) {
        let vecs: Vec<DenseVector> = parts
            .iter()
            .map(|p| DenseVector::from_vec(p.iter().map(|&v| v as f64).collect()))
            .collect();
        let merged = DenseVector::merge_sum(vecs.iter());
        let max_len = parts.iter().map(Vec::len).max().unwrap_or(0);
        prop_assert_eq!(merged.len(), max_len);
        for i in 0..max_len {
            let expected: f64 = parts
                .iter()
                .map(|p| p.get(i).copied().unwrap_or(0) as f64)
                .sum();
            prop_assert!((merged.get(i) - expected).abs() < 1e-9);
        }
    }

    /// Snapshot-to-entries must equal live export for every structure type.
    #[test]
    fn snapshot_entries_equal_live_export(
        table_ops in arb_table_ops(),
        cells in prop::collection::vec((0i64..8, 0i64..8, 1i64..10), 0..16),
        dense in prop::collection::vec(-10i64..10, 0..300),
    ) {
        let mut stores = Vec::new();
        let mut t = StateStore::new(StateType::Table);
        for op in &table_ops {
            apply_table(t.as_table().unwrap(), op);
        }
        stores.push(t);
        let mut m = StateStore::new(StateType::Matrix);
        for &(r, c, v) in &cells {
            m.as_matrix().unwrap().set(r, c, v as f64);
        }
        stores.push(m);
        let mut v = StateStore::new(StateType::Vector);
        for (i, &x) in dense.iter().enumerate() {
            v.as_vector().unwrap().set(i, x as f64);
        }
        stores.push(v);

        for mut store in stores {
            let mut live = store.export_entries();
            let snap = store.begin_checkpoint().unwrap();
            let mut from_snap = snap.to_entries();
            store.consolidate().unwrap();
            live.sort_by(|a, b| a.key.cmp(&b.key));
            from_snap.sort_by(|a, b| a.key.cmp(&b.key));
            prop_assert_eq!(live, from_snap);
        }
    }
}

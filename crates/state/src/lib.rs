//! State element (SE) data structures for stateful dataflow graphs.
//!
//! §3.2 of the paper requires SEs to be "efficient data structures, such as
//! hash tables or indexed sparse matrices" that support:
//!
//! - **fine-grained mutable access** on the processing path;
//! - **dirty state** (§5): while a checkpoint of the structure is being
//!   serialised, updates land in a separate overlay and reads consult the
//!   overlay first, so processing continues with minimal interruption;
//! - **dynamic partitioning** for partitioned SEs (split by access key
//!   across instances, re-split on scale-out and recovery);
//! - **entry-level export/import** so checkpoints can be chunked and
//!   restored m-to-n (§5, Fig. 4).
//!
//! The dirty-state design here makes checkpoint initiation O(1): the base
//! structure lives behind an [`std::sync::Arc`], `begin_checkpoint` hands the
//! serialiser a clone of that `Arc` and flips the structure into dirty mode.
//! While dirty, the base is never mutated — writes go to an overlay map and
//! reads consult the overlay first — so the serialiser walks a consistent
//! snapshot without holding any lock. `consolidate` folds the overlay back
//! into the base once the checkpoint is durable.
//!
//! Three concrete structures cover the paper's applications:
//! [`table::KeyedTable`] (key/value store, wordcount), [`matrix::SparseMatrix`]
//! (collaborative filtering's `userItem` and `coOcc`), and
//! [`dense::DenseVector`] (logistic regression's weights). The
//! [`store::StateStore`] enum gives the runtime a uniform, enum-dispatched
//! view of all three.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dense;
pub mod entry;
pub mod matrix;
pub mod partition;
pub mod store;
pub mod table;

pub use dense::DenseVector;
pub use entry::StateEntry;
pub use matrix::SparseMatrix;
pub use partition::PartitionStrategy;
pub use store::{StateSnapshot, StateStore, StateType};
pub use table::KeyedTable;

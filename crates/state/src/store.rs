//! A uniform, enum-dispatched view over all SE data structures.
//!
//! The runtime stores every SE instance as a [`StateStore`] so task-element
//! code (interpreted or native) and the checkpoint subsystem can operate on
//! state without knowing the concrete structure. Enum dispatch keeps the
//! hot path free of virtual calls and the whole workspace free of `unsafe`.

use std::collections::HashMap;
use std::sync::Arc;

use sdg_common::codec::encode_to_vec;
use sdg_common::error::{SdgError, SdgResult};
use sdg_common::value::{Key, Value};

use crate::dense::DenseVector;
use crate::entry::StateEntry;
use crate::matrix::SparseMatrix;
use crate::partition::PartitionDim;
use crate::table::KeyedTable;

/// The declared structure of a state element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateType {
    /// A key/value dictionary ([`KeyedTable`]).
    Table,
    /// A sparse matrix ([`SparseMatrix`]).
    Matrix,
    /// A dense vector ([`DenseVector`]).
    Vector,
}

impl std::fmt::Display for StateType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateType::Table => write!(f, "Table"),
            StateType::Matrix => write!(f, "Matrix"),
            StateType::Vector => write!(f, "Vector"),
        }
    }
}

/// One runtime instance of a state element.
#[derive(Debug, Clone)]
pub enum StateStore {
    /// A key/value table.
    Table(KeyedTable),
    /// A sparse matrix.
    Matrix(SparseMatrix),
    /// A dense vector.
    Vector(DenseVector),
}

impl StateStore {
    /// Creates an empty store of the given type.
    pub fn new(ty: StateType) -> Self {
        match ty {
            StateType::Table => StateStore::Table(KeyedTable::new()),
            StateType::Matrix => StateStore::Matrix(SparseMatrix::new()),
            StateType::Vector => StateStore::Vector(DenseVector::new()),
        }
    }

    /// Returns the structure type.
    pub fn state_type(&self) -> StateType {
        match self {
            StateStore::Table(_) => StateType::Table,
            StateStore::Matrix(_) => StateType::Matrix,
            StateStore::Vector(_) => StateType::Vector,
        }
    }

    /// Approximates the in-memory footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        match self {
            StateStore::Table(t) => t.approx_bytes(),
            StateStore::Matrix(m) => m.approx_bytes(),
            StateStore::Vector(v) => v.approx_bytes(),
        }
    }

    /// Returns `true` while a checkpoint snapshot is outstanding.
    pub fn is_checkpointing(&self) -> bool {
        match self {
            StateStore::Table(t) => t.is_checkpointing(),
            StateStore::Matrix(m) => m.is_checkpointing(),
            StateStore::Vector(v) => v.is_checkpointing(),
        }
    }

    /// Approximate bytes held by the dirty overlay (0 outside a
    /// checkpoint).
    pub fn dirty_bytes(&self) -> usize {
        match self {
            StateStore::Table(t) => t.dirty_bytes(),
            StateStore::Matrix(m) => m.dirty_bytes(),
            StateStore::Vector(v) => v.dirty_bytes(),
        }
    }

    /// Enables dirty-chunk tracking for incremental checkpoints.
    ///
    /// Returns `true` when the structure supports tracking (tables);
    /// matrices and dense vectors fall back to full checkpoints and
    /// return `false`.
    pub fn enable_chunk_tracking(&mut self, chunks: usize) -> bool {
        match self {
            StateStore::Table(t) => {
                t.enable_chunk_tracking(chunks);
                true
            }
            StateStore::Matrix(_) | StateStore::Vector(_) => false,
        }
    }

    /// Returns the tracked chunk-space size, or `None` when tracking is off.
    pub fn tracked_chunks(&self) -> Option<usize> {
        match self {
            StateStore::Table(t) => t.tracked_chunks(),
            StateStore::Matrix(_) | StateStore::Vector(_) => None,
        }
    }

    /// Number of chunks currently marked dirty (0 when tracking is off).
    pub fn dirty_chunk_count(&self) -> usize {
        match self {
            StateStore::Table(t) => t.dirty_chunk_count(),
            StateStore::Matrix(_) | StateStore::Vector(_) => 0,
        }
    }

    /// Takes and clears the set of dirty chunk ids (sorted).
    ///
    /// `None` when tracking is not enabled for this structure.
    pub fn take_dirty_chunks(&mut self) -> Option<Vec<u32>> {
        match self {
            StateStore::Table(t) => t.take_dirty_chunks(),
            StateStore::Matrix(_) | StateStore::Vector(_) => None,
        }
    }

    /// Marks every tracked chunk dirty (used after failed checkpoints and
    /// bulk mutations that bypass `put`/`remove`).
    pub fn mark_all_dirty(&mut self) {
        if let StateStore::Table(t) = self {
            t.mark_all_dirty();
        }
    }

    /// Accesses the table variant.
    pub fn as_table(&mut self) -> SdgResult<&mut KeyedTable> {
        match self {
            StateStore::Table(t) => Ok(t),
            other => Err(SdgError::type_mismatch("Table", other.type_name())),
        }
    }

    /// Accesses the matrix variant.
    pub fn as_matrix(&mut self) -> SdgResult<&mut SparseMatrix> {
        match self {
            StateStore::Matrix(m) => Ok(m),
            other => Err(SdgError::type_mismatch("Matrix", other.type_name())),
        }
    }

    /// Accesses the vector variant.
    pub fn as_vector(&mut self) -> SdgResult<&mut DenseVector> {
        match self {
            StateStore::Vector(v) => Ok(v),
            other => Err(SdgError::type_mismatch("Vector", other.type_name())),
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            StateStore::Table(_) => "Table",
            StateStore::Matrix(_) => "Matrix",
            StateStore::Vector(_) => "Vector",
        }
    }

    /// Begins a checkpoint, returning an O(1) consistent snapshot and
    /// flipping the structure into dirty mode (§5).
    pub fn begin_checkpoint(&mut self) -> SdgResult<StateSnapshot> {
        match self {
            StateStore::Table(t) => Ok(StateSnapshot::Table(t.begin_checkpoint()?)),
            StateStore::Matrix(m) => Ok(StateSnapshot::Matrix(m.begin_checkpoint()?)),
            StateStore::Vector(v) => Ok(StateSnapshot::Vector(v.begin_checkpoint()?)),
        }
    }

    /// Folds dirty writes into the base structure, ending dirty mode.
    pub fn consolidate(&mut self) -> SdgResult<()> {
        match self {
            StateStore::Table(t) => t.consolidate(),
            StateStore::Matrix(m) => m.consolidate(),
            StateStore::Vector(v) => v.consolidate(),
        }
    }

    /// Exports the visible state as canonical entries.
    pub fn export_entries(&self) -> Vec<StateEntry> {
        match self {
            StateStore::Table(t) => t.export_entries(),
            StateStore::Matrix(m) => m.export_entries(),
            StateStore::Vector(v) => v.export_entries(),
        }
    }

    /// Imports entries previously produced by the same structure type.
    pub fn import_entries(&mut self, entries: &[StateEntry]) -> SdgResult<()> {
        match self {
            StateStore::Table(t) => t.import_entries(entries),
            StateStore::Matrix(m) => m.import_entries(entries),
            StateStore::Vector(v) => v.import_entries(entries),
        }
    }

    /// Merges `entries` into this store **additively**: numeric values are
    /// summed with whatever the store already holds instead of overwriting
    /// it (the folding direction of a `@Partial` merge, where each replica
    /// contributes an independent partial aggregate).
    ///
    /// - Tables: `Int`/`Float` values are summed per key; equal-length
    ///   numeric lists are summed element-wise; anything else overwrites
    ///   (matching [`StateStore::import_entries`] for non-additive values).
    /// - Matrices: cell-wise sum.
    /// - Vectors: element-wise sum, extending the length as needed.
    pub fn merge_additive(&mut self, entries: &[StateEntry]) -> SdgResult<()> {
        match self {
            StateStore::Table(t) => {
                for e in entries {
                    let key: Key = sdg_common::codec::decode_from_slice(&e.key)?;
                    let incoming: Value = sdg_common::codec::decode_from_slice(&e.value)?;
                    let merged = match (t.get(&key), incoming) {
                        (Some(Value::Int(a)), Value::Int(b)) => Value::Int(a + b),
                        (Some(Value::Float(a)), Value::Float(b)) => Value::Float(a + b),
                        (Some(Value::Int(a)), Value::Float(b)) => Value::Float(a as f64 + b),
                        (Some(Value::Float(a)), Value::Int(b)) => Value::Float(a + b as f64),
                        (Some(Value::List(a)), Value::List(b)) if a.len() == b.len() => match a
                            .iter()
                            .zip(&b)
                            .map(|(x, y)| match (x, y) {
                                (Value::Int(x), Value::Int(y)) => Some(Value::Int(x + y)),
                                (Value::Float(x), Value::Float(y)) => Some(Value::Float(x + y)),
                                _ => None,
                            })
                            .collect::<Option<Vec<Value>>>()
                        {
                            Some(summed) => Value::List(summed),
                            None => Value::List(b),
                        },
                        (_, incoming) => incoming,
                    };
                    t.put(key, merged);
                }
                Ok(())
            }
            StateStore::Matrix(m) => {
                let mut other = SparseMatrix::new();
                other.import_entries(entries)?;
                for row in other.row_indices() {
                    for (col, v) in other.row(row) {
                        let cur = m.get(row, col);
                        m.set(row, col, cur + v);
                    }
                }
                Ok(())
            }
            StateStore::Vector(v) => {
                let mut other = DenseVector::new();
                other.import_entries(entries)?;
                for i in 0..other.len() {
                    let delta = other.get(i);
                    if delta != 0.0 {
                        v.add(i, delta);
                    }
                }
                Ok(())
            }
        }
    }

    /// Splits a partitioned SE into `n` disjoint instances.
    ///
    /// `dim` selects the matrix axis and is ignored for tables. Dense
    /// vectors do not support partitioning (they are partial-only state) and
    /// report an error.
    pub fn split_by_hash(&self, n: usize, dim: PartitionDim) -> SdgResult<Vec<StateStore>> {
        match self {
            StateStore::Table(t) => Ok(t
                .split_by_hash(n)
                .into_iter()
                .map(StateStore::Table)
                .collect()),
            StateStore::Matrix(m) => Ok(m
                .split_by_hash(dim, n)
                .into_iter()
                .map(StateStore::Matrix)
                .collect()),
            StateStore::Vector(_) => Err(SdgError::State(
                "dense vectors cannot be partitioned; declare them @Partial".into(),
            )),
        }
    }

    /// Drops all entries not belonging to partition `idx` of `n`.
    pub fn retain_partition(&mut self, idx: usize, n: usize, dim: PartitionDim) -> SdgResult<()> {
        match self {
            StateStore::Table(t) => {
                t.retain_partition(idx, n);
                Ok(())
            }
            StateStore::Matrix(m) => {
                m.retain_partition(dim, idx, n);
                Ok(())
            }
            StateStore::Vector(_) => Err(SdgError::State(
                "dense vectors cannot be partitioned; declare them @Partial".into(),
            )),
        }
    }
}

/// An immutable, consistent snapshot of one SE instance.
///
/// Snapshots are `Arc` clones of the base structure, so they can be
/// serialised from a checkpoint thread while processing continues on the
/// dirty overlay.
#[derive(Debug, Clone)]
pub enum StateSnapshot {
    /// Snapshot of a [`KeyedTable`].
    Table(Arc<HashMap<Key, Value>>),
    /// Snapshot of a [`SparseMatrix`] (rows map).
    Matrix(Arc<HashMap<i64, HashMap<i64, f64>>>),
    /// Snapshot of a [`DenseVector`].
    Vector(Arc<Vec<f64>>),
}

impl StateSnapshot {
    /// Returns the structure type the snapshot came from.
    pub fn state_type(&self) -> StateType {
        match self {
            StateSnapshot::Table(_) => StateType::Table,
            StateSnapshot::Matrix(_) => StateType::Matrix,
            StateSnapshot::Vector(_) => StateType::Vector,
        }
    }

    /// Approximates the snapshot size in bytes.
    pub fn approx_bytes(&self) -> usize {
        match self {
            StateSnapshot::Table(map) => map
                .iter()
                .map(|(k, v)| k.approx_size() + v.approx_size() + 16)
                .sum(),
            StateSnapshot::Matrix(rows) => rows.values().map(|r| r.len() * 32).sum(),
            StateSnapshot::Vector(v) => v.len() * 8,
        }
    }

    /// Serialises the snapshot into canonical state entries.
    ///
    /// This runs on the checkpoint thread, off the processing path.
    pub fn to_entries(&self) -> Vec<StateEntry> {
        match self {
            StateSnapshot::Table(map) => {
                let mut out = Vec::with_capacity(map.len());
                for (k, v) in map.iter() {
                    out.push(StateEntry::new(encode_to_vec(k), encode_to_vec(v)));
                }
                out
            }
            StateSnapshot::Matrix(rows) => {
                let mut out = Vec::with_capacity(rows.len());
                let mut row_ids: Vec<i64> = rows.keys().copied().collect();
                row_ids.sort_unstable();
                for row in row_ids {
                    let mut cells: Vec<(i64, f64)> =
                        rows[&row].iter().map(|(&c, &v)| (c, v)).collect();
                    if cells.is_empty() {
                        continue;
                    }
                    cells.sort_by_key(|&(c, _)| c);
                    let value = Value::List(
                        cells
                            .into_iter()
                            .map(|(c, v)| Value::List(vec![Value::Int(c), Value::Float(v)]))
                            .collect(),
                    );
                    out.push(StateEntry::new(
                        encode_to_vec(&Key::Int(row)),
                        encode_to_vec(&value),
                    ));
                }
                out
            }
            StateSnapshot::Vector(v) => {
                // Reuse the vector's own export by wrapping the snapshot.
                DenseVector::from_vec(v.as_ref().clone()).export_entries()
            }
        }
    }

    /// Serialises the snapshot into `chunks` entry buckets using the same
    /// chunk identity the dirty-chunk tracker uses (`Key::stable_hash`), so
    /// a delta checkpoint can serialise exactly the chunks that went dirty.
    ///
    /// # Panics
    ///
    /// Panics if `chunks` is zero.
    pub fn to_entries_chunked(&self, chunks: usize) -> Vec<Vec<StateEntry>> {
        self.to_entries_for(chunks, &vec![true; chunks])
    }

    /// Like [`StateSnapshot::to_entries_chunked`], but only encodes entries
    /// belonging to the chunks flagged in `wanted`; the other buckets stay
    /// empty and their entries are never serialised. This is the delta
    /// fast path: encoding cost scales with the dirty fraction.
    ///
    /// # Panics
    ///
    /// Panics if `chunks` is zero or `wanted.len() != chunks`.
    pub fn to_entries_for(&self, chunks: usize, wanted: &[bool]) -> Vec<Vec<StateEntry>> {
        assert!(chunks > 0, "chunk count must be positive");
        assert_eq!(wanted.len(), chunks, "chunk mask size mismatch");
        let mut out: Vec<Vec<StateEntry>> = (0..chunks).map(|_| Vec::new()).collect();
        match self {
            StateSnapshot::Table(map) => {
                for (k, v) in map.iter() {
                    let idx = (k.stable_hash() % chunks as u64) as usize;
                    if wanted[idx] {
                        out[idx].push(StateEntry::new(encode_to_vec(k), encode_to_vec(v)));
                    }
                }
            }
            StateSnapshot::Matrix(_) => {
                for entry in self.to_entries() {
                    // Matrix entries are keyed by the encoded row id; decode
                    // it back so chunk identity matches the structured hash.
                    let idx = sdg_common::codec::decode_from_slice::<Key>(&entry.key)
                        .map(|k| (k.stable_hash() % chunks as u64) as usize)
                        .unwrap_or_else(|_| entry.chunk_of(chunks));
                    if wanted[idx] {
                        out[idx].push(entry);
                    }
                }
            }
            StateSnapshot::Vector(_) => {
                for entry in self.to_entries() {
                    let idx = entry.chunk_of(chunks);
                    if wanted[idx] {
                        out[idx].push(entry);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_creates_matching_type() {
        for ty in [StateType::Table, StateType::Matrix, StateType::Vector] {
            assert_eq!(StateStore::new(ty).state_type(), ty);
        }
    }

    #[test]
    fn typed_accessors_enforce_variant() {
        let mut s = StateStore::new(StateType::Table);
        assert!(s.as_table().is_ok());
        assert!(s.as_matrix().is_err());
        assert!(s.as_vector().is_err());
    }

    #[test]
    fn snapshot_entries_match_live_export() {
        let mut s = StateStore::new(StateType::Table);
        let t = s.as_table().unwrap();
        for i in 0..10 {
            t.put(Key::Int(i), Value::Int(i * 2));
        }
        let mut live = s.export_entries();
        let snap = s.begin_checkpoint().unwrap();
        let mut from_snap = snap.to_entries();
        live.sort_by(|a, b| a.key.cmp(&b.key));
        from_snap.sort_by(|a, b| a.key.cmp(&b.key));
        assert_eq!(live, from_snap);
        s.consolidate().unwrap();
    }

    #[test]
    fn matrix_snapshot_roundtrips_through_entries() {
        let mut s = StateStore::new(StateType::Matrix);
        let m = s.as_matrix().unwrap();
        m.set(1, 2, 3.0);
        m.set(4, 5, 6.0);
        let snap = s.begin_checkpoint().unwrap();
        let entries = snap.to_entries();
        s.consolidate().unwrap();
        let mut restored = StateStore::new(StateType::Matrix);
        restored.import_entries(&entries).unwrap();
        assert_eq!(restored.as_matrix().unwrap().get(1, 2), 3.0);
        assert_eq!(restored.as_matrix().unwrap().get(4, 5), 6.0);
    }

    #[test]
    fn vector_snapshot_roundtrips_through_entries() {
        let mut s = StateStore::new(StateType::Vector);
        s.as_vector().unwrap().set(300, 1.5);
        let snap = s.begin_checkpoint().unwrap();
        let entries = snap.to_entries();
        s.consolidate().unwrap();
        let mut restored = StateStore::new(StateType::Vector);
        restored.import_entries(&entries).unwrap();
        assert_eq!(restored.as_vector().unwrap().get(300), 1.5);
        assert_eq!(restored.as_vector().unwrap().len(), 301);
    }

    #[test]
    fn vectors_refuse_partitioning() {
        let s = StateStore::new(StateType::Vector);
        assert!(s.split_by_hash(2, PartitionDim::Row).is_err());
        let mut s = s;
        assert!(s.retain_partition(0, 2, PartitionDim::Row).is_err());
    }

    #[test]
    fn table_split_through_store_api() {
        let mut s = StateStore::new(StateType::Table);
        for i in 0..40 {
            s.as_table().unwrap().put(Key::Int(i), Value::Int(i));
        }
        let parts = s.split_by_hash(4, PartitionDim::Row).unwrap();
        let total: usize = parts
            .iter()
            .map(|p| match p {
                StateStore::Table(t) => t.len(),
                _ => panic!("expected table parts"),
            })
            .sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn chunked_snapshot_uses_structured_key_hash() {
        let mut s = StateStore::new(StateType::Table);
        for i in 0..60 {
            s.as_table().unwrap().put(Key::Int(i), Value::Int(i));
        }
        let snap = s.begin_checkpoint().unwrap();
        let buckets = snap.to_entries_chunked(8);
        s.consolidate().unwrap();
        assert_eq!(buckets.len(), 8);
        assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), 60);
        for (idx, bucket) in buckets.iter().enumerate() {
            for e in bucket {
                let k: Key = sdg_common::codec::decode_from_slice(&e.key).unwrap();
                assert_eq!((k.stable_hash() % 8) as usize, idx);
            }
        }
    }

    #[test]
    fn masked_snapshot_only_fills_wanted_chunks() {
        let mut s = StateStore::new(StateType::Table);
        for i in 0..60 {
            s.as_table().unwrap().put(Key::Int(i), Value::Int(i));
        }
        let snap = s.begin_checkpoint().unwrap();
        let full = snap.to_entries_chunked(8);
        let mut wanted = vec![false; 8];
        wanted[2] = true;
        wanted[5] = true;
        let masked = snap.to_entries_for(8, &wanted);
        s.consolidate().unwrap();
        for i in 0..8 {
            if wanted[i] {
                assert_eq!(masked[i].len(), full[i].len());
            } else {
                assert!(masked[i].is_empty());
            }
        }
    }

    #[test]
    fn chunk_tracking_dispatch_by_structure() {
        let mut table = StateStore::new(StateType::Table);
        assert!(table.enable_chunk_tracking(4));
        assert_eq!(table.tracked_chunks(), Some(4));
        assert_eq!(table.dirty_chunk_count(), 4);
        let mut matrix = StateStore::new(StateType::Matrix);
        assert!(!matrix.enable_chunk_tracking(4));
        assert_eq!(matrix.tracked_chunks(), None);
        assert_eq!(matrix.take_dirty_chunks(), None);
        let mut vector = StateStore::new(StateType::Vector);
        assert!(!vector.enable_chunk_tracking(4));
        vector.mark_all_dirty();
        assert_eq!(vector.dirty_chunk_count(), 0);
    }

    #[test]
    fn additive_merge_sums_table_values() {
        let mut a = StateStore::new(StateType::Table);
        a.as_table().unwrap().put(Key::Int(1), Value::Int(10));
        a.as_table().unwrap().put(Key::Int(2), Value::Float(1.5));
        a.as_table()
            .unwrap()
            .put(Key::Int(3), Value::List(vec![Value::Int(1), Value::Int(2)]));
        let mut b = StateStore::new(StateType::Table);
        b.as_table().unwrap().put(Key::Int(1), Value::Int(32));
        b.as_table().unwrap().put(Key::Int(2), Value::Float(0.5));
        b.as_table().unwrap().put(
            Key::Int(3),
            Value::List(vec![Value::Int(10), Value::Int(20)]),
        );
        b.as_table().unwrap().put(Key::Int(4), Value::Int(7));
        a.merge_additive(&b.export_entries()).unwrap();
        let t = a.as_table().unwrap();
        assert_eq!(t.get(&Key::Int(1)), Some(Value::Int(42)));
        assert_eq!(t.get(&Key::Int(2)), Some(Value::Float(2.0)));
        assert_eq!(
            t.get(&Key::Int(3)),
            Some(Value::List(vec![Value::Int(11), Value::Int(22)]))
        );
        // Keys absent on the receiving side are plain inserts.
        assert_eq!(t.get(&Key::Int(4)), Some(Value::Int(7)));
    }

    #[test]
    fn additive_merge_sums_matrices_and_vectors() {
        let mut a = StateStore::new(StateType::Matrix);
        a.as_matrix().unwrap().set(1, 2, 3.0);
        let mut b = StateStore::new(StateType::Matrix);
        b.as_matrix().unwrap().set(1, 2, 4.0);
        b.as_matrix().unwrap().set(9, 9, 1.0);
        a.merge_additive(&b.export_entries()).unwrap();
        assert_eq!(a.as_matrix().unwrap().get(1, 2), 7.0);
        assert_eq!(a.as_matrix().unwrap().get(9, 9), 1.0);

        let mut v = StateStore::new(StateType::Vector);
        v.as_vector().unwrap().set(0, 1.0);
        let mut w = StateStore::new(StateType::Vector);
        w.as_vector().unwrap().set(0, 2.0);
        w.as_vector().unwrap().set(5, 3.0);
        v.merge_additive(&w.export_entries()).unwrap();
        assert_eq!(v.as_vector().unwrap().get(0), 3.0);
        assert_eq!(v.as_vector().unwrap().get(5), 3.0);
        assert_eq!(v.as_vector().unwrap().len(), 6);
    }

    #[test]
    fn snapshot_size_reflects_contents() {
        let mut s = StateStore::new(StateType::Vector);
        s.as_vector().unwrap().set(999, 1.0);
        let snap = s.begin_checkpoint().unwrap();
        assert_eq!(snap.approx_bytes(), 1000 * 8);
        assert_eq!(snap.state_type(), StateType::Vector);
    }
}

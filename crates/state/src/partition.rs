//! Partitioning strategies for distributed state elements.
//!
//! §3.2: "Different data structures support different partitioning
//! strategies: e.g. a map can be hash- or range-partitioned; a matrix can be
//! partitioned by row or column." The same strategy must be used by the
//! dataflow dispatcher and by the state splitters, so items always arrive at
//! the instance holding their keys — this module is that single source of
//! truth.

use sdg_common::value::Key;

/// Which axis of a matrix a partitioning applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionDim {
    /// Partition rows across instances.
    Row,
    /// Partition columns across instances.
    Col,
}

impl std::fmt::Display for PartitionDim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionDim::Row => write!(f, "row"),
            PartitionDim::Col => write!(f, "col"),
        }
    }
}

/// How keys map to partition indices.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionStrategy {
    /// `partition = stable_hash(key) % n`. Works for any key type and keeps
    /// placement deterministic across restarts.
    Hash,
    /// Range partitioning over integer keys with explicit upper boundaries:
    /// partition `i` holds keys `< boundaries[i]`; the last partition holds
    /// the rest. Requires `Key::Int` keys.
    Range {
        /// Sorted, strictly increasing upper boundaries; length `n - 1` for
        /// `n` partitions.
        boundaries: Vec<i64>,
    },
}

impl PartitionStrategy {
    /// Returns the partition index for `key` among `n` partitions.
    ///
    /// For [`PartitionStrategy::Range`], non-integer keys and mismatched
    /// boundary counts fall back to hash partitioning rather than failing,
    /// because dispatch happens on the hot path; the graph validator rejects
    /// such configurations statically.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn part_of(&self, key: &Key, n: usize) -> usize {
        assert!(n > 0, "partition count must be positive");
        match self {
            PartitionStrategy::Hash => (key.stable_hash() % n as u64) as usize,
            PartitionStrategy::Range { boundaries } => {
                if boundaries.len() + 1 != n {
                    return (key.stable_hash() % n as u64) as usize;
                }
                let Key::Int(v) = key else {
                    return (key.stable_hash() % n as u64) as usize;
                };
                boundaries.partition_point(|b| v >= b)
            }
        }
    }

    /// Builds `n` equal-width range boundaries over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `lo >= hi`.
    pub fn uniform_ranges(lo: i64, hi: i64, n: usize) -> PartitionStrategy {
        assert!(n > 0, "partition count must be positive");
        assert!(lo < hi, "range must be non-empty");
        let width = ((hi - lo) as u128).div_ceil(n as u128) as i64;
        let boundaries = (1..n as i64).map(|i| lo + i * width).collect();
        PartitionStrategy::Range { boundaries }
    }
}

/// Whether a key with stable hash `hash` lives on a different instance
/// after a mod-`N` repartitioning from `from` to `to` instances.
///
/// The reconfiguration planner uses this to account moved bytes exactly:
/// under hash partitioning a resize reshuffles keys between *all*
/// instances (not just the added/removed one), and an entry migrates
/// precisely when its owner index changes.
///
/// # Panics
///
/// Panics if `from` or `to` is zero.
pub fn owner_changes(hash: u64, from: usize, to: usize) -> bool {
    assert!(from > 0 && to > 0, "partition counts must be positive");
    hash % from as u64 != hash % to as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_total_and_stable() {
        let s = PartitionStrategy::Hash;
        for i in 0..100 {
            let p = s.part_of(&Key::Int(i), 7);
            assert!(p < 7);
            assert_eq!(p, s.part_of(&Key::Int(i), 7));
        }
    }

    #[test]
    fn range_respects_boundaries() {
        let s = PartitionStrategy::Range {
            boundaries: vec![10, 20],
        };
        assert_eq!(s.part_of(&Key::Int(-5), 3), 0);
        assert_eq!(s.part_of(&Key::Int(9), 3), 0);
        assert_eq!(s.part_of(&Key::Int(10), 3), 1);
        assert_eq!(s.part_of(&Key::Int(19), 3), 1);
        assert_eq!(s.part_of(&Key::Int(20), 3), 2);
        assert_eq!(s.part_of(&Key::Int(1_000), 3), 2);
    }

    #[test]
    fn range_falls_back_to_hash_on_mismatch() {
        let s = PartitionStrategy::Range {
            boundaries: vec![10],
        };
        // 3 partitions but 1 boundary: falls back to hash, stays in range.
        let p = s.part_of(&Key::Int(5), 3);
        assert!(p < 3);
        // Non-integer key: falls back to hash.
        let p = s.part_of(&Key::str("abc"), 2);
        assert!(p < 2);
    }

    #[test]
    fn uniform_ranges_cover_the_domain() {
        let s = PartitionStrategy::uniform_ranges(0, 100, 4);
        let PartitionStrategy::Range { boundaries } = &s else {
            panic!("expected range strategy");
        };
        assert_eq!(boundaries, &vec![25, 50, 75]);
        let mut counts = [0usize; 4];
        for i in 0..100 {
            counts[s.part_of(&Key::Int(i), 4)] += 1;
        }
        assert_eq!(counts, [25, 25, 25, 25]);
    }

    #[test]
    fn dim_displays() {
        assert_eq!(PartitionDim::Row.to_string(), "row");
        assert_eq!(PartitionDim::Col.to_string(), "col");
    }

    #[test]
    fn owner_changes_matches_mod_n_ownership() {
        for i in 0..200i64 {
            let h = Key::Int(i).stable_hash();
            assert_eq!(owner_changes(h, 4, 3), h % 4 != h % 3);
            // Same count: nothing moves.
            assert!(!owner_changes(h, 5, 5));
        }
        // From a single instance every key stays (owner 0 both ways) only
        // when the new count maps it to 0 as well.
        assert!(!owner_changes(6, 1, 3));
        assert!(owner_changes(7, 1, 3));
    }
}

//! A row-indexed sparse matrix with dirty-state checkpointing.
//!
//! Backs both matrices of the collaborative filtering algorithm (§2.1):
//! `userItem` (partitioned by row = user) and `coOcc` (partial, replicated,
//! randomly accessed). Rows are hash maps from column index to `f64`, so
//! fine-grained `set_element`/`get_element` updates are O(1) and
//! matrix–vector multiplication is O(nnz).

use std::collections::HashMap;
use std::sync::Arc;

use sdg_common::codec::{decode_from_slice, encode_to_vec};
use sdg_common::error::{SdgError, SdgResult};
use sdg_common::value::{Key, Value};

use crate::entry::StateEntry;
use crate::partition::PartitionDim;

type Rows = HashMap<i64, HashMap<i64, f64>>;

/// A mutable sparse matrix supporting dirty-state checkpoints.
#[derive(Debug, Clone, Default)]
pub struct SparseMatrix {
    base: Arc<Rows>,
    /// Writes performed while a checkpoint snapshot is outstanding.
    dirty: Option<HashMap<(i64, i64), f64>>,
    nnz: usize,
}

impl SparseMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the number of explicitly stored (non-zero at write time)
    /// elements.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Returns `true` if nothing has been stored.
    pub fn is_empty(&self) -> bool {
        self.nnz == 0
    }

    /// Approximates the in-memory footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        // Row key + column key + value + per-entry bookkeeping.
        self.nnz * 32
    }

    /// Returns `true` while a checkpoint snapshot is outstanding.
    pub fn is_checkpointing(&self) -> bool {
        self.dirty.is_some()
    }

    /// Approximate bytes held by the dirty overlay (0 outside a
    /// checkpoint).
    pub fn dirty_bytes(&self) -> usize {
        self.dirty.as_ref().map_or(0, |d| d.len() * 32)
    }

    /// Reads element `(row, col)`; absent elements read as `0.0`.
    pub fn get(&self, row: i64, col: i64) -> f64 {
        if let Some(dirty) = &self.dirty {
            if let Some(v) = dirty.get(&(row, col)) {
                return *v;
            }
        }
        self.base
            .get(&row)
            .and_then(|r| r.get(&col))
            .copied()
            .unwrap_or(0.0)
    }

    fn is_present(&self, row: i64, col: i64) -> bool {
        if let Some(dirty) = &self.dirty {
            if dirty.contains_key(&(row, col)) {
                return true;
            }
        }
        self.base.get(&row).is_some_and(|r| r.contains_key(&col))
    }

    /// Writes element `(row, col)`.
    pub fn set(&mut self, row: i64, col: i64, value: f64) {
        if !self.is_present(row, col) {
            self.nnz += 1;
        }
        match &mut self.dirty {
            Some(dirty) => {
                dirty.insert((row, col), value);
            }
            None => {
                Arc::make_mut(&mut self.base)
                    .entry(row)
                    .or_default()
                    .insert(col, value);
            }
        }
    }

    /// Adds `delta` to element `(row, col)`.
    pub fn add(&mut self, row: i64, col: i64, delta: f64) {
        let v = self.get(row, col);
        self.set(row, col, v + delta);
    }

    /// Returns the visible contents of `row` as `(col, value)` pairs sorted
    /// by column.
    pub fn row(&self, row: i64) -> Vec<(i64, f64)> {
        let mut merged: HashMap<i64, f64> = self.base.get(&row).cloned().unwrap_or_default();
        if let Some(dirty) = &self.dirty {
            for (&(r, c), &v) in dirty.iter() {
                if r == row {
                    merged.insert(c, v);
                }
            }
        }
        let mut out: Vec<(i64, f64)> = merged.into_iter().collect();
        out.sort_by_key(|&(c, _)| c);
        out
    }

    /// Returns the sorted list of row indices with stored elements.
    pub fn row_indices(&self) -> Vec<i64> {
        let mut rows: Vec<i64> = self.base.keys().copied().collect();
        if let Some(dirty) = &self.dirty {
            for &(r, _) in dirty.keys() {
                if !self.base.contains_key(&r) {
                    rows.push(r);
                }
            }
            rows.sort_unstable();
            rows.dedup();
            return rows;
        }
        rows.sort_unstable();
        rows
    }

    /// Computes the matrix–vector product `M · x` for a sparse vector `x`
    /// given as `(index, value)` pairs.
    ///
    /// Returns the sparse result as `(row, value)` pairs sorted by row. This
    /// is the `coOcc.multiply(userRow)` operation of Alg. 1 line 16.
    pub fn multiply(&self, x: &[(i64, f64)]) -> Vec<(i64, f64)> {
        let xmap: HashMap<i64, f64> = x.iter().copied().collect();
        let mut out: HashMap<i64, f64> = HashMap::new();
        for row in self.row_indices() {
            let mut acc = 0.0;
            for (col, v) in self.row(row) {
                if let Some(xv) = xmap.get(&col) {
                    acc += v * xv;
                }
            }
            if acc != 0.0 {
                out.insert(row, acc);
            }
        }
        let mut out: Vec<(i64, f64)> = out.into_iter().collect();
        out.sort_by_key(|&(r, _)| r);
        out
    }

    /// Begins a checkpoint: flips into dirty mode and returns a consistent
    /// snapshot of the base rows in O(1).
    pub fn begin_checkpoint(&mut self) -> SdgResult<Arc<Rows>> {
        if self.dirty.is_some() {
            return Err(SdgError::State(
                "checkpoint already in progress on this matrix".into(),
            ));
        }
        self.dirty = Some(HashMap::new());
        Ok(Arc::clone(&self.base))
    }

    /// Folds dirty writes into the base, ending dirty mode.
    pub fn consolidate(&mut self) -> SdgResult<()> {
        let dirty = self
            .dirty
            .take()
            .ok_or_else(|| SdgError::State("consolidate without begin_checkpoint".into()))?;
        let base = Arc::make_mut(&mut self.base);
        for ((row, col), v) in dirty {
            base.entry(row).or_default().insert(col, v);
        }
        Ok(())
    }

    /// Exports the visible state, one entry per row.
    ///
    /// The key is the encoded row index; the value encodes the row as a list
    /// of `[col, value]` pairs.
    pub fn export_entries(&self) -> Vec<StateEntry> {
        let mut out = Vec::new();
        for row in self.row_indices() {
            let cells = self.row(row);
            if cells.is_empty() {
                continue;
            }
            let value = Value::List(
                cells
                    .into_iter()
                    .map(|(c, v)| Value::List(vec![Value::Int(c), Value::Float(v)]))
                    .collect(),
            );
            out.push(StateEntry::new(
                encode_to_vec(&Key::Int(row)),
                encode_to_vec(&value),
            ));
        }
        out
    }

    /// Imports entries produced by [`SparseMatrix::export_entries`].
    pub fn import_entries(&mut self, entries: &[StateEntry]) -> SdgResult<()> {
        for e in entries {
            let key: Key = decode_from_slice(&e.key)?;
            let Key::Int(row) = key else {
                return Err(SdgError::State("matrix entry key must be Int".into()));
            };
            let value: Value = decode_from_slice(&e.value)?;
            for cell in value.as_list()? {
                let pair = cell.as_list()?;
                if pair.len() != 2 {
                    return Err(SdgError::State("matrix cell must be [col, value]".into()));
                }
                let col = pair[0].as_int()?;
                let v = pair[1].as_float()?;
                self.set(row, col, v);
            }
        }
        Ok(())
    }

    /// Splits the matrix into `n` disjoint partitions along `dim` by stable
    /// hash of the row (or column) index.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn split_by_hash(&self, dim: PartitionDim, n: usize) -> Vec<SparseMatrix> {
        assert!(n > 0, "partition count must be positive");
        let mut parts: Vec<SparseMatrix> = (0..n).map(|_| SparseMatrix::new()).collect();
        for row in self.row_indices() {
            for (col, v) in self.row(row) {
                let key = match dim {
                    PartitionDim::Row => row,
                    PartitionDim::Col => col,
                };
                let idx = (Key::Int(key).stable_hash() % n as u64) as usize;
                parts[idx].set(row, col, v);
            }
        }
        parts
    }

    /// Retains only the elements whose `dim` index hashes to partition
    /// `idx` of `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `idx >= n`.
    pub fn retain_partition(&mut self, dim: PartitionDim, idx: usize, n: usize) {
        assert!(n > 0 && idx < n, "invalid partition index");
        let rows = self.row_indices();
        let mut to_clear: Vec<(i64, i64)> = Vec::new();
        for row in rows {
            for (col, _) in self.row(row) {
                let key = match dim {
                    PartitionDim::Row => row,
                    PartitionDim::Col => col,
                };
                if (Key::Int(key).stable_hash() % n as u64) as usize != idx {
                    to_clear.push((row, col));
                }
            }
        }
        // Removal is only supported outside dirty mode; scale-out never
        // overlaps a checkpoint (the runtime serialises the two).
        let base = Arc::make_mut(&mut self.base);
        for (row, col) in to_clear {
            if let Some(r) = base.get_mut(&row) {
                if r.remove(&col).is_some() {
                    self.nnz -= 1;
                }
                if r.is_empty() {
                    base.remove(&row);
                }
            }
        }
    }

    /// Adds every element of `other` into `self` (elementwise sum).
    ///
    /// This is one natural reconciliation for partial co-occurrence
    /// matrices, exposed for ablation experiments.
    pub fn absorb_add(&mut self, other: &SparseMatrix) {
        for row in other.row_indices() {
            for (col, v) in other.row(row) {
                self.add(row, col, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_defaults_to_zero() {
        let m = SparseMatrix::new();
        assert_eq!(m.get(5, 9), 0.0);
        assert!(m.is_empty());
    }

    #[test]
    fn set_get_add() {
        let mut m = SparseMatrix::new();
        m.set(1, 2, 3.0);
        assert_eq!(m.get(1, 2), 3.0);
        m.add(1, 2, 1.5);
        assert_eq!(m.get(1, 2), 4.5);
        m.add(0, 0, 2.0);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn nnz_counts_distinct_cells_once() {
        let mut m = SparseMatrix::new();
        m.set(1, 1, 1.0);
        m.set(1, 1, 2.0);
        assert_eq!(m.nnz(), 1);
        m.set(1, 2, 1.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn row_is_sorted_by_column() {
        let mut m = SparseMatrix::new();
        m.set(3, 9, 1.0);
        m.set(3, 1, 2.0);
        m.set(3, 5, 3.0);
        assert_eq!(m.row(3), vec![(1, 2.0), (5, 3.0), (9, 1.0)]);
        assert!(m.row(99).is_empty());
    }

    #[test]
    fn multiply_matches_dense_computation() {
        // M = [[1,2],[0,3]] (rows 0,1; cols 0,1), x = [4, 5].
        let mut m = SparseMatrix::new();
        m.set(0, 0, 1.0);
        m.set(0, 1, 2.0);
        m.set(1, 1, 3.0);
        let result = m.multiply(&[(0, 4.0), (1, 5.0)]);
        assert_eq!(result, vec![(0, 14.0), (1, 15.0)]);
    }

    #[test]
    fn multiply_with_disjoint_support_is_empty() {
        let mut m = SparseMatrix::new();
        m.set(0, 0, 1.0);
        assert!(m.multiply(&[(5, 1.0)]).is_empty());
    }

    #[test]
    fn dirty_mode_merges_reads() {
        let mut m = SparseMatrix::new();
        m.set(1, 1, 1.0);
        m.set(1, 2, 2.0);
        let snap = m.begin_checkpoint().unwrap();
        m.set(1, 1, 10.0);
        m.set(2, 1, 5.0);

        assert_eq!(m.get(1, 1), 10.0);
        assert_eq!(m.get(2, 1), 5.0);
        assert_eq!(m.row(1), vec![(1, 10.0), (2, 2.0)]);
        assert_eq!(m.row_indices(), vec![1, 2]);

        // The snapshot still holds the pre-checkpoint values.
        assert_eq!(snap.get(&1).unwrap().get(&1), Some(&1.0));
        assert!(!snap.contains_key(&2));

        m.consolidate().unwrap();
        assert_eq!(m.get(1, 1), 10.0);
        assert_eq!(m.get(2, 1), 5.0);
    }

    #[test]
    fn checkpoint_protocol_is_enforced() {
        let mut m = SparseMatrix::new();
        assert!(m.consolidate().is_err());
        let _s = m.begin_checkpoint().unwrap();
        assert!(m.begin_checkpoint().is_err());
    }

    #[test]
    fn export_import_roundtrips() {
        let mut m = SparseMatrix::new();
        for r in 0..10 {
            for c in 0..5 {
                m.set(r, c, (r * 10 + c) as f64);
            }
        }
        let entries = m.export_entries();
        assert_eq!(entries.len(), 10); // One per row.
        let mut m2 = SparseMatrix::new();
        m2.import_entries(&entries).unwrap();
        assert_eq!(m2.nnz(), m.nnz());
        for r in 0..10 {
            assert_eq!(m2.row(r), m.row(r));
        }
    }

    #[test]
    fn split_by_row_and_merge_preserves_elements() {
        let mut m = SparseMatrix::new();
        for r in 0..30 {
            m.set(r, r % 7, 1.0 + r as f64);
        }
        let parts = m.split_by_hash(PartitionDim::Row, 3);
        assert_eq!(parts.iter().map(SparseMatrix::nnz).sum::<usize>(), 30);
        let mut merged = SparseMatrix::new();
        for p in &parts {
            merged.absorb_add(p);
        }
        for r in 0..30 {
            assert_eq!(merged.get(r, r % 7), 1.0 + r as f64);
        }
    }

    #[test]
    fn split_by_col_partitions_on_column_hash() {
        let mut m = SparseMatrix::new();
        for c in 0..20 {
            m.set(0, c, c as f64 + 1.0);
        }
        let parts = m.split_by_hash(PartitionDim::Col, 4);
        for (idx, p) in parts.iter().enumerate() {
            for (col, _) in p.row(0) {
                assert_eq!((Key::Int(col).stable_hash() % 4) as usize, idx);
            }
        }
    }

    #[test]
    fn retain_partition_matches_split() {
        let mut m = SparseMatrix::new();
        for r in 0..40 {
            m.set(r, 0, r as f64);
        }
        let expected = m.split_by_hash(PartitionDim::Row, 4)[2].nnz();
        let mut own = m.clone();
        own.retain_partition(PartitionDim::Row, 2, 4);
        assert_eq!(own.nnz(), expected);
    }

    #[test]
    fn absorb_add_sums_overlapping_cells() {
        let mut a = SparseMatrix::new();
        a.set(1, 1, 2.0);
        let mut b = SparseMatrix::new();
        b.set(1, 1, 3.0);
        b.set(2, 2, 4.0);
        a.absorb_add(&b);
        assert_eq!(a.get(1, 1), 5.0);
        assert_eq!(a.get(2, 2), 4.0);
    }
}

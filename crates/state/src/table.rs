//! A hash-indexed key/value table with dirty-state checkpointing.
//!
//! `KeyedTable` backs the paper's key/value store application (§6.1) and the
//! wordcount window state. It is the reference implementation of the
//! dirty-state protocol of §5:
//!
//! 1. `begin_checkpoint` flips the table into *dirty mode* and returns an
//!    `Arc` snapshot of the base map — an O(1) operation;
//! 2. while dirty, writes go to an overlay map and reads consult the overlay
//!    first, falling back to the (now immutable) base on a miss;
//! 3. once the checkpoint is durable, `consolidate` folds the overlay into
//!    the base under a short exclusive section.

use std::collections::HashMap;
use std::sync::Arc;

use sdg_common::codec::{decode_from_slice, encode_to_vec};
use sdg_common::error::{SdgError, SdgResult};
use sdg_common::value::{Key, Value};

use crate::entry::StateEntry;

/// Tracks which hash chunks changed since the last completed checkpoint
/// generation, enabling incremental (delta) checkpoints: a generation only
/// re-serialises chunks whose keys were written.
///
/// Chunk identity is `key.stable_hash() % chunks` — the same decoded-key
/// hash the partitioner and the m-to-n restore use, so a chunk's key
/// population is stable across generations, processes and restores.
#[derive(Debug, Clone)]
struct ChunkTracker {
    dirty: Vec<bool>,
    dirty_count: usize,
}

impl ChunkTracker {
    fn all_dirty(chunks: usize) -> Self {
        ChunkTracker {
            dirty: vec![true; chunks],
            dirty_count: chunks,
        }
    }

    fn mark(&mut self, chunk: usize) {
        if !self.dirty[chunk] {
            self.dirty[chunk] = true;
            self.dirty_count += 1;
        }
    }
}

/// A mutable key/value table supporting dirty-state checkpoints.
#[derive(Debug, Clone, Default)]
pub struct KeyedTable {
    base: Arc<HashMap<Key, Value>>,
    /// Overlay of writes performed while a checkpoint is in progress.
    /// `None` values are tombstones for removals.
    dirty: Option<HashMap<Key, Option<Value>>>,
    visible_len: usize,
    visible_bytes: usize,
    /// Approximate bytes held by the overlay, maintained incrementally on
    /// every overlay write so the obs gauge never walks the overlay under
    /// the cell lock.
    overlay_bytes: usize,
    /// Chunk-level dirtiness since the last completed checkpoint
    /// generation; `None` means incremental checkpointing is off.
    tracker: Option<ChunkTracker>,
}

impl KeyedTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the number of visible entries (base plus overlay effects).
    pub fn len(&self) -> usize {
        self.visible_len
    }

    /// Returns `true` if the table has no visible entries.
    pub fn is_empty(&self) -> bool {
        self.visible_len == 0
    }

    /// Returns an approximation of the visible state size in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.visible_bytes
    }

    /// Returns `true` while a checkpoint snapshot is outstanding.
    pub fn is_checkpointing(&self) -> bool {
        self.dirty.is_some()
    }

    /// Approximate bytes held by the dirty overlay (0 outside a
    /// checkpoint). Tombstones count their key only.
    ///
    /// The count is maintained incrementally on overlay writes, so this is
    /// O(1) — it is polled by the observability gauge under the cell lock.
    pub fn dirty_bytes(&self) -> usize {
        if self.dirty.is_some() {
            self.overlay_bytes
        } else {
            0
        }
    }

    /// Turns on chunk-level dirtiness tracking over `chunks` hash chunks.
    ///
    /// All chunks start dirty, so the first checkpoint generation after
    /// enabling is a full (base) one.
    ///
    /// # Panics
    ///
    /// Panics if `chunks` is zero.
    pub fn enable_chunk_tracking(&mut self, chunks: usize) {
        assert!(chunks > 0, "chunk count must be positive");
        self.tracker = Some(ChunkTracker::all_dirty(chunks));
    }

    /// The tracked chunk-space size, when tracking is enabled.
    pub fn tracked_chunks(&self) -> Option<usize> {
        self.tracker.as_ref().map(|t| t.dirty.len())
    }

    /// Number of chunks currently marked dirty (0 when tracking is off).
    pub fn dirty_chunk_count(&self) -> usize {
        self.tracker.as_ref().map_or(0, |t| t.dirty_count)
    }

    /// Returns the dirty chunk ids (sorted) and clears them, or `None` when
    /// tracking is off. Called under the checkpoint-initiation lock; writes
    /// performed afterwards re-mark their chunks and belong to the next
    /// generation.
    pub fn take_dirty_chunks(&mut self) -> Option<Vec<u32>> {
        let t = self.tracker.as_mut()?;
        let mut out = Vec::with_capacity(t.dirty_count);
        for (i, d) in t.dirty.iter_mut().enumerate() {
            if *d {
                out.push(i as u32);
                *d = false;
            }
        }
        t.dirty_count = 0;
        Some(out)
    }

    /// Marks every chunk dirty (used after a failed or compacting
    /// checkpoint, and after out-of-band bulk mutation).
    pub fn mark_all_dirty(&mut self) {
        if let Some(t) = &mut self.tracker {
            *t = ChunkTracker::all_dirty(t.dirty.len());
        }
    }

    fn mark_chunk(&mut self, key: &Key) {
        if let Some(t) = &mut self.tracker {
            let chunk = (key.stable_hash() % t.dirty.len() as u64) as usize;
            t.mark(chunk);
        }
    }

    /// Looks up `key`, consulting the dirty overlay first.
    pub fn get(&self, key: &Key) -> Option<Value> {
        if let Some(dirty) = &self.dirty {
            if let Some(slot) = dirty.get(key) {
                return slot.clone();
            }
        }
        self.base.get(key).cloned()
    }

    /// Returns `true` if `key` is visibly present.
    pub fn contains(&self, key: &Key) -> bool {
        self.get(key).is_some()
    }

    /// Inserts or replaces `key`, returning the previously visible value.
    pub fn put(&mut self, key: Key, value: Value) -> Option<Value> {
        let prev = self.get(&key);
        let key_size = key.approx_size();
        let entry_size = key_size + value.approx_size();
        match prev.as_ref() {
            Some(old) => {
                self.visible_bytes += entry_size;
                self.visible_bytes -= key_size + old.approx_size();
            }
            None => {
                self.visible_len += 1;
                self.visible_bytes += entry_size;
            }
        }
        self.mark_chunk(&key);
        match &mut self.dirty {
            Some(dirty) => {
                let old_slot = dirty.insert(key, Some(value));
                self.overlay_bytes += entry_size;
                if let Some(slot) = old_slot {
                    self.overlay_bytes -= key_size + slot.as_ref().map_or(0, Value::approx_size);
                }
            }
            None => {
                Arc::make_mut(&mut self.base).insert(key, value);
            }
        }
        prev
    }

    /// Removes `key`, returning the previously visible value.
    pub fn remove(&mut self, key: &Key) -> Option<Value> {
        let prev = self.get(key)?;
        let key_size = key.approx_size();
        self.visible_len -= 1;
        self.visible_bytes -= key_size + prev.approx_size();
        self.mark_chunk(key);
        match &mut self.dirty {
            Some(dirty) => {
                let old_slot = dirty.insert(key.clone(), None);
                self.overlay_bytes += key_size;
                if let Some(slot) = old_slot {
                    self.overlay_bytes -= key_size + slot.as_ref().map_or(0, Value::approx_size);
                }
            }
            None => {
                Arc::make_mut(&mut self.base).remove(key);
            }
        }
        Some(prev)
    }

    /// Reads, transforms and writes back the value at `key` in one step.
    ///
    /// Useful for counters: `table.update(key, |v| match v { ... })`.
    pub fn update(&mut self, key: Key, f: impl FnOnce(Option<Value>) -> Value) {
        let next = f(self.get(&key));
        self.put(key, next);
    }

    /// Calls `f` for every visible entry.
    ///
    /// Iteration order is unspecified.
    pub fn for_each(&self, mut f: impl FnMut(&Key, &Value)) {
        match &self.dirty {
            None => {
                for (k, v) in self.base.iter() {
                    f(k, v);
                }
            }
            Some(dirty) => {
                for (k, v) in self.base.iter() {
                    match dirty.get(k) {
                        None => f(k, v),
                        Some(Some(over)) => f(k, over),
                        Some(None) => {} // tombstone
                    }
                }
                for (k, slot) in dirty.iter() {
                    if let Some(v) = slot {
                        if !self.base.contains_key(k) {
                            f(k, v);
                        }
                    }
                }
            }
        }
    }

    /// Begins a checkpoint: flips into dirty mode and returns a consistent,
    /// immutable snapshot of the base map.
    ///
    /// The snapshot is an `Arc` clone, so this is O(1) and the caller can
    /// serialise it from another thread without blocking table writes.
    pub fn begin_checkpoint(&mut self) -> SdgResult<Arc<HashMap<Key, Value>>> {
        if self.dirty.is_some() {
            return Err(SdgError::State(
                "checkpoint already in progress on this table".into(),
            ));
        }
        self.dirty = Some(HashMap::new());
        self.overlay_bytes = 0;
        Ok(Arc::clone(&self.base))
    }

    /// Consolidates the dirty overlay into the base map, ending dirty mode.
    ///
    /// This is the short exclusive section of §5 step (5); its cost is
    /// proportional to the number of writes performed during the checkpoint,
    /// not to the state size.
    pub fn consolidate(&mut self) -> SdgResult<()> {
        let dirty = self
            .dirty
            .take()
            .ok_or_else(|| SdgError::State("consolidate without begin_checkpoint".into()))?;
        self.overlay_bytes = 0;
        let base = Arc::make_mut(&mut self.base);
        for (k, slot) in dirty {
            match slot {
                Some(v) => {
                    base.insert(k, v);
                }
                None => {
                    base.remove(&k);
                }
            }
        }
        Ok(())
    }

    /// Exports every visible entry in canonical encoding.
    pub fn export_entries(&self) -> Vec<StateEntry> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each(|k, v| {
            out.push(StateEntry::new(encode_to_vec(k), encode_to_vec(v)));
        });
        out
    }

    /// Imports entries produced by [`KeyedTable::export_entries`],
    /// overwriting existing keys.
    pub fn import_entries(&mut self, entries: &[StateEntry]) -> SdgResult<()> {
        for e in entries {
            let key: Key = decode_from_slice(&e.key)?;
            let value: Value = decode_from_slice(&e.value)?;
            self.put(key, value);
        }
        Ok(())
    }

    /// Splits the table into `n` disjoint partitions by stable key hash.
    ///
    /// Entry `k` goes to partition `stable_hash(k) % n`, matching the
    /// runtime's hash dispatching so items and their state stay colocated.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn split_by_hash(&self, n: usize) -> Vec<KeyedTable> {
        assert!(n > 0, "partition count must be positive");
        let mut parts: Vec<KeyedTable> = (0..n).map(|_| KeyedTable::new()).collect();
        self.for_each(|k, v| {
            let idx = (k.stable_hash() % n as u64) as usize;
            parts[idx].put(k.clone(), v.clone());
        });
        parts
    }

    /// Merges all entries of `other` into `self`, overwriting duplicates.
    pub fn absorb(&mut self, other: &KeyedTable) {
        other.for_each(|k, v| {
            self.put(k.clone(), v.clone());
        });
    }

    /// Retains only keys whose hash maps to `idx` of `n` partitions.
    ///
    /// Used when an existing instance sheds keys during scale-out.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `idx >= n`.
    pub fn retain_partition(&mut self, idx: usize, n: usize) {
        assert!(n > 0 && idx < n, "invalid partition index");
        let keys: Vec<Key> = {
            let mut keys = Vec::new();
            self.for_each(|k, _| {
                if (k.stable_hash() % n as u64) as usize != idx {
                    keys.push(k.clone());
                }
            });
            keys
        };
        for k in keys {
            self.remove(&k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: i64) -> Key {
        Key::Int(i)
    }

    #[test]
    fn put_get_remove_roundtrip() {
        let mut t = KeyedTable::new();
        assert_eq!(t.put(k(1), Value::Int(10)), None);
        assert_eq!(t.get(&k(1)), Some(Value::Int(10)));
        assert_eq!(t.put(k(1), Value::Int(20)), Some(Value::Int(10)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(&k(1)), Some(Value::Int(20)));
        assert_eq!(t.remove(&k(1)), None);
        assert!(t.is_empty());
    }

    #[test]
    fn update_builds_counters() {
        let mut t = KeyedTable::new();
        for _ in 0..3 {
            t.update(k(7), |v| {
                Value::Int(v.map(|x| x.as_int().unwrap()).unwrap_or(0) + 1)
            });
        }
        assert_eq!(t.get(&k(7)), Some(Value::Int(3)));
    }

    #[test]
    fn dirty_mode_reads_see_overlay_writes() {
        let mut t = KeyedTable::new();
        t.put(k(1), Value::Int(1));
        t.put(k(2), Value::Int(2));
        let snap = t.begin_checkpoint().unwrap();

        t.put(k(1), Value::Int(100)); // overwrite
        t.put(k(3), Value::Int(3)); // insert
        t.remove(&k(2)); // delete

        // Live view reflects all writes.
        assert_eq!(t.get(&k(1)), Some(Value::Int(100)));
        assert_eq!(t.get(&k(2)), None);
        assert_eq!(t.get(&k(3)), Some(Value::Int(3)));
        assert_eq!(t.len(), 2);

        // Snapshot is unaffected — it is the pre-checkpoint state.
        assert_eq!(snap.get(&k(1)), Some(&Value::Int(1)));
        assert_eq!(snap.get(&k(2)), Some(&Value::Int(2)));
        assert_eq!(snap.get(&k(3)), None);

        t.consolidate().unwrap();
        assert!(!t.is_checkpointing());
        assert_eq!(t.get(&k(1)), Some(Value::Int(100)));
        assert_eq!(t.get(&k(2)), None);
        assert_eq!(t.get(&k(3)), Some(Value::Int(3)));
    }

    #[test]
    fn double_checkpoint_is_rejected() {
        let mut t = KeyedTable::new();
        let _snap = t.begin_checkpoint().unwrap();
        assert!(t.begin_checkpoint().is_err());
    }

    #[test]
    fn consolidate_without_checkpoint_is_rejected() {
        let mut t = KeyedTable::new();
        assert!(t.consolidate().is_err());
    }

    #[test]
    fn for_each_sees_merged_view_in_dirty_mode() {
        let mut t = KeyedTable::new();
        t.put(k(1), Value::Int(1));
        t.put(k(2), Value::Int(2));
        let _snap = t.begin_checkpoint().unwrap();
        t.put(k(2), Value::Int(22));
        t.put(k(3), Value::Int(3));
        t.remove(&k(1));

        let mut seen: Vec<(Key, Value)> = Vec::new();
        t.for_each(|k, v| seen.push((k.clone(), v.clone())));
        seen.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(seen, vec![(k(2), Value::Int(22)), (k(3), Value::Int(3)),]);
    }

    #[test]
    fn export_import_roundtrips() {
        let mut t = KeyedTable::new();
        for i in 0..20 {
            t.put(k(i), Value::str(format!("v{i}")));
        }
        let entries = t.export_entries();
        let mut t2 = KeyedTable::new();
        t2.import_entries(&entries).unwrap();
        assert_eq!(t2.len(), 20);
        for i in 0..20 {
            assert_eq!(t2.get(&k(i)), t.get(&k(i)));
        }
    }

    #[test]
    fn split_and_absorb_preserve_contents() {
        let mut t = KeyedTable::new();
        for i in 0..100 {
            t.put(k(i), Value::Int(i * 10));
        }
        let parts = t.split_by_hash(4);
        assert_eq!(parts.iter().map(KeyedTable::len).sum::<usize>(), 100);
        // Each part holds only keys hashing to its index.
        for (idx, part) in parts.iter().enumerate() {
            part.for_each(|key, _| {
                assert_eq!((key.stable_hash() % 4) as usize, idx);
            });
        }
        let mut merged = KeyedTable::new();
        for p in &parts {
            merged.absorb(p);
        }
        assert_eq!(merged.len(), 100);
        for i in 0..100 {
            assert_eq!(merged.get(&k(i)), Some(Value::Int(i * 10)));
        }
    }

    #[test]
    fn retain_partition_drops_foreign_keys() {
        let mut t = KeyedTable::new();
        for i in 0..50 {
            t.put(k(i), Value::Int(i));
        }
        let mut own = t.clone();
        own.retain_partition(1, 3);
        own.for_each(|key, _| {
            assert_eq!((key.stable_hash() % 3) as usize, 1);
        });
        let expected = t.split_by_hash(3)[1].len();
        assert_eq!(own.len(), expected);
    }

    #[test]
    fn approx_bytes_tracks_mutations() {
        let mut t = KeyedTable::new();
        assert_eq!(t.approx_bytes(), 0);
        t.put(k(1), Value::str("hello"));
        let after_put = t.approx_bytes();
        assert!(after_put > 0);
        t.put(k(1), Value::str("hi"));
        assert!(t.approx_bytes() < after_put);
        t.remove(&k(1));
        assert_eq!(t.approx_bytes(), 0);
    }

    #[test]
    fn approx_bytes_consistent_across_checkpoint() {
        let mut t = KeyedTable::new();
        t.put(k(1), Value::Int(1));
        let before = t.approx_bytes();
        let _snap = t.begin_checkpoint().unwrap();
        t.put(k(2), Value::Int(2));
        t.remove(&k(1));
        t.consolidate().unwrap();
        assert_eq!(t.approx_bytes(), before);
        assert_eq!(t.len(), 1);
    }

    /// The O(n) recomputation `dirty_bytes` used to do, kept as the test
    /// oracle for the incremental counter.
    fn recomputed_dirty_bytes(t: &KeyedTable) -> usize {
        t.dirty.as_ref().map_or(0, |d| {
            d.iter()
                .map(|(k, v)| k.approx_size() + v.as_ref().map_or(0, Value::approx_size))
                .sum()
        })
    }

    #[test]
    fn dirty_bytes_matches_recomputation() {
        let mut t = KeyedTable::new();
        for i in 0..10 {
            t.put(k(i), Value::str(format!("value-{i}")));
        }
        assert_eq!(t.dirty_bytes(), 0);
        let _snap = t.begin_checkpoint().unwrap();
        assert_eq!(t.dirty_bytes(), 0);
        // Inserts, overwrites (shrinking and growing), tombstones, and
        // tombstone-overwrites all keep the incremental count exact.
        t.put(k(1), Value::str("x"));
        assert_eq!(t.dirty_bytes(), recomputed_dirty_bytes(&t));
        t.put(k(1), Value::str("a much longer replacement value"));
        assert_eq!(t.dirty_bytes(), recomputed_dirty_bytes(&t));
        t.remove(&k(2));
        assert_eq!(t.dirty_bytes(), recomputed_dirty_bytes(&t));
        t.put(k(2), Value::Int(5));
        assert_eq!(t.dirty_bytes(), recomputed_dirty_bytes(&t));
        t.put(k(100), Value::str("fresh"));
        t.remove(&k(100));
        assert_eq!(t.dirty_bytes(), recomputed_dirty_bytes(&t));
        t.consolidate().unwrap();
        assert_eq!(t.dirty_bytes(), 0);
    }

    #[test]
    fn chunk_tracking_starts_all_dirty_and_clears() {
        let mut t = KeyedTable::new();
        assert_eq!(t.take_dirty_chunks(), None);
        t.enable_chunk_tracking(8);
        assert_eq!(t.tracked_chunks(), Some(8));
        assert_eq!(t.dirty_chunk_count(), 8);
        let all = t.take_dirty_chunks().unwrap();
        assert_eq!(all, (0..8).collect::<Vec<u32>>());
        assert_eq!(t.dirty_chunk_count(), 0);
        assert_eq!(t.take_dirty_chunks().unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn writes_mark_exactly_their_chunks() {
        let mut t = KeyedTable::new();
        t.enable_chunk_tracking(16);
        t.take_dirty_chunks().unwrap();
        t.put(k(3), Value::Int(1));
        t.remove(&k(3));
        t.put(k(7), Value::Int(2));
        let mut expected: Vec<u32> = vec![
            (k(3).stable_hash() % 16) as u32,
            (k(7).stable_hash() % 16) as u32,
        ];
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(t.take_dirty_chunks().unwrap(), expected);
        // Overlay writes mark chunks too (they belong to the next
        // generation).
        let _snap = t.begin_checkpoint().unwrap();
        t.put(k(9), Value::Int(3));
        assert_eq!(
            t.take_dirty_chunks().unwrap(),
            vec![(k(9).stable_hash() % 16) as u32]
        );
        t.consolidate().unwrap();
        t.mark_all_dirty();
        assert_eq!(t.dirty_chunk_count(), 16);
    }

    #[test]
    fn snapshot_survives_consolidate() {
        // Even if the serialiser is slow, the snapshot stays intact after
        // consolidation (copy-on-write kicks in).
        let mut t = KeyedTable::new();
        t.put(k(1), Value::Int(1));
        let snap = t.begin_checkpoint().unwrap();
        t.put(k(1), Value::Int(2));
        t.consolidate().unwrap();
        assert_eq!(snap.get(&k(1)), Some(&Value::Int(1)));
        assert_eq!(t.get(&k(1)), Some(Value::Int(2)));
    }
}

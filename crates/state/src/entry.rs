//! Entry-level representation of state for chunked checkpoints.
//!
//! Every SE structure can export itself as a flat list of
//! ([`StateEntry`]) key/value byte pairs and re-import such a list. The
//! checkpoint subsystem hash-partitions entries into chunks by their encoded
//! key (so partitioning is deterministic across backup and restore, §5) and
//! restore can split any chunk n ways for parallel reconstruction.

use sdg_common::value::stable_hash_bytes;

/// One key/value pair of serialised state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateEntry {
    /// Canonical encoding of the entry's key.
    pub key: Vec<u8>,
    /// Canonical encoding of the entry's value.
    pub value: Vec<u8>,
}

impl StateEntry {
    /// Creates an entry from encoded key and value bytes.
    pub fn new(key: Vec<u8>, value: Vec<u8>) -> Self {
        StateEntry { key, value }
    }

    /// Total encoded size in bytes.
    pub fn size(&self) -> usize {
        self.key.len() + self.value.len()
    }

    /// Returns the chunk index this entry belongs to among `chunks` chunks.
    ///
    /// Deterministic across processes: uses the stable FNV-1a hash of the
    /// key bytes.
    ///
    /// # Panics
    ///
    /// Panics if `chunks` is zero.
    pub fn chunk_of(&self, chunks: usize) -> usize {
        assert!(chunks > 0, "chunk count must be positive");
        (stable_hash_bytes(&self.key) % chunks as u64) as usize
    }
}

/// Splits `entries` into `chunks` deterministic hash partitions.
///
/// The same entries always land in the same chunk regardless of input
/// order, which is what allows a restore path to re-derive placement.
///
/// # Panics
///
/// Panics if `chunks` is zero.
pub fn partition_entries(entries: Vec<StateEntry>, chunks: usize) -> Vec<Vec<StateEntry>> {
    assert!(chunks > 0, "chunk count must be positive");
    let mut out: Vec<Vec<StateEntry>> = (0..chunks).map(|_| Vec::new()).collect();
    for entry in entries {
        let idx = entry.chunk_of(chunks);
        out[idx].push(entry);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(k: u8, v: u8) -> StateEntry {
        StateEntry::new(vec![k], vec![v; 4])
    }

    #[test]
    fn size_sums_key_and_value() {
        assert_eq!(entry(1, 2).size(), 5);
    }

    #[test]
    fn chunk_assignment_is_deterministic() {
        let e = entry(42, 0);
        assert_eq!(e.chunk_of(4), e.chunk_of(4));
        // Chunk depends on the key only, not the value.
        let e2 = StateEntry::new(vec![42], vec![9; 100]);
        assert_eq!(e.chunk_of(4), e2.chunk_of(4));
    }

    #[test]
    fn partitioning_is_total_and_disjoint() {
        let entries: Vec<StateEntry> = (0..100u8).map(|k| entry(k, k)).collect();
        let chunks = partition_entries(entries.clone(), 5);
        assert_eq!(chunks.len(), 5);
        let total: usize = chunks.iter().map(Vec::len).sum();
        assert_eq!(total, 100);
        // Every entry is in the chunk its key hashes to.
        for (i, chunk) in chunks.iter().enumerate() {
            for e in chunk {
                assert_eq!(e.chunk_of(5), i);
            }
        }
    }

    #[test]
    fn partitioning_is_order_independent() {
        let entries: Vec<StateEntry> = (0..50u8).map(|k| entry(k, k)).collect();
        let mut reversed = entries.clone();
        reversed.reverse();
        let a = partition_entries(entries, 3);
        let b = partition_entries(reversed, 3);
        for (ca, cb) in a.iter().zip(&b) {
            let mut sa: Vec<_> = ca.iter().map(|e| e.key.clone()).collect();
            let mut sb: Vec<_> = cb.iter().map(|e| e.key.clone()).collect();
            sa.sort();
            sb.sort();
            assert_eq!(sa, sb);
        }
    }

    #[test]
    #[should_panic(expected = "chunk count must be positive")]
    fn zero_chunks_panics() {
        partition_entries(vec![], 0);
    }

    #[test]
    fn single_chunk_gets_everything() {
        let entries: Vec<StateEntry> = (0..10u8).map(|k| entry(k, k)).collect();
        let chunks = partition_entries(entries, 1);
        assert_eq!(chunks[0].len(), 10);
    }
}

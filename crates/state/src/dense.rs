//! A dense `f64` vector with dirty-state checkpointing.
//!
//! Backs the weight vector of logistic regression (§6.2) and the merged
//! recommendation vectors of collaborative filtering. Partial instances of a
//! `DenseVector` are reconciled by elementwise sum ([`DenseVector::merge_sum`]),
//! the `merge` function of Alg. 1 lines 20–25.

use std::collections::HashMap;
use std::sync::Arc;

use sdg_common::codec::{decode_from_slice, encode_to_vec};
use sdg_common::error::{SdgError, SdgResult};
use sdg_common::value::{Key, Value};

use crate::entry::StateEntry;

/// Number of elements exported per checkpoint entry.
const EXPORT_BLOCK: usize = 256;

/// A mutable dense vector supporting dirty-state checkpoints.
#[derive(Debug, Clone, Default)]
pub struct DenseVector {
    base: Arc<Vec<f64>>,
    /// Writes performed while a checkpoint snapshot is outstanding.
    dirty: Option<HashMap<usize, f64>>,
    /// Logical length, which may exceed `base.len()` while dirty writes
    /// extend the vector.
    len: usize,
}

impl DenseVector {
    /// Creates an empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a zero-filled vector of length `len`.
    pub fn zeros(len: usize) -> Self {
        DenseVector {
            base: Arc::new(vec![0.0; len]),
            dirty: None,
            len,
        }
    }

    /// Creates a vector from existing values.
    pub fn from_vec(values: Vec<f64>) -> Self {
        let len = values.len();
        DenseVector {
            base: Arc::new(values),
            dirty: None,
            len,
        }
    }

    /// Returns the logical length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximates the in-memory footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.len * 8
    }

    /// Returns `true` while a checkpoint snapshot is outstanding.
    pub fn is_checkpointing(&self) -> bool {
        self.dirty.is_some()
    }

    /// Approximate bytes held by the dirty overlay (0 outside a
    /// checkpoint): index + value per overlaid slot.
    pub fn dirty_bytes(&self) -> usize {
        self.dirty.as_ref().map_or(0, |d| d.len() * 16)
    }

    /// Reads element `i`; indices at or beyond the length read as `0.0`.
    pub fn get(&self, i: usize) -> f64 {
        if let Some(dirty) = &self.dirty {
            if let Some(v) = dirty.get(&i) {
                return *v;
            }
        }
        self.base.get(i).copied().unwrap_or(0.0)
    }

    /// Writes element `i`, growing the vector if needed.
    pub fn set(&mut self, i: usize, value: f64) {
        if i >= self.len {
            self.len = i + 1;
        }
        match &mut self.dirty {
            Some(dirty) => {
                dirty.insert(i, value);
            }
            None => {
                let base = Arc::make_mut(&mut self.base);
                if i >= base.len() {
                    base.resize(i + 1, 0.0);
                }
                base[i] = value;
            }
        }
    }

    /// Adds `delta` to element `i`.
    pub fn add(&mut self, i: usize, delta: f64) {
        let v = self.get(i);
        self.set(i, v + delta);
    }

    /// Copies the visible contents into a plain `Vec`.
    pub fn to_vec(&self) -> Vec<f64> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Computes the dot product with a plain slice.
    ///
    /// Elements beyond either length contribute zero.
    pub fn dot(&self, other: &[f64]) -> f64 {
        let n = self.len.min(other.len());
        (0..n).map(|i| self.get(i) * other[i]).sum()
    }

    /// Performs `self += alpha * other` elementwise, growing as needed.
    pub fn axpy(&mut self, alpha: f64, other: &[f64]) {
        for (i, &x) in other.iter().enumerate() {
            if x != 0.0 {
                self.add(i, alpha * x);
            }
        }
    }

    /// Sums a set of partial vectors into one (the `merge` of Alg. 1).
    ///
    /// The result has the length of the longest input.
    pub fn merge_sum<'a>(parts: impl IntoIterator<Item = &'a DenseVector>) -> DenseVector {
        let mut out = DenseVector::new();
        for p in parts {
            out.axpy(1.0, &p.to_vec());
            if p.len() > out.len() {
                out.set(p.len() - 1, out.get(p.len() - 1));
            }
        }
        out
    }

    /// Begins a checkpoint: flips into dirty mode and returns a consistent
    /// snapshot of the base storage in O(1).
    pub fn begin_checkpoint(&mut self) -> SdgResult<Arc<Vec<f64>>> {
        if self.dirty.is_some() {
            return Err(SdgError::State(
                "checkpoint already in progress on this vector".into(),
            ));
        }
        self.dirty = Some(HashMap::new());
        Ok(Arc::clone(&self.base))
    }

    /// Folds dirty writes into the base, ending dirty mode.
    pub fn consolidate(&mut self) -> SdgResult<()> {
        let dirty = self
            .dirty
            .take()
            .ok_or_else(|| SdgError::State("consolidate without begin_checkpoint".into()))?;
        let base = Arc::make_mut(&mut self.base);
        if base.len() < self.len {
            base.resize(self.len, 0.0);
        }
        for (i, v) in dirty {
            base[i] = v;
        }
        Ok(())
    }

    /// Exports the visible state in fixed-size index blocks.
    ///
    /// The key of each entry is the encoded block start index; the value is
    /// the list of elements in that block.
    pub fn export_entries(&self) -> Vec<StateEntry> {
        let mut out = Vec::new();
        let mut start = 0usize;
        while start < self.len {
            let end = (start + EXPORT_BLOCK).min(self.len);
            let block = Value::List((start..end).map(|i| Value::Float(self.get(i))).collect());
            out.push(StateEntry::new(
                encode_to_vec(&Key::Int(start as i64)),
                encode_to_vec(&block),
            ));
            start = end;
        }
        out
    }

    /// Imports entries produced by [`DenseVector::export_entries`].
    pub fn import_entries(&mut self, entries: &[StateEntry]) -> SdgResult<()> {
        for e in entries {
            let key: Key = decode_from_slice(&e.key)?;
            let Key::Int(start) = key else {
                return Err(SdgError::State("vector entry key must be Int".into()));
            };
            let start = usize::try_from(start)
                .map_err(|_| SdgError::State("vector entry key must be non-negative".into()))?;
            let value: Value = decode_from_slice(&e.value)?;
            for (offset, cell) in value.as_list()?.iter().enumerate() {
                self.set(start + offset, cell.as_float()?);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_get_set() {
        let mut v = DenseVector::zeros(4);
        assert_eq!(v.len(), 4);
        assert_eq!(v.get(2), 0.0);
        v.set(2, 5.0);
        assert_eq!(v.get(2), 5.0);
        assert_eq!(v.get(100), 0.0);
    }

    #[test]
    fn set_grows_the_vector() {
        let mut v = DenseVector::new();
        v.set(9, 1.0);
        assert_eq!(v.len(), 10);
        assert_eq!(v.get(9), 1.0);
        assert_eq!(v.get(5), 0.0);
    }

    #[test]
    fn add_and_axpy() {
        let mut v = DenseVector::zeros(3);
        v.add(1, 2.0);
        v.axpy(0.5, &[2.0, 4.0, 6.0]);
        assert_eq!(v.to_vec(), vec![1.0, 4.0, 3.0]);
    }

    #[test]
    fn dot_truncates_to_shorter_length() {
        let v = DenseVector::from_vec(vec![1.0, 2.0, 3.0]);
        assert_eq!(v.dot(&[4.0, 5.0]), 14.0);
        assert_eq!(v.dot(&[]), 0.0);
    }

    #[test]
    fn merge_sum_adds_partials() {
        let a = DenseVector::from_vec(vec![1.0, 2.0]);
        let b = DenseVector::from_vec(vec![10.0, 20.0, 30.0]);
        let merged = DenseVector::merge_sum([&a, &b]);
        assert_eq!(merged.to_vec(), vec![11.0, 22.0, 30.0]);
        let empty = DenseVector::merge_sum(std::iter::empty());
        assert!(empty.is_empty());
    }

    #[test]
    fn dirty_mode_overlays_reads_and_preserves_snapshot() {
        let mut v = DenseVector::from_vec(vec![1.0, 2.0, 3.0]);
        let snap = v.begin_checkpoint().unwrap();
        v.set(0, 100.0);
        v.set(5, 6.0); // Grows while dirty.
        assert_eq!(v.get(0), 100.0);
        assert_eq!(v.get(5), 6.0);
        assert_eq!(v.len(), 6);
        assert_eq!(&*snap, &vec![1.0, 2.0, 3.0]);
        v.consolidate().unwrap();
        assert_eq!(v.to_vec(), vec![100.0, 2.0, 3.0, 0.0, 0.0, 6.0]);
    }

    #[test]
    fn checkpoint_protocol_is_enforced() {
        let mut v = DenseVector::new();
        assert!(v.consolidate().is_err());
        let _s = v.begin_checkpoint().unwrap();
        assert!(v.begin_checkpoint().is_err());
    }

    #[test]
    fn export_import_roundtrips_across_blocks() {
        let data: Vec<f64> = (0..600).map(|i| i as f64 * 0.5).collect();
        let v = DenseVector::from_vec(data.clone());
        let entries = v.export_entries();
        assert!(entries.len() >= 2, "600 elements must span blocks");
        let mut v2 = DenseVector::new();
        v2.import_entries(&entries).unwrap();
        assert_eq!(v2.to_vec(), data);
    }

    #[test]
    fn export_of_empty_vector_is_empty() {
        assert!(DenseVector::new().export_entries().is_empty());
    }
}

//! Property-based equivalence: the slot-compiled engine must produce the
//! same observable effects as the reference interpreter.
//!
//! Programs are generated as StateLang source (arithmetic, control flow,
//! bounded loops, helper calls, Table state accesses), parsed, wrapped as a
//! `TeProgram`, and executed by both engines against independent state
//! stores. For every generated program and input, either both engines
//! succeed with identical `Effects` (forwards, emits) and identical final
//! state, or both fail with the same error message.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;
use sdg_common::record;
use sdg_common::value::Value;
use sdg_ir::ast::Method;
use sdg_ir::parser::parse_program;
use sdg_ir::te::TeProgram;
use sdg_ir::te_compiled::CompiledTe;
use sdg_runtime::compile::{run_compiled, Scratch};
use sdg_runtime::interp::run_te;
use sdg_state::store::{StateStore, StateType};

/// Variables the generator assigns to (and may forward as live vars).
const VARS: [&str; 4] = ["v0", "v1", "v2", "v3"];
/// Input fields bound before execution.
const INPUTS: [&str; 3] = ["n0", "n1", "n2"];

fn leaf_expr() -> BoxedStrategy<String> {
    prop_oneof![
        (-20i64..20).prop_map(|i| format!("({i})")),
        prop::sample::select(VARS.to_vec()).prop_map(str::to_owned),
        prop::sample::select(INPUTS.to_vec()).prop_map(str::to_owned),
    ]
    .boxed()
}

fn int_expr(depth: u32) -> BoxedStrategy<String> {
    if depth == 0 {
        return leaf_expr();
    }
    let sub = int_expr(depth - 1);
    prop_oneof![
        3 => leaf_expr(),
        2 => (sub.clone(), prop::sample::select(vec!["+", "-", "*", "/", "%"]), sub.clone())
            .prop_map(|(a, op, b)| format!("({a} {op} {b})")),
        1 => sub.clone().prop_map(|a| format!("(0 - {a})")),
        1 => (sub.clone(), sub.clone()).prop_map(|(a, b)| format!("hlp({a}, {b})")),
        1 => sub.clone().prop_map(|k| format!("t.inc({k}, 1)")),
        1 => sub.clone().prop_map(|k| format!("t.get({k})")),
        1 => Just("t.size()".to_owned()),
    ]
    .boxed()
}

fn cond_expr(depth: u32) -> BoxedStrategy<String> {
    let sub = int_expr(depth);
    prop_oneof![
        (
            sub.clone(),
            prop::sample::select(vec!["<", "<=", ">", ">=", "==", "!="]),
            sub.clone()
        )
            .prop_map(|(a, op, b)| format!("({a} {op} {b})")),
        sub.clone().prop_map(|k| format!("t.contains({k})")),
    ]
    .boxed()
}

/// One statement; `loop_depth` names a dedicated bounded-loop counter so
/// generated `while` loops always terminate.
fn stmt(depth: u32, loop_depth: u32) -> BoxedStrategy<String> {
    let assign =
        (prop::sample::select(VARS.to_vec()), int_expr(2)).prop_map(|(v, e)| format!("{v} = {e};"));
    if depth == 0 {
        return assign.boxed();
    }
    let body = block(depth - 1, loop_depth);
    let loop_body = block(depth - 1, loop_depth + 1);
    prop_oneof![
        4 => assign,
        2 => (cond_expr(1), body.clone(), block(depth - 1, loop_depth))
            .prop_map(|(c, t, e)| format!("if ({c}) {{ {t} }} else {{ {e} }}")),
        2 => (1u32..4, loop_body.clone()).prop_map(move |(n, b)| {
            let w = format!("w{loop_depth}");
            format!("let {w} = 0; while ({w} < {n}) {{ {w} = {w} + 1; {b} }}")
        }),
        1 => (prop::collection::vec(int_expr(1), 0..3), block(depth - 1, loop_depth)).prop_map(
            move |(items, b)| {
                let f = format!("f{loop_depth}");
                format!("foreach ({f} : [{}]) {{ {b} }}", items.join(", "))
            }
        ),
        1 => int_expr(2).prop_map(|e| format!("emit {e};")),
        1 => (int_expr(1), int_expr(1)).prop_map(|(k, v)| format!("t.put({k}, {v});")),
        1 => int_expr(1).prop_map(|k| format!("t.remove({k});")),
    ]
    .boxed()
}

fn block(depth: u32, loop_depth: u32) -> BoxedStrategy<String> {
    prop::collection::vec(stmt(depth, loop_depth), 1..4)
        .prop_map(|stmts| stmts.join(" "))
        .boxed()
}

/// A whole generated program: a Table state field, one helper, and a body.
fn program() -> BoxedStrategy<String> {
    block(2, 0)
        .prop_map(|body| {
            format!(
                "Table t;\n\
                 int hlp(int a, int b) {{ if (a < b) {{ return a + b; }} return a - b; }}\n\
                 void main(int n0, int n1, int n2) {{ {body} }}"
            )
        })
        .boxed()
}

fn te_of(src: &str, out_vars: Vec<String>) -> TeProgram {
    let prog = parse_program(src).unwrap_or_else(|e| panic!("generated bad syntax: {e}\n{src}"));
    let entry = prog
        .methods
        .iter()
        .find(|m| m.name == "main")
        .expect("main exists")
        .clone();
    let helpers: HashMap<String, Method> = prog
        .methods
        .iter()
        .filter(|m| m.name != "main")
        .map(|m| (m.name.clone(), m.clone()))
        .collect();
    TeProgram::new(entry.name, entry.body, Arc::new(helpers), out_vars)
}

fn export_sorted(store: &StateStore) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut entries: Vec<(Vec<u8>, Vec<u8>)> = store
        .export_entries()
        .into_iter()
        .map(|e| (e.key, e.value))
        .collect();
    entries.sort();
    entries
}

/// Runs both engines on the same program/input and asserts equivalence.
fn assert_equivalent(src: &str, out_vars: Vec<String>, inputs: [i64; 3]) {
    let te = te_of(src, out_vars);
    let input = record! {
        "n0" => Value::Int(inputs[0]),
        "n1" => Value::Int(inputs[1]),
        "n2" => Value::Int(inputs[2]),
    };
    let mut ref_store = StateStore::new(StateType::Table);
    let reference = run_te(&te, &input, Some(&mut ref_store));

    let compiled = CompiledTe::compile(&te);
    let mut cmp_store = StateStore::new(StateType::Table);
    let mut scratch = Scratch::new();
    let slotted = run_compiled(&compiled, &input, Some(&mut cmp_store), &mut scratch);

    match (reference, slotted) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a, b, "effects diverged for:\n{src}");
            assert_eq!(
                export_sorted(&ref_store),
                export_sorted(&cmp_store),
                "state diverged for:\n{src}"
            );
        }
        (Err(a), Err(b)) => {
            assert_eq!(a.to_string(), b.to_string(), "errors diverged for:\n{src}");
        }
        (a, b) => panic!(
            "one engine failed, the other succeeded for:\n{src}\nreference: {a:?}\ncompiled: {b:?}"
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn compiled_engine_matches_reference(
        src in program(),
        inputs in prop::array::uniform3(-10i64..10),
        live in prop::collection::vec(prop::sample::select(VARS.to_vec()), 0..3),
    ) {
        // Sorted, deduplicated live set, like the translator produces.
        let mut out_vars: Vec<String> = live.into_iter().map(str::to_owned).collect();
        out_vars.sort();
        out_vars.dedup();
        assert_equivalent(src.as_str(), out_vars, inputs);
    }

    #[test]
    fn compiled_engine_matches_reference_with_reused_scratch(
        src in program(),
        batches in prop::collection::vec(prop::array::uniform3(-10i64..10), 1..4),
    ) {
        // One compiled TE + one scratch across several items, mirroring a
        // worker's steady state; the reference interpreter runs fresh each
        // time. State persists across items on both sides.
        let te = te_of(src.as_str(), vec!["v0".to_owned()]);
        let compiled = CompiledTe::compile(&te);
        let mut scratch = Scratch::new();
        let mut ref_store = StateStore::new(StateType::Table);
        let mut cmp_store = StateStore::new(StateType::Table);
        for inputs in batches {
            let input = record! {
                "n0" => Value::Int(inputs[0]),
                "n1" => Value::Int(inputs[1]),
                "n2" => Value::Int(inputs[2]),
            };
            let reference = run_te(&te, &input, Some(&mut ref_store));
            let slotted = run_compiled(&compiled, &input, Some(&mut cmp_store), &mut scratch);
            match (reference, slotted) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "effects diverged for:\n{}", src),
                (Err(a), Err(b)) => {
                    prop_assert_eq!(a.to_string(), b.to_string(), "errors diverged for:\n{}", src)
                }
                (a, b) => {
                    return Err(TestCaseError::fail(format!(
                        "engines disagreed for:\n{src}\nreference: {a:?}\ncompiled: {b:?}"
                    )))
                }
            }
            prop_assert_eq!(export_sorted(&ref_store), export_sorted(&cmp_store));
        }
    }
}

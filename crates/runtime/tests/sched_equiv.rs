//! Property-based scheduler equivalence: the work-stealing pool executor
//! must be observably identical to thread-per-replica execution.
//!
//! Programs are generated as StateLang source (arithmetic, control flow,
//! bounded loops, helper calls, Table state accesses), deployed as a
//! two-stage pipeline (entry → stateful compute), and driven with the same
//! input stream under [`SchedulerMode::Threads`] and
//! [`SchedulerMode::Pool`]. For every generated program and stream, both
//! schedulers must produce identical emitted outputs, identical final
//! state, and identical error counts — including across a checkpoint and a
//! mid-stream fail/recover.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use sdg_common::ids::StateId;
use sdg_common::record;
use sdg_common::value::Value;
use sdg_graph::model::{
    AccessMode, Dispatch, Distribution, SdgBuilder, StateAccessEdge, TaskCode, TaskKind,
};
use sdg_ir::ast::Method;
use sdg_ir::parser::parse_program;
use sdg_ir::te::TeProgram;
use sdg_runtime::config::{BatchConfig, RuntimeConfig, SchedulerMode};
use sdg_runtime::deploy::Deployment;
use sdg_runtime::reconfig::ReconfigRequest;
use sdg_state::partition::PartitionDim;
use sdg_state::store::StateType;

/// Variables the generator assigns to.
const VARS: [&str; 4] = ["v0", "v1", "v2", "v3"];
/// Input fields bound before execution.
const INPUTS: [&str; 3] = ["n0", "n1", "n2"];

fn leaf_expr() -> BoxedStrategy<String> {
    prop_oneof![
        (-20i64..20).prop_map(|i| format!("({i})")),
        prop::sample::select(VARS.to_vec()).prop_map(str::to_owned),
        prop::sample::select(INPUTS.to_vec()).prop_map(str::to_owned),
    ]
    .boxed()
}

/// Key expression for Table accesses. Partitioned deployments route items
/// by `n0` and may stripe each partition's cell by the same hash, under
/// the (trusted) key-locality contract that a TE only touches the key it
/// was routed by — so `keyed` generators pin every state access to `n0`.
/// Single-instance Local deployments have no such contract and use
/// arbitrary key expressions.
fn key_expr(depth: u32, keyed: bool) -> BoxedStrategy<String> {
    if keyed {
        Just("n0".to_owned()).boxed()
    } else {
        int_expr(depth, false)
    }
}

fn int_expr(depth: u32, keyed: bool) -> BoxedStrategy<String> {
    if depth == 0 {
        return leaf_expr();
    }
    let sub = int_expr(depth - 1, keyed);
    let key = key_expr(depth - 1, keyed);
    prop_oneof![
        3 => leaf_expr(),
        2 => (sub.clone(), prop::sample::select(vec!["+", "-", "*", "/", "%"]), sub.clone())
            .prop_map(|(a, op, b)| format!("({a} {op} {b})")),
        1 => (sub.clone(), sub.clone()).prop_map(|(a, b)| format!("hlp({a}, {b})")),
        1 => key.clone().prop_map(|k| format!("t.inc({k}, 1)")),
        1 => key.clone().prop_map(|k| format!("t.get({k})")),
        1 => Just("t.size()".to_owned()),
    ]
    .boxed()
}

fn cond_expr(depth: u32, keyed: bool) -> BoxedStrategy<String> {
    let sub = int_expr(depth, keyed);
    let key = key_expr(depth, keyed);
    prop_oneof![
        (
            sub.clone(),
            prop::sample::select(vec!["<", "<=", ">", ">=", "==", "!="]),
            sub.clone()
        )
            .prop_map(|(a, op, b)| format!("({a} {op} {b})")),
        key.prop_map(|k| format!("t.contains({k})")),
    ]
    .boxed()
}

/// One statement; `loop_depth` names a dedicated bounded-loop counter so
/// generated `while` loops always terminate.
fn stmt(depth: u32, loop_depth: u32, keyed: bool) -> BoxedStrategy<String> {
    let assign = (prop::sample::select(VARS.to_vec()), int_expr(2, keyed))
        .prop_map(|(v, e)| format!("{v} = {e};"));
    if depth == 0 {
        return assign.boxed();
    }
    let body = block(depth - 1, loop_depth, keyed);
    let loop_body = block(depth - 1, loop_depth + 1, keyed);
    prop_oneof![
        4 => assign,
        2 => (cond_expr(1, keyed), body.clone(), block(depth - 1, loop_depth, keyed))
            .prop_map(|(c, t, e)| format!("if ({c}) {{ {t} }} else {{ {e} }}")),
        2 => (1u32..4, loop_body.clone()).prop_map(move |(n, b)| {
            let w = format!("w{loop_depth}");
            format!("let {w} = 0; while ({w} < {n}) {{ {w} = {w} + 1; {b} }}")
        }),
        1 => int_expr(2, keyed).prop_map(|e| format!("emit {e};")),
        1 => (key_expr(1, keyed), int_expr(1, keyed))
            .prop_map(|(k, v)| format!("t.put({k}, {v});")),
        1 => key_expr(1, keyed).prop_map(|k| format!("t.remove({k});")),
    ]
    .boxed()
}

fn block(depth: u32, loop_depth: u32, keyed: bool) -> BoxedStrategy<String> {
    prop::collection::vec(stmt(depth, loop_depth, keyed), 1..4)
        .prop_map(|stmts| stmts.join(" "))
        .boxed()
}

/// A whole generated program: a Table state field, one helper, and a body.
fn program(keyed: bool) -> BoxedStrategy<String> {
    block(2, 0, keyed)
        .prop_map(|body| {
            format!(
                "Table t;\n\
                 int hlp(int a, int b) {{ if (a < b) {{ return a + b; }} return a - b; }}\n\
                 void main(int n0, int n1, int n2) {{ {body} }}"
            )
        })
        .boxed()
}

fn te_of(src: &str) -> TeProgram {
    let prog = parse_program(src).unwrap_or_else(|e| panic!("generated bad syntax: {e}\n{src}"));
    let entry = prog
        .methods
        .iter()
        .find(|m| m.name == "main")
        .expect("main exists")
        .clone();
    let helpers: HashMap<String, Method> = prog
        .methods
        .iter()
        .filter(|m| m.name != "main")
        .map(|m| (m.name.clone(), m.clone()))
        .collect();
    TeProgram::new(entry.name, entry.body, Arc::new(helpers), Vec::new())
}

/// Deploys the generated program as a two-stage pipeline: a passthrough
/// entry forwarding over a dataflow edge into a stateful compute task, so
/// the pool scheduler's actor-to-actor dispatch path is on the critical
/// path (not just external submits).
fn deploy_generated(
    src: &str,
    scheduler: SchedulerMode,
    partitions: usize,
    batch: BatchConfig,
    ft: bool,
) -> (Deployment, StateId) {
    let mut b = SdgBuilder::new();
    let (dist, mode, dispatch) = if partitions > 1 {
        (
            Distribution::Partitioned {
                dim: PartitionDim::Row,
            },
            AccessMode::Partitioned {
                key: "n0".into(),
                dim: PartitionDim::Row,
            },
            Dispatch::Partitioned { key: "n0".into() },
        )
    } else {
        (Distribution::Local, AccessMode::Local, Dispatch::OneToAny)
    };
    let t = b.add_state("t", StateType::Table, dist);
    let gen = b.add_task(
        "gen",
        TaskKind::Entry {
            method: "main".into(),
        },
        TaskCode::Passthrough,
        None,
    );
    let apply = b.add_task(
        "apply",
        TaskKind::Compute,
        TaskCode::Interpreted(te_of(src)),
        Some(StateAccessEdge {
            state: t,
            mode,
            writes: true,
        }),
    );
    b.connect(
        gen,
        apply,
        dispatch,
        vec!["n0".into(), "n1".into(), "n2".into()],
    );
    let sdg = b.build().unwrap();
    let mut cfg = RuntimeConfig {
        scheduler,
        sched_threads: 4,
        batch,
        ..Default::default()
    };
    cfg.se_instances.insert(t, partitions);
    if ft {
        cfg.checkpoint.enabled = true;
        cfg.checkpoint.interval = Duration::from_secs(3600); // Manual only.
    }
    (Deployment::start(sdg, cfg).unwrap(), t)
}

fn submit_all(d: &Deployment, inputs: &[[i64; 3]]) {
    for i in inputs {
        d.submit(
            "main",
            record! {
                "n0" => Value::Int(i[0]),
                "n1" => Value::Int(i[1]),
                "n2" => Value::Int(i[2]),
            },
        )
        .unwrap();
    }
}

/// Final state of every `t` replica, as sorted key/value wire entries.
fn state_of(d: &Deployment, t: StateId) -> Vec<(Vec<u8>, Vec<u8>)> {
    let instances = d
        .metrics()
        .state_by_id(t)
        .map_or(0, |s| s.instances as usize);
    let mut entries = Vec::new();
    for replica in 0..instances {
        d.with_state(t, replica as u32, |s| {
            for e in s.export_entries() {
                entries.push((e.key, e.value));
            }
        })
        .unwrap();
    }
    entries.sort();
    entries
}

/// Drains every already-emitted output event value.
fn drain_emits(d: &Deployment) -> Vec<Value> {
    let mut out = Vec::new();
    while let Ok(ev) = d.outputs().try_recv() {
        out.push(ev.value);
    }
    out
}

/// What one scheduler run observed: emitted values, final state, errors.
#[derive(Debug, PartialEq)]
struct Observed {
    emits: Vec<Value>,
    state: Vec<(Vec<u8>, Vec<u8>)>,
    errors: u64,
}

fn run_once(
    src: &str,
    scheduler: SchedulerMode,
    inputs: &[[i64; 3]],
    batch: BatchConfig,
) -> Observed {
    let (d, t) = deploy_generated(src, scheduler, 1, batch, false);
    submit_all(&d, inputs);
    assert!(
        d.quiesce(Duration::from_secs(30)),
        "drain under {scheduler:?}"
    );
    let observed = Observed {
        emits: drain_emits(&d),
        state: state_of(&d, t),
        errors: d.stats().errors,
    };
    d.shutdown();
    observed
}

/// Same, with a checkpoint and a fail/recover injected mid-stream. Emits
/// are sorted (two partitions interleave; replay re-emits are filtered by
/// neither side, identically) and the restored state is asserted
/// byte-identical to the pre-failure state within the run itself.
fn run_with_recovery(
    src: &str,
    scheduler: SchedulerMode,
    inputs: &[[i64; 3]],
    batch: BatchConfig,
) -> Observed {
    let (d, t) = deploy_generated(src, scheduler, 2, batch, true);
    let mid = inputs.len() / 2;
    submit_all(&d, &inputs[..mid]);
    assert!(d.quiesce(Duration::from_secs(30)));
    d.reconfigure(ReconfigRequest::Checkpoint).unwrap();
    submit_all(&d, &inputs[mid..]);
    assert!(d.quiesce(Duration::from_secs(30)));
    let before = state_of(&d, t);
    let emits = drain_emits(&d);
    d.reconfigure(ReconfigRequest::FailAndRecover {
        state: t,
        replica: 0,
    })
    .unwrap();
    assert!(d.quiesce(Duration::from_secs(30)));
    assert_eq!(
        state_of(&d, t),
        before,
        "recovery under {scheduler:?} must restore byte-identical state:\n{src}"
    );
    let observed = Observed {
        emits,
        state: before,
        errors: d.stats().errors,
    };
    d.shutdown();
    observed
}

/// Quiesce under the pool scheduler must observe parked micro-batches:
/// `in_flight` counts them, and the shared timer heap (not a per-thread
/// `recv_timeout`) is what flushes them, so a lost linger wakeup would
/// show up here as a drain timeout.
#[test]
fn pool_quiesce_drains_parked_micro_batches() {
    let src = "Table t;\n\
               void main(int n0, int n1, int n2) { v = t.inc(n0, 1); }";
    let batch = BatchConfig {
        max_items: 16,
        linger: Duration::from_millis(1),
    };
    let (d, t) = deploy_generated(src, SchedulerMode::Pool, 2, batch, false);
    // 5 items per burst never fill a 16-item batch: every flush is
    // timer-driven. Interleave bursts with drains to race slice-end timer
    // registration against concurrent pool workers repeatedly.
    for round in 0..20i64 {
        for n in 0..5i64 {
            d.submit(
                "main",
                record! {
                    "n0" => Value::Int(round * 5 + n),
                    "n1" => Value::Int(0),
                    "n2" => Value::Int(0),
                },
            )
            .unwrap();
        }
        assert!(
            d.quiesce(Duration::from_secs(10)),
            "round {round}: parked batch never flushed"
        );
    }
    let total: usize = state_of(&d, t).len();
    assert_eq!(total, 100, "every key must have been applied exactly once");
    assert_eq!(d.stats().errors, 0);
    d.shutdown();
}

/// The scaling monitor must work unchanged over pool actors: queue depths
/// come from mailbox lengths, scale-out spawns actors, and idle scale-in
/// retires them through the same drain barriers as dedicated threads.
#[test]
fn pool_monitor_scales_out_and_back_in() {
    use sdg_runtime::config::ScalingConfig;
    let prog = sdg_ir::parser::parse_program("void work(int x) { emit x * 2; }").unwrap();
    let sdg = sdg_translate::translate(&prog).unwrap();
    let task = sdg.task_by_name("work_0").unwrap().id;
    let mut cfg = RuntimeConfig {
        scheduler: SchedulerMode::Pool,
        sched_threads: 4,
        channel_capacity: 8,
        scaling: ScalingConfig {
            enabled: true,
            check_interval: Duration::from_millis(10),
            high_watermark: 0.5,
            patience: 2,
            low_watermark: 0.2,
            idle_patience: 3,
            min_instances: 1,
            max_instances: 4,
        },
        ..Default::default()
    };
    cfg.work_ns.insert(task, 3_000_000); // 3 ms per item.
    let d = Deployment::start(sdg, cfg).unwrap();
    for n in 0..200i64 {
        d.submit("work", record! {"x" => Value::Int(n)}).unwrap();
    }
    assert!(d.quiesce(Duration::from_secs(30)));
    assert!(d.stats().scale_outs > 0, "burst must trigger scale-out");
    assert_eq!(
        d.metrics().task_by_id(task).unwrap().processed,
        200,
        "all items processed despite scaling"
    );

    // Idle now: the monitor retires the extra actors one tick at a time.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let instances = |d: &Deployment| {
        d.metrics()
            .task_by_id(task)
            .map_or(0, |t| t.instances as usize)
    };
    while instances(&d) > 1 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        instances(&d),
        1,
        "idle task must shrink back to min_instances"
    );
    assert!(d.stats().scale_ins > 0);
    assert_eq!(d.stats().errors, 0);
    d.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Single-replica pipeline: the serial mailbox must make the pool run
    /// indistinguishable from a dedicated thread — same emit sequence
    /// (order included), same final state, same error count.
    #[test]
    fn pool_matches_threads_on_serial_pipeline(
        src in program(false),
        inputs in prop::collection::vec(prop::array::uniform3(-10i64..10), 1..24),
        max_items in prop::sample::select(vec![1usize, 4]),
    ) {
        let batch = BatchConfig {
            max_items,
            linger: Duration::from_millis(1),
        };
        let threads = run_once(src.as_str(), SchedulerMode::Threads, &inputs, batch);
        let pool = run_once(src.as_str(), SchedulerMode::Pool, &inputs, batch);
        prop_assert_eq!(&threads, &pool, "schedulers diverged for:\n{}", src);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Two partitions, checkpoint + fail/recover mid-stream: replay and
    /// duplicate filtering must land both schedulers on the same state.
    #[test]
    fn pool_matches_threads_across_recovery(
        src in program(true),
        inputs in prop::collection::vec(prop::array::uniform3(-10i64..10), 8..32),
        max_items in prop::sample::select(vec![1usize, 4]),
    ) {
        let batch = BatchConfig {
            max_items,
            linger: Duration::from_millis(1),
        };
        let mut threads =
            run_with_recovery(src.as_str(), SchedulerMode::Threads, &inputs, batch);
        let mut pool = run_with_recovery(src.as_str(), SchedulerMode::Pool, &inputs, batch);
        // Two partitions interleave emits nondeterministically (under both
        // schedulers): compare as sorted multisets.
        threads.emits.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        pool.emits.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        prop_assert_eq!(&threads, &pool, "schedulers diverged across recovery for:\n{}", src);
    }
}

//! End-to-end engine tests: translated programs running on the simulated
//! cluster, with failure injection, recovery and scaling.

use std::collections::HashMap;
use std::time::Duration;

use sdg_common::ids::StateId;
use sdg_common::record;
use sdg_common::value::Value;
use sdg_ir::parser::parse_program;
use sdg_runtime::config::{RuntimeConfig, ScalingConfig};
use sdg_runtime::deploy::Deployment;
use sdg_runtime::reconfig::ReconfigRequest;
use sdg_translate::translate;

/// Instruments-backed instance count of `task` (0 when absent).
fn task_instances(d: &Deployment, task: sdg_common::ids::TaskId) -> usize {
    d.metrics()
        .task_by_id(task)
        .map_or(0, |t| t.instances as usize)
}

/// Instruments-backed SE instance count of `state`.
fn state_instances(d: &Deployment, state: StateId) -> usize {
    d.metrics()
        .state_by_id(state)
        .map_or(0, |s| s.instances as usize)
}

const CF_SRC: &str = r#"
    @Partitioned Matrix userItem;
    @Partial Matrix coOcc;

    void addRating(int user, int item, int rating) {
        userItem.set(user, item, rating);
        let userRow = userItem.row(user);
        foreach (p : userRow) {
            if (p[1] > 0) {
                coOcc.add(item, p[0], 1.0);
                coOcc.add(p[0], item, 1.0);
            }
        }
    }

    Vector getRec(int user) {
        let userRow = userItem.row(user);
        @Partial let userRec = @Global coOcc.multiply(userRow);
        let rec = merge(@Collection userRec);
        emit rec;
    }

    Vector merge(@Collection Vector allRec) {
        let out = [];
        foreach (cur : allRec) { out = pairs_add(out, cur); }
        return out;
    }
"#;

const KV_SRC: &str = r#"
    @Partitioned Table kv;
    void bump(int k) { kv.inc(k, 1); }
    int read(int k) { let v = kv.get(k); emit v; }
"#;

fn deploy_cf(partials: usize, partitions: usize) -> (Deployment, StateId, StateId) {
    let prog = parse_program(CF_SRC).unwrap();
    let sdg = translate(&prog).unwrap();
    let user_item = sdg.state_by_name("userItem").unwrap().id;
    let co_occ = sdg.state_by_name("coOcc").unwrap().id;
    let mut cfg = RuntimeConfig::default();
    cfg.se_instances.insert(user_item, partitions);
    cfg.se_instances.insert(co_occ, partials);
    let d = Deployment::start(sdg, cfg).unwrap();
    (d, user_item, co_occ)
}

/// Reference implementation of the CF model.
#[derive(Default)]
struct CfModel {
    user_item: HashMap<(i64, i64), f64>,
    co_occ: HashMap<(i64, i64), f64>,
}

impl CfModel {
    fn add_rating(&mut self, user: i64, item: i64, rating: i64) {
        self.user_item.insert((user, item), rating as f64);
        let row: Vec<(i64, f64)> = self
            .user_item
            .iter()
            .filter(|((u, _), _)| *u == user)
            .map(|((_, i), v)| (*i, *v))
            .collect();
        for (i, v) in row {
            if v > 0.0 {
                *self.co_occ.entry((item, i)).or_default() += 1.0;
                *self.co_occ.entry((i, item)).or_default() += 1.0;
            }
        }
    }

    fn recommend(&self, user: i64) -> HashMap<i64, f64> {
        let mut rec = HashMap::new();
        for ((r, c), v) in &self.co_occ {
            if let Some(x) = self.user_item.get(&(user, *c)) {
                *rec.entry(*r).or_default() += v * x;
            }
        }
        rec.retain(|_, v: &mut f64| *v != 0.0);
        rec
    }
}

fn pairs_of(value: &Value) -> HashMap<i64, f64> {
    value
        .as_list()
        .unwrap()
        .iter()
        .map(|cell| {
            let pair = cell.as_list().unwrap();
            (pair[0].as_int().unwrap(), pair[1].as_float().unwrap())
        })
        .filter(|(_, v)| *v != 0.0)
        .collect()
}

#[test]
fn collaborative_filtering_end_to_end() {
    let (d, _ui, _co) = deploy_cf(2, 2);
    let mut model = CfModel::default();

    let ratings = [
        (1, 10, 5),
        (1, 11, 3),
        (2, 10, 4),
        (2, 12, 2),
        (3, 11, 1),
        (1, 12, 4),
        (3, 10, 5),
    ];
    for (u, i, r) in ratings {
        model.add_rating(u, i, r);
        d.submit(
            "addRating",
            record! {"user" => Value::Int(u), "item" => Value::Int(i), "rating" => Value::Int(r)},
        )
        .unwrap();
    }
    assert!(d.quiesce(Duration::from_secs(10)), "ratings must drain");

    for user in [1i64, 2, 3] {
        d.submit("getRec", record! {"user" => Value::Int(user)})
            .unwrap();
        let event = d
            .outputs()
            .recv_timeout(Duration::from_secs(10))
            .expect("recommendation");
        let got = pairs_of(&event.value);
        let expected = model.recommend(user);
        assert_eq!(got, expected, "user {user}");
        assert!(event.latency.is_some());
    }
    assert_eq!(d.stats().errors, 0);
    d.shutdown();
}

#[test]
fn cf_partial_instances_sum_to_global_counts() {
    let (d, _ui, co_occ) = deploy_cf(3, 2);
    for n in 0..30i64 {
        let (u, i) = (n % 5, 10 + n % 3);
        d.submit(
            "addRating",
            record! {"user" => Value::Int(u), "item" => Value::Int(i), "rating" => Value::Int(1)},
        )
        .unwrap();
    }
    assert!(d.quiesce(Duration::from_secs(10)));

    // The partial instances were updated independently; their element-wise
    // sum must match a single-instance run.
    let (d1, _, co1) = deploy_cf(1, 1);
    for n in 0..30i64 {
        let (u, i) = (n % 5, 10 + n % 3);
        d1.submit(
            "addRating",
            record! {"user" => Value::Int(u), "item" => Value::Int(i), "rating" => Value::Int(1)},
        )
        .unwrap();
    }
    assert!(d1.quiesce(Duration::from_secs(10)));

    let mut summed: HashMap<(i64, i64), f64> = HashMap::new();
    for replica in 0..state_instances(&d, co_occ) {
        d.with_state(co_occ, replica as u32, |s| {
            let m = s.as_matrix().unwrap();
            for r in m.row_indices() {
                for (c, v) in m.row(r) {
                    *summed.entry((r, c)).or_default() += v;
                }
            }
        })
        .unwrap();
    }
    let mut reference: HashMap<(i64, i64), f64> = HashMap::new();
    d1.with_state(co1, 0, |s| {
        let m = s.as_matrix().unwrap();
        for r in m.row_indices() {
            for (c, v) in m.row(r) {
                reference.insert((r, c), v);
            }
        }
    })
    .unwrap();
    assert_eq!(summed, reference);
    d.shutdown();
    d1.shutdown();
}

fn deploy_kv(partitions: usize, ft: bool) -> (Deployment, StateId) {
    let prog = parse_program(KV_SRC).unwrap();
    let sdg = translate(&prog).unwrap();
    let kv = sdg.state_by_name("kv").unwrap().id;
    let mut cfg = RuntimeConfig::default();
    cfg.se_instances.insert(kv, partitions);
    if ft {
        cfg.checkpoint.enabled = true;
        cfg.checkpoint.interval = Duration::from_secs(3600); // Manual only.
    }
    (Deployment::start(sdg, cfg).unwrap(), kv)
}

fn total_count(d: &Deployment, kv: StateId) -> i64 {
    let mut total = 0;
    for replica in 0..state_instances(d, kv) {
        d.with_state(kv, replica as u32, |s| {
            s.as_table().unwrap().for_each(|_, v| {
                total += v.as_int().unwrap();
            });
        })
        .unwrap();
    }
    total
}

#[test]
fn kv_counts_are_exact_across_partitions() {
    let (d, kv) = deploy_kv(3, false);
    for n in 0..500i64 {
        d.submit("bump", record! {"k" => Value::Int(n % 50)})
            .unwrap();
    }
    assert!(d.quiesce(Duration::from_secs(10)));
    assert_eq!(total_count(&d, kv), 500);

    // Each partition holds only its own keys.
    for replica in 0..3u32 {
        d.with_state(kv, replica, |s| {
            s.as_table().unwrap().for_each(|k, _| {
                assert_eq!((k.stable_hash() % 3) as u32, replica);
            });
        })
        .unwrap();
    }

    // Reads see the counts.
    d.submit("read", record! {"k" => Value::Int(0)}).unwrap();
    let event = d.outputs().recv_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(event.value, Value::Int(10));
    d.shutdown();
}

#[test]
fn failure_recovery_preserves_exactly_once_counts() {
    let (d, kv) = deploy_kv(2, true);
    for n in 0..400i64 {
        d.submit("bump", record! {"k" => Value::Int(n % 20)})
            .unwrap();
    }
    assert!(d.quiesce(Duration::from_secs(10)));
    d.reconfigure(ReconfigRequest::Checkpoint).unwrap();

    // More increments after the checkpoint: these live only in upstream
    // buffers and the soon-to-be-lost state.
    for n in 0..200i64 {
        d.submit("bump", record! {"k" => Value::Int(n % 20)})
            .unwrap();
    }
    assert!(d.quiesce(Duration::from_secs(10)));
    assert_eq!(total_count(&d, kv), 600);

    // Fail partition 0 and recover it: checkpoint + replay must restore the
    // exact counts (duplicates filtered, nothing lost).
    let report = d
        .reconfigure(ReconfigRequest::FailAndRecover {
            state: kv,
            replica: 0,
        })
        .unwrap();
    assert!(d.quiesce(Duration::from_secs(10)));
    assert_eq!(
        total_count(&d, kv),
        600,
        "recovery lost or duplicated updates"
    );
    assert!(
        report.replayed > 0,
        "post-checkpoint items must be replayed"
    );

    // The deployment keeps processing normally afterwards.
    for n in 0..100i64 {
        d.submit("bump", record! {"k" => Value::Int(n % 20)})
            .unwrap();
    }
    assert!(d.quiesce(Duration::from_secs(10)));
    assert_eq!(total_count(&d, kv), 700);
    assert_eq!(d.stats().errors, 0);
    d.shutdown();
}

#[test]
fn recovery_without_checkpoint_is_an_error() {
    let (d, kv) = deploy_kv(2, false);
    assert!(d
        .reconfigure(ReconfigRequest::FailAndRecover {
            state: kv,
            replica: 0,
        })
        .is_err());
    d.shutdown();
}

#[test]
fn partitioned_scale_out_preserves_and_repartitions_state() {
    let (d, kv) = deploy_kv(2, false);
    let prog_task = {
        // Find the bump task id for scaling.
        let mut id = None;
        for n in 0..300i64 {
            d.submit("bump", record! {"k" => Value::Int(n % 30)})
                .unwrap();
            id = Some(());
        }
        let _ = id;
        assert!(d.quiesce(Duration::from_secs(10)));
        // The entry task of bump is "bump_0".
        d
    };
    let d = prog_task;
    assert_eq!(total_count(&d, kv), 300);

    // Scale from 2 to 3 partitions via the accessing task.
    let sdg_task = {
        // bump_0 is task 0 or 1 depending on entry order; find by state.
        let snap = d.metrics();
        let mut found = None;
        for raw in 0..4u32 {
            if let Some(t) = snap.task_by_id(sdg_common::ids::TaskId(raw)) {
                if t.instances == 2 && found.is_none() {
                    found = Some(sdg_common::ids::TaskId(raw));
                }
            }
        }
        found.expect("a 2-instance task exists")
    };
    d.reconfigure(ReconfigRequest::ScaleOut { task: sdg_task })
        .unwrap();
    assert_eq!(state_instances(&d, kv), 3);
    assert_eq!(
        total_count(&d, kv),
        300,
        "repartitioning must preserve state"
    );

    // Every instance now holds exactly its third of the key space.
    for replica in 0..3u32 {
        d.with_state(kv, replica, |s| {
            s.as_table().unwrap().for_each(|k, _| {
                assert_eq!((k.stable_hash() % 3) as u32, replica);
            });
        })
        .unwrap();
    }

    // New traffic routes to the right partitions.
    for n in 0..300i64 {
        d.submit("bump", record! {"k" => Value::Int(n % 30)})
            .unwrap();
    }
    assert!(d.quiesce(Duration::from_secs(10)));
    assert_eq!(total_count(&d, kv), 600);
    assert_eq!(d.stats().errors, 0);
    d.shutdown();
}

#[test]
fn partial_scale_out_adds_empty_instance() {
    let (d, _ui, co_occ) = deploy_cf(2, 1);
    for n in 0..20i64 {
        d.submit(
            "addRating",
            record! {"user" => Value::Int(n % 4), "item" => Value::Int(n % 6), "rating" => Value::Int(1)},
        )
        .unwrap();
    }
    assert!(d.quiesce(Duration::from_secs(10)));

    // Scale the partial group through one of its accessing tasks.
    let snap = d.metrics();
    let task = snap
        .events
        .iter()
        .find_map(|e| match &e.kind {
            sdg_common::obs::EventKind::ScaleOut { task, .. } => snap.task(task).and_then(|t| t.id),
            _ => None,
        })
        .unwrap_or_else(|| {
            // Find a task accessing coOcc: addRating_1 exists with 2
            // instances.
            snap.tasks
                .iter()
                .find(|t| t.instances == 2)
                .and_then(|t| t.id)
                .expect("partial task")
        });
    d.reconfigure(ReconfigRequest::ScaleOut { task }).unwrap();
    assert_eq!(state_instances(&d, co_occ), 3);

    // The new instance starts empty and fills with new traffic.
    for n in 0..20i64 {
        d.submit(
            "addRating",
            record! {"user" => Value::Int(n % 4), "item" => Value::Int(n % 6), "rating" => Value::Int(1)},
        )
        .unwrap();
    }
    assert!(d.quiesce(Duration::from_secs(10)));

    // getRec still returns the correct global answer after scaling.
    let mut model = CfModel::default();
    for n in 0..20i64 {
        model.add_rating(n % 4, n % 6, 1);
    }
    for n in 0..20i64 {
        model.add_rating(n % 4, n % 6, 1);
    }
    d.submit("getRec", record! {"user" => Value::Int(1)})
        .unwrap();
    let event = d.outputs().recv_timeout(Duration::from_secs(10)).unwrap();
    assert_eq!(pairs_of(&event.value), model.recommend(1));
    d.shutdown();
}

#[test]
fn partitioned_scale_in_merges_shards_into_survivors() {
    let (d, kv) = deploy_kv(3, false);
    for n in 0..300i64 {
        d.submit("bump", record! {"k" => Value::Int(n % 30)})
            .unwrap();
    }
    assert!(d.quiesce(Duration::from_secs(10)));
    assert_eq!(total_count(&d, kv), 300);

    // Find a 3-instance task accessing kv and remove one instance.
    let snap = d.metrics();
    let task = snap
        .tasks
        .iter()
        .find(|t| t.instances == 3)
        .and_then(|t| t.id)
        .expect("a 3-instance task exists");
    let report = d.reconfigure(ReconfigRequest::ScaleIn { task }).unwrap();
    assert_eq!(state_instances(&d, kv), 2);
    assert_eq!(report.se_instances, 2);
    assert!(
        report.moved_bytes > 0,
        "the victim shard must move into the survivors"
    );
    assert_eq!(
        total_count(&d, kv),
        300,
        "live migration must preserve state"
    );

    // Every survivor now holds exactly its half of the key space.
    for replica in 0..2u32 {
        d.with_state(kv, replica, |s| {
            s.as_table().unwrap().for_each(|k, _| {
                assert_eq!((k.stable_hash() % 2) as u32, replica);
            });
        })
        .unwrap();
    }

    // New traffic routes to the surviving partitions.
    for n in 0..300i64 {
        d.submit("bump", record! {"k" => Value::Int(n % 30)})
            .unwrap();
    }
    assert!(d.quiesce(Duration::from_secs(10)));
    assert_eq!(total_count(&d, kv), 600);
    assert_eq!(d.stats().scale_ins, 1);
    assert_eq!(d.stats().errors, 0);
    d.shutdown();
}

#[test]
fn partitioned_scale_in_to_one_then_refuses_further() {
    let (d, kv) = deploy_kv(2, false);
    for n in 0..100i64 {
        d.submit("bump", record! {"k" => Value::Int(n % 10)})
            .unwrap();
    }
    assert!(d.quiesce(Duration::from_secs(10)));
    let snap = d.metrics();
    let task = snap
        .tasks
        .iter()
        .find(|t| t.instances == 2)
        .and_then(|t| t.id)
        .expect("a 2-instance task exists");
    d.reconfigure(ReconfigRequest::ScaleIn { task }).unwrap();
    assert_eq!(state_instances(&d, kv), 1);
    assert_eq!(total_count(&d, kv), 100);
    let err = d
        .reconfigure(ReconfigRequest::ScaleIn { task })
        .unwrap_err();
    assert!(
        err.to_string().contains("already at one partition"),
        "unexpected error: {err}"
    );
    d.shutdown();
}

#[test]
fn partial_scale_in_preserves_the_elementwise_sum() {
    let (d, _ui, co_occ) = deploy_cf(3, 2);
    for n in 0..30i64 {
        let (u, i) = (n % 5, 10 + n % 3);
        d.submit(
            "addRating",
            record! {"user" => Value::Int(u), "item" => Value::Int(i), "rating" => Value::Int(1)},
        )
        .unwrap();
    }
    assert!(d.quiesce(Duration::from_secs(10)));

    let sum_of = |d: &Deployment| {
        let mut summed: HashMap<(i64, i64), f64> = HashMap::new();
        for replica in 0..state_instances(d, co_occ) {
            d.with_state(co_occ, replica as u32, |s| {
                let m = s.as_matrix().unwrap();
                for r in m.row_indices() {
                    for (c, v) in m.row(r) {
                        *summed.entry((r, c)).or_default() += v;
                    }
                }
            })
            .unwrap();
        }
        summed
    };
    let before = sum_of(&d);

    // Fold the newest partial replica into a survivor.
    let snap = d.metrics();
    let task = snap
        .tasks
        .iter()
        .find(|t| t.instances == 3)
        .and_then(|t| t.id)
        .expect("a 3-instance task exists");
    d.reconfigure(ReconfigRequest::ScaleIn { task }).unwrap();
    assert_eq!(state_instances(&d, co_occ), 2);
    assert_eq!(
        sum_of(&d),
        before,
        "the fold must preserve the element-wise sum"
    );

    // getRec still computes the correct global answer afterwards.
    let mut model = CfModel::default();
    for n in 0..30i64 {
        model.add_rating(n % 5, 10 + n % 3, 1);
    }
    d.submit("getRec", record! {"user" => Value::Int(1)})
        .unwrap();
    let event = d.outputs().recv_timeout(Duration::from_secs(10)).unwrap();
    assert_eq!(pairs_of(&event.value), model.recommend(1));
    assert_eq!(d.stats().errors, 0);
    d.shutdown();
}

#[test]
fn migration_invalidates_checkpoint_chains() {
    // Incremental checkpoints + a repartition in the middle: restore must
    // never compose deltas cut against the old partitioning.
    let prog = parse_program(KV_SRC).unwrap();
    let sdg = translate(&prog).unwrap();
    let kv = sdg.state_by_name("kv").unwrap().id;
    let mut cfg = RuntimeConfig::default();
    cfg.se_instances.insert(kv, 2);
    cfg.checkpoint.enabled = true;
    cfg.checkpoint.interval = Duration::from_secs(3600); // Manual only.
    cfg.checkpoint.incremental = true;
    cfg.checkpoint.delta_chunks = 64;
    let d = Deployment::start(sdg, cfg).unwrap();

    for n in 0..200i64 {
        d.submit("bump", record! {"k" => Value::Int(n % 20)})
            .unwrap();
    }
    assert!(d.quiesce(Duration::from_secs(10)));
    d.reconfigure(ReconfigRequest::Checkpoint).unwrap(); // Base.
    for n in 0..100i64 {
        d.submit("bump", record! {"k" => Value::Int(n % 5)})
            .unwrap();
    }
    assert!(d.quiesce(Duration::from_secs(10)));
    d.reconfigure(ReconfigRequest::Checkpoint).unwrap(); // Delta.

    // Repartition 2 -> 3. The old chains describe the old key ownership,
    // so they are dropped...
    let snap = d.metrics();
    let task = snap
        .tasks
        .iter()
        .find(|t| t.instances == 2)
        .and_then(|t| t.id)
        .expect("a 2-instance task exists");
    d.reconfigure(ReconfigRequest::ScaleOut { task }).unwrap();

    // ...which makes recovery in the migration window an explicit error
    // rather than a silently wrong restore.
    assert!(d
        .reconfigure(ReconfigRequest::FailAndRecover {
            state: kv,
            replica: 0,
        })
        .is_err());

    // The next checkpoint re-bases every replica; recovery is exact again.
    for n in 0..100i64 {
        d.submit("bump", record! {"k" => Value::Int(n % 20)})
            .unwrap();
    }
    assert!(d.quiesce(Duration::from_secs(10)));
    d.reconfigure(ReconfigRequest::Checkpoint).unwrap();
    d.reconfigure(ReconfigRequest::FailAndRecover {
        state: kv,
        replica: 0,
    })
    .unwrap();
    assert!(d.quiesce(Duration::from_secs(10)));
    assert_eq!(total_count(&d, kv), 400, "no loss, no duplication");

    // Same guarantee across a scale-in boundary: checkpoint, shrink 3 -> 2,
    // checkpoint again, recover a survivor.
    d.reconfigure(ReconfigRequest::Checkpoint).unwrap();
    d.reconfigure(ReconfigRequest::ScaleIn { task }).unwrap();
    assert!(d
        .reconfigure(ReconfigRequest::FailAndRecover {
            state: kv,
            replica: 1,
        })
        .is_err());
    d.reconfigure(ReconfigRequest::Checkpoint).unwrap();
    d.reconfigure(ReconfigRequest::FailAndRecover {
        state: kv,
        replica: 1,
    })
    .unwrap();
    assert!(d.quiesce(Duration::from_secs(10)));
    assert_eq!(total_count(&d, kv), 400);
    assert_eq!(d.stats().errors, 0);
    d.shutdown();
}

#[test]
fn monitor_releases_idle_instances() {
    // Scale out under a burst, then watch the monitor shrink the task back
    // once the queues stay idle.
    let prog = parse_program("void work(int x) { emit x * 2; }").unwrap();
    let sdg = translate(&prog).unwrap();
    let task = sdg.task_by_name("work_0").unwrap().id;
    let mut cfg = RuntimeConfig {
        channel_capacity: 8,
        scaling: ScalingConfig {
            enabled: true,
            check_interval: Duration::from_millis(10),
            high_watermark: 0.5,
            patience: 2,
            low_watermark: 0.2,
            idle_patience: 3,
            min_instances: 1,
            max_instances: 4,
        },
        ..Default::default()
    };
    cfg.work_ns.insert(task, 3_000_000); // 3 ms per item.
    let d = Deployment::start(sdg, cfg).unwrap();
    for n in 0..400i64 {
        d.submit("work", record! {"x" => Value::Int(n)}).unwrap();
    }
    assert!(d.quiesce(Duration::from_secs(30)));
    assert!(d.stats().scale_outs > 0, "burst must trigger scale-out");

    // Idle now: the monitor removes the extra instances one tick at a time.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while task_instances(&d, task) > 1 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        task_instances(&d, task),
        1,
        "idle task must shrink back to min_instances"
    );
    assert!(d.stats().scale_ins > 0);
    assert_eq!(d.stats().errors, 0);
    d.shutdown();
}

#[test]
fn reactive_scaling_reacts_to_bottlenecks() {
    // A stateless pipeline with an expensive stage and a tiny channel: the
    // monitor must add instances.
    let prog = parse_program("void work(int x) { emit x * 2; }").unwrap();
    let sdg = translate(&prog).unwrap();
    let task = sdg.task_by_name("work_0").unwrap().id;
    let mut cfg = RuntimeConfig {
        channel_capacity: 8,
        scaling: ScalingConfig {
            enabled: true,
            check_interval: Duration::from_millis(20),
            high_watermark: 0.5,
            patience: 2,
            max_instances: 4,
            ..Default::default()
        },
        ..Default::default()
    };
    cfg.work_ns.insert(task, 3_000_000); // 3 ms per item.
    let d = Deployment::start(sdg, cfg).unwrap();
    for n in 0..400i64 {
        d.submit("work", record! {"x" => Value::Int(n)}).unwrap();
    }
    assert!(d.quiesce(Duration::from_secs(30)));
    assert!(
        task_instances(&d, task) > 1,
        "monitor should have scaled the bottleneck task"
    );
    assert!(d.stats().scale_outs > 0);
    // All items processed despite scaling.
    assert_eq!(d.metrics().task_by_id(task).unwrap().processed, 400);
    d.shutdown();
}

#[test]
fn quiesce_and_shutdown_are_clean_on_idle_deployment() {
    let (d, _kv) = deploy_kv(1, false);
    assert!(d.quiesce(Duration::from_secs(1)));
    assert_eq!(d.stats().processed, 0);
    d.shutdown();
}

//! Iterative computation through dataflow cycles (§3.1).
//!
//! "Cycles specify iterative computation. With cycles in the dataflow,
//! SDGs do not provide coordination during iteration by default" — each
//! item loops through the pipeline until its condition is met. This test
//! builds a native iterative-doubling graph with a cycle and checks both
//! the execution and the §3.3 allocation rule (SEs accessed in a cycle are
//! colocated).

use std::sync::Arc;
use std::time::Duration;

use sdg_common::error::SdgResult;
use sdg_common::record;
use sdg_common::value::{Key, Record, Value};
use sdg_graph::alloc::allocate;
use sdg_graph::model::{
    AccessMode, Dispatch, Distribution, NativeTask, SdgBuilder, StateAccessEdge, TaskCode,
    TaskContext, TaskKind,
};
use sdg_runtime::config::RuntimeConfig;
use sdg_runtime::deploy::Deployment;
use sdg_state::store::StateType;

/// Doubles the value and counts loop iterations in its local table.
struct DoubleTask;

impl NativeTask for DoubleTask {
    fn process(&self, input: Record, ctx: &mut dyn TaskContext) -> SdgResult<()> {
        let v = input.require("v")?.as_int()?;
        let limit = input.require("limit")?.as_int()?;
        let table = ctx.state().expect("double task has state").as_table()?;
        table.update(Key::str("steps"), |prev| {
            Value::Int(prev.map(|p| p.as_int().unwrap_or(0)).unwrap_or(0) + 1)
        });
        let mut out = Record::with_capacity(2);
        out.set("v", Value::Int(v * 2));
        out.set("limit", Value::Int(limit));
        ctx.forward(out);
        Ok(())
    }
}

/// Emits finished values; loops unfinished ones back around the cycle.
struct CheckTask;

impl NativeTask for CheckTask {
    fn process(&self, input: Record, ctx: &mut dyn TaskContext) -> SdgResult<()> {
        let v = input.require("v")?.as_int()?;
        let limit = input.require("limit")?.as_int()?;
        if v >= limit {
            let mut done = Record::with_capacity(1);
            done.set("value", Value::Int(v));
            ctx.emit(done);
        } else {
            ctx.forward(input);
        }
        Ok(())
    }
}

fn build() -> (sdg_graph::model::Sdg, sdg_common::ids::StateId) {
    let mut b = SdgBuilder::new();
    let counters = b.add_state("counters", StateType::Table, Distribution::Local);
    let seed = b.add_task(
        "seed",
        TaskKind::Entry {
            method: "double_until".into(),
        },
        TaskCode::Passthrough,
        None,
    );
    let double = b.add_task(
        "double",
        TaskKind::Compute,
        TaskCode::Native(Arc::new(DoubleTask)),
        Some(StateAccessEdge {
            state: counters,
            mode: AccessMode::Local,
            writes: true,
        }),
    );
    let check = b.add_task(
        "check",
        TaskKind::Compute,
        TaskCode::Native(Arc::new(CheckTask)),
        None,
    );
    b.connect(
        seed,
        double,
        Dispatch::OneToAny,
        vec!["v".into(), "limit".into()],
    );
    b.connect(
        double,
        check,
        Dispatch::OneToAny,
        vec!["v".into(), "limit".into()],
    );
    // The iteration cycle: unfinished items go around again.
    b.connect(
        check,
        double,
        Dispatch::OneToAny,
        vec!["v".into(), "limit".into()],
    );
    (b.build().expect("valid cyclic SDG"), counters)
}

#[test]
fn cycles_iterate_until_convergence() {
    let (sdg, counters) = build();
    let d = Deployment::start(sdg, RuntimeConfig::default()).unwrap();

    // 1 must double 10 times to reach 1024.
    d.submit(
        "double_until",
        record! {"v" => Value::Int(1), "limit" => Value::Int(1000)},
    )
    .unwrap();
    let out = d.outputs().recv_timeout(Duration::from_secs(10)).unwrap();
    assert_eq!(out.value, Value::Int(1024));

    // Several concurrent iterations with different depths.
    for v in [3i64, 7, 50] {
        d.submit(
            "double_until",
            record! {"v" => Value::Int(v), "limit" => Value::Int(500)},
        )
        .unwrap();
    }
    let mut results = Vec::new();
    for _ in 0..3 {
        results.push(
            d.outputs()
                .recv_timeout(Duration::from_secs(10))
                .unwrap()
                .value
                .as_int()
                .unwrap(),
        );
    }
    results.sort_unstable();
    assert_eq!(results, vec![768, 800, 896]); // 3*2^8, 50*2^4, 7*2^7.
    assert!(d.quiesce(Duration::from_secs(10)));

    // The loop counter recorded every pass through `double`.
    let steps = d
        .with_state(counters, 0, |s| {
            s.as_table()
                .unwrap()
                .get(&Key::str("steps"))
                .unwrap()
                .as_int()
                .unwrap()
        })
        .unwrap();
    assert_eq!(steps, 10 + 8 + 7 + 4);
    assert_eq!(d.stats().errors, 0);
    d.shutdown();
}

#[test]
fn allocation_colocates_cycle_state() {
    let (sdg, counters) = build();
    // §3.3 step 1: SEs accessed inside a cycle share a node, and the TEs of
    // the cycle sit with them.
    let cyclic = sdg.tasks_in_cycles();
    assert_eq!(cyclic.len(), 2, "double and check form the cycle");
    let alloc = allocate(&sdg);
    let double = sdg.task_by_name("double").unwrap().id;
    assert_eq!(alloc.node_of_task(double), alloc.node_of_state(counters));
}

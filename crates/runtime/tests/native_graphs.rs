//! Native-graph topologies beyond the linear pipelines the translator
//! emits: fan-out to multiple consumers, flat-map stages, and mixed
//! native/interpreted graphs.

use std::sync::Arc;
use std::time::Duration;

use sdg_common::error::SdgResult;
use sdg_common::record;
use sdg_common::value::{Key, Record, Value};
use sdg_graph::model::{
    AccessMode, Dispatch, Distribution, NativeTask, SdgBuilder, StateAccessEdge, TaskCode,
    TaskContext, TaskKind,
};
use sdg_runtime::config::RuntimeConfig;
use sdg_runtime::deploy::Deployment;
use sdg_state::partition::PartitionDim;
use sdg_state::store::StateType;

/// Counts items in its table under the record's `k`.
struct CountTask;

impl NativeTask for CountTask {
    fn process(&self, input: Record, ctx: &mut dyn TaskContext) -> SdgResult<()> {
        let key = input.require("k")?.to_key()?;
        let table = ctx.state().expect("stateful").as_table()?;
        table.update(key, |v| {
            Value::Int(v.map(|x| x.as_int().unwrap_or(0)).unwrap_or(0) + 1)
        });
        Ok(())
    }
}

#[test]
fn one_producer_feeds_two_consumers() {
    // source ──▶ left (counts by k)
    //        └─▶ right (counts by k, separate table)
    let mut b = SdgBuilder::new();
    let left_state = b.add_state(
        "left",
        StateType::Table,
        Distribution::Partitioned {
            dim: PartitionDim::Row,
        },
    );
    let right_state = b.add_state(
        "right",
        StateType::Table,
        Distribution::Partitioned {
            dim: PartitionDim::Row,
        },
    );
    let source = b.add_task(
        "source",
        TaskKind::Entry {
            method: "feed".into(),
        },
        TaskCode::Passthrough,
        None,
    );
    let left = b.add_task(
        "left",
        TaskKind::Compute,
        TaskCode::Native(Arc::new(CountTask)),
        Some(StateAccessEdge {
            state: left_state,
            mode: AccessMode::Partitioned {
                key: "k".into(),
                dim: PartitionDim::Row,
            },
            writes: true,
        }),
    );
    let right = b.add_task(
        "right",
        TaskKind::Compute,
        TaskCode::Native(Arc::new(CountTask)),
        Some(StateAccessEdge {
            state: right_state,
            mode: AccessMode::Partitioned {
                key: "k".into(),
                dim: PartitionDim::Row,
            },
            writes: true,
        }),
    );
    b.connect(
        source,
        left,
        Dispatch::Partitioned { key: "k".into() },
        vec!["k".into()],
    );
    b.connect(
        source,
        right,
        Dispatch::Partitioned { key: "k".into() },
        vec!["k".into()],
    );
    let sdg = b.build().unwrap();

    let mut cfg = RuntimeConfig::default();
    cfg.se_instances.insert(left_state, 2);
    cfg.se_instances.insert(right_state, 3);
    let d = Deployment::start(sdg, cfg).unwrap();
    for n in 0..200i64 {
        d.submit("feed", record! {"k" => Value::Int(n % 10)})
            .unwrap();
    }
    assert!(d.quiesce(Duration::from_secs(30)));

    // Both sides saw every item, despite different partition counts.
    for (state, instances) in [(left_state, 2usize), (right_state, 3)] {
        let mut total = 0i64;
        for replica in 0..instances {
            d.with_state(state, replica as u32, |s| {
                s.as_table()
                    .unwrap()
                    .for_each(|_, v| total += v.as_int().unwrap());
            })
            .unwrap();
        }
        assert_eq!(total, 200, "{state}");
        // Per-key counts are exact.
        let key = Key::Int(3);
        let replica = (key.stable_hash() % instances as u64) as u32;
        let count = d
            .with_state(state, replica, |s| s.as_table().unwrap().get(&key))
            .unwrap();
        assert_eq!(count, Some(Value::Int(20)));
    }
    assert_eq!(d.stats().errors, 0);
    d.shutdown();
}

/// Splits a record into several forwarded records (flat map).
struct ExplodeTask;

impl NativeTask for ExplodeTask {
    fn process(&self, input: Record, ctx: &mut dyn TaskContext) -> SdgResult<()> {
        let n = input.require("n")?.as_int()?;
        for i in 0..n {
            let mut out = Record::with_capacity(1);
            out.set("k", Value::Int(i));
            ctx.forward(out);
        }
        Ok(())
    }
}

#[test]
fn flat_map_fans_out_items() {
    let mut b = SdgBuilder::new();
    let counts = b.add_state(
        "counts",
        StateType::Table,
        Distribution::Partitioned {
            dim: PartitionDim::Row,
        },
    );
    let explode = b.add_task(
        "explode",
        TaskKind::Entry {
            method: "explode".into(),
        },
        TaskCode::Native(Arc::new(ExplodeTask)),
        None,
    );
    let count = b.add_task(
        "count",
        TaskKind::Compute,
        TaskCode::Native(Arc::new(CountTask)),
        Some(StateAccessEdge {
            state: counts,
            mode: AccessMode::Partitioned {
                key: "k".into(),
                dim: PartitionDim::Row,
            },
            writes: true,
        }),
    );
    b.connect(
        explode,
        count,
        Dispatch::Partitioned { key: "k".into() },
        vec!["k".into()],
    );
    let sdg = b.build().unwrap();
    let mut cfg = RuntimeConfig::default();
    cfg.se_instances.insert(counts, 2);
    let d = Deployment::start(sdg, cfg).unwrap();

    // Each request n produces n items with keys 0..n.
    for n in [5i64, 3, 7] {
        d.submit("explode", record! {"n" => Value::Int(n)}).unwrap();
    }
    assert!(d.quiesce(Duration::from_secs(30)));
    // Key 0 appears in all three requests; key 6 only in the last.
    let count_of = |k: i64| {
        let key = Key::Int(k);
        let replica = (key.stable_hash() % 2) as u32;
        d.with_state(counts, replica, |s| s.as_table().unwrap().get(&key))
            .unwrap()
    };
    assert_eq!(count_of(0), Some(Value::Int(3)));
    assert_eq!(count_of(4), Some(Value::Int(2)));
    assert_eq!(count_of(6), Some(Value::Int(1)));
    assert_eq!(count_of(9), None);
    d.shutdown();
}

#[test]
fn stateless_fanout_scales_independently_of_consumers() {
    // Stateless tasks can have any instance count; stateful ones follow
    // their SE. Mixed graph: 4 stateless parsers feed 2 partitions.
    let mut b = SdgBuilder::new();
    let counts = b.add_state(
        "counts",
        StateType::Table,
        Distribution::Partitioned {
            dim: PartitionDim::Row,
        },
    );
    let parse = b.add_task(
        "parse",
        TaskKind::Entry {
            method: "feed".into(),
        },
        TaskCode::Passthrough,
        None,
    );
    let count = b.add_task(
        "count",
        TaskKind::Compute,
        TaskCode::Native(Arc::new(CountTask)),
        Some(StateAccessEdge {
            state: counts,
            mode: AccessMode::Partitioned {
                key: "k".into(),
                dim: PartitionDim::Row,
            },
            writes: true,
        }),
    );
    b.connect(
        parse,
        count,
        Dispatch::Partitioned { key: "k".into() },
        vec!["k".into()],
    );
    let sdg = b.build().unwrap();
    let parse_id = sdg.task_by_name("parse").unwrap().id;
    let mut cfg = RuntimeConfig::default();
    cfg.se_instances.insert(counts, 2);
    cfg.task_instances.insert(parse_id, 4);
    let d = Deployment::start(sdg, cfg).unwrap();
    assert_eq!(d.metrics().task_by_id(parse_id).unwrap().instances, 4);

    for n in 0..400i64 {
        d.submit("feed", record! {"k" => Value::Int(n % 8)})
            .unwrap();
    }
    assert!(d.quiesce(Duration::from_secs(30)));
    let mut total = 0i64;
    for replica in 0..2u32 {
        d.with_state(counts, replica, |s| {
            s.as_table()
                .unwrap()
                .for_each(|_, v| total += v.as_int().unwrap());
        })
        .unwrap();
    }
    assert_eq!(total, 400);
    assert_eq!(d.stats().errors, 0);
    d.shutdown();
}

//! Edge micro-batching behaviour.
//!
//! Worker-level tests drive a single [`Worker`] against a probe channel to
//! pin down the three flush triggers (batch size, linger timeout, `Stop`);
//! deployment-level tests run a two-stage pipeline under batching and
//! assert end-to-end exactness, including checkpoint/recovery replay out
//! of batched output-buffer appends (the Fig. 11 path).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;
use sdg_common::error::{SdgError, SdgResult};
use sdg_common::ids::{EdgeId, StateId, TaskId};
use sdg_common::obs::MetricsRegistry;
use sdg_common::record;
use sdg_common::time::TsGen;
use sdg_common::value::{Record, Value};
use sdg_graph::model::{
    AccessMode, Dispatch, Distribution, NativeTask, SdgBuilder, StateAccessEdge, TaskCode,
    TaskContext, TaskKind,
};
use sdg_runtime::config::{BatchConfig, RuntimeConfig};
use sdg_runtime::deploy::Deployment;
use sdg_runtime::reconfig::ReconfigRequest;
use sdg_runtime::worker::{
    BufferRegistry, MailboxSender, OutEdge, OutputEvent, PreparedCode, Worker, WorkerMsg,
};
use sdg_runtime::{Item, Scratch};
use sdg_state::partition::PartitionDim;
use sdg_state::store::StateType;

// ---------------------------------------------------------------------------
// Worker-level flush triggers
// ---------------------------------------------------------------------------

/// A passthrough worker with one batched out edge into a probe channel.
/// Returns the input sender, the probe receiver, and the join handle.
fn probe_worker(
    batch: BatchConfig,
) -> (
    Sender<WorkerMsg>,
    Receiver<WorkerMsg>,
    std::thread::JoinHandle<()>,
) {
    let (in_tx, in_rx) = unbounded::<WorkerMsg>();
    let (probe_tx, probe_rx) = unbounded::<WorkerMsg>();
    let (sink_tx, _sink_rx) = unbounded::<OutputEvent>();
    // The sink receiver must outlive the worker or emits would error; this
    // worker never emits, so dropping it is fine.
    let registry = MetricsRegistry::new();
    let out = OutEdge::new(
        EdgeId(7),
        Dispatch::OneToAny,
        Vec::new(),
        Arc::new(RwLock::new(vec![MailboxSender::Thread(probe_tx)])),
        TsGen::new(),
        0,
        Arc::new(BufferRegistry::new(64)),
        false,
        false,
        batch,
        Arc::new(AtomicU64::new(0)),
    );
    let worker = Worker {
        name: "probe".into(),
        replica: 0,
        code: PreparedCode::Passthrough,
        scratch: Scratch::new(),
        cell: None,
        route_key: None,
        outs: vec![out],
        sink: sink_tx,
        pending_gathers: HashMap::new(),
        gather_var: None,
        work_ns: 0,
        speed: 1.0,
        alive: Arc::new(AtomicBool::new(true)),
        obs: registry.task("probe"),
        e2e: Arc::clone(registry.e2e_latency()),
        dedupe: false,
        in_flight: Arc::new(AtomicU64::new(0)),
        work_debt: Duration::ZERO,
        task: TaskId(0),
        heartbeat: Arc::new(AtomicU64::new(0)),
        fault: None,
        hub: None,
    };
    let handle = std::thread::spawn(move || worker.run(in_rx));
    (in_tx, probe_rx, handle)
}

fn input_item(corr: u64) -> Item {
    Item {
        edge: EdgeId(1),
        src_replica: 0,
        ts: corr + 1,
        corr,
        expect: 1,
        payload: Arc::new(record! {"k" => Value::Int(corr as i64)}),
        submitted_at: None,
    }
}

/// Number of records carried by one outbound message.
fn msg_len(msg: &WorkerMsg) -> usize {
    match msg {
        WorkerMsg::Item(_) => 1,
        WorkerMsg::Batch(items) => items.len(),
        WorkerMsg::Stop => 0,
    }
}

#[test]
fn full_batch_flushes_immediately_on_size() {
    // Linger is far too long to fire: only the size trigger can flush.
    let batch = BatchConfig {
        max_items: 4,
        linger: Duration::from_secs(60),
    };
    let (tx, probe, handle) = probe_worker(batch);
    for corr in 0..4 {
        tx.send(WorkerMsg::Item(input_item(corr))).unwrap();
    }
    let msg = probe
        .recv_timeout(Duration::from_secs(5))
        .expect("full batch must flush on size, not linger");
    assert_eq!(msg_len(&msg), 4);
    assert!(matches!(msg, WorkerMsg::Batch(_)));
    tx.send(WorkerMsg::Stop).unwrap();
    handle.join().unwrap();
}

#[test]
fn partial_batch_flushes_on_linger_timeout() {
    let linger = Duration::from_millis(30);
    let batch = BatchConfig {
        max_items: 100,
        linger,
    };
    let (tx, probe, handle) = probe_worker(batch);
    let t0 = Instant::now();
    for corr in 0..2 {
        tx.send(WorkerMsg::Item(input_item(corr))).unwrap();
    }
    // Nothing may flush before the linger deadline (2 ≪ 100 items).
    assert!(
        probe.recv_timeout(Duration::from_millis(5)).is_err(),
        "partial batch flushed before its linger deadline"
    );
    let msg = probe
        .recv_timeout(Duration::from_secs(5))
        .expect("linger expiry must flush the partial batch without a Stop");
    assert!(t0.elapsed() >= linger, "flush arrived before the linger");
    assert_eq!(msg_len(&msg), 2);
    tx.send(WorkerMsg::Stop).unwrap();
    handle.join().unwrap();
}

#[test]
fn stop_flushes_pending_batch() {
    // Neither size (3 < 100) nor linger (60 s) can trigger: only `Stop`.
    let batch = BatchConfig {
        max_items: 100,
        linger: Duration::from_secs(60),
    };
    let (tx, probe, handle) = probe_worker(batch);
    for corr in 0..3 {
        tx.send(WorkerMsg::Item(input_item(corr))).unwrap();
    }
    tx.send(WorkerMsg::Stop).unwrap();
    handle.join().unwrap();
    let msg = probe.try_recv().expect("Stop must flush the pending batch");
    assert_eq!(msg_len(&msg), 3);
    assert!(probe.try_recv().is_err(), "exactly one flush expected");
}

#[test]
fn channel_disconnect_flushes_like_stop() {
    let batch = BatchConfig {
        max_items: 100,
        linger: Duration::from_secs(60),
    };
    let (tx, probe, handle) = probe_worker(batch);
    tx.send(WorkerMsg::Item(input_item(0))).unwrap();
    drop(tx); // Producer side goes away entirely.
    handle.join().unwrap();
    assert_eq!(msg_len(&probe.try_recv().expect("flush on disconnect")), 1);
}

#[test]
fn steady_arrivals_do_not_starve_linger_flushes() {
    // A zero linger makes every parked item immediately due, so each
    // message must be followed by a flush. The regression: `recv_timeout`
    // hands back queued messages before it checks the clock, so a steady
    // burst (queue never empty) starved the deadline and everything came
    // out as one end-of-burst batch.
    let batch = BatchConfig {
        max_items: 1000,
        linger: Duration::ZERO,
    };
    let (tx, probe, handle) = probe_worker(batch);
    for corr in 0..50 {
        tx.send(WorkerMsg::Item(input_item(corr))).unwrap();
    }
    tx.send(WorkerMsg::Stop).unwrap();
    handle.join().unwrap();
    let mut total = 0;
    let mut msgs = 0;
    while let Ok(m) = probe.try_recv() {
        total += msg_len(&m);
        msgs += 1;
    }
    assert_eq!(total, 50, "no item may be lost or duplicated");
    assert!(
        msgs > 1,
        "an expired linger must flush mid-burst, not wait for the queue to drain"
    );
}

#[test]
fn stop_racing_linger_deadline_resolves_batches_exactly_once() {
    // A parked batch whose linger deadline expires right around `Stop`
    // must be resolved exactly once — either the timeout flush or the Stop
    // flush wins, never both, never neither. Repeated to shake the race.
    for round in 0..20 {
        let batch = BatchConfig {
            max_items: 100,
            linger: Duration::from_millis(1),
        };
        let (tx, probe, handle) = probe_worker(batch);
        for corr in 0..3 {
            tx.send(WorkerMsg::Item(input_item(corr))).unwrap();
        }
        // Let the deadline expire (or not — both interleavings must work).
        if round % 2 == 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        tx.send(WorkerMsg::Stop).unwrap();
        handle.join().unwrap();
        let mut total = 0;
        while let Ok(m) = probe.try_recv() {
            total += msg_len(&m);
        }
        assert_eq!(
            total, 3,
            "round {round}: Stop racing an expired linger lost or duplicated items"
        );
    }
}

/// Counts applications into a shared atomic that outlives the deployment.
struct SharedCountTask(Arc<AtomicU64>);

impl NativeTask for SharedCountTask {
    fn process(&self, input: Record, ctx: &mut dyn TaskContext) -> SdgResult<()> {
        CountTask.process(input, ctx)?;
        self.0.fetch_add(1, std::sync::atomic::Ordering::AcqRel);
        Ok(())
    }
}

/// Deployment-level determinism of the same race, under both schedulers:
/// a 1 ms linger keeps batches parked right up to the drain barrier, so
/// quiesce races the timer-driven flush on every round, and Stop races
/// whatever the last round left parked. Every submitted item must be
/// applied exactly once, observed via a counter that survives `shutdown`
/// consuming the deployment.
#[test]
fn quiesce_and_stop_racing_linger_are_deterministic_under_both_schedulers() {
    use sdg_runtime::config::SchedulerMode;
    for scheduler in [SchedulerMode::Threads, SchedulerMode::Pool] {
        let applied = Arc::new(AtomicU64::new(0));
        let mut b = SdgBuilder::new();
        let counts = b.add_state(
            "counts",
            StateType::Table,
            Distribution::Partitioned {
                dim: PartitionDim::Row,
            },
        );
        let gen = b.add_task(
            "gen",
            TaskKind::Entry {
                method: "feed".into(),
            },
            TaskCode::Passthrough,
            None,
        );
        let count = b.add_task(
            "count",
            TaskKind::Compute,
            TaskCode::Native(Arc::new(SharedCountTask(Arc::clone(&applied)))),
            Some(StateAccessEdge {
                state: counts,
                mode: AccessMode::Partitioned {
                    key: "k".into(),
                    dim: PartitionDim::Row,
                },
                writes: true,
            }),
        );
        b.connect(
            gen,
            count,
            Dispatch::Partitioned { key: "k".into() },
            vec!["k".into()],
        );
        let mut cfg = RuntimeConfig {
            scheduler,
            sched_threads: 4,
            batch: BatchConfig {
                max_items: 100,
                linger: Duration::from_millis(1),
            },
            ..Default::default()
        };
        cfg.se_instances.insert(counts, 2);
        let d = Deployment::start(b.build().unwrap(), cfg).unwrap();
        for round in 0..6i64 {
            for n in 0..10i64 {
                d.submit("feed", record! {"k" => Value::Int((round * 10 + n) % 12)})
                    .unwrap();
            }
            // The 10-item batch (< 100) only flushes via the 1 ms linger:
            // quiesce must observe the parked items and outwait the timer.
            assert!(
                d.quiesce(Duration::from_secs(10)),
                "{scheduler:?}: round {round}: parked batch starved the drain barrier"
            );
        }
        // Stop races whatever the last linger left behind.
        d.shutdown();
        assert_eq!(
            applied.load(std::sync::atomic::Ordering::Acquire),
            60,
            "{scheduler:?}: items lost or duplicated around linger/Stop races"
        );
    }
}

// ---------------------------------------------------------------------------
// Deployment-level exactness under batching
// ---------------------------------------------------------------------------

/// Bumps `counts[k]` by one per input record.
struct CountTask;

impl NativeTask for CountTask {
    fn process(&self, input: Record, ctx: &mut dyn TaskContext) -> SdgResult<()> {
        let key = input.require("k")?.to_key()?;
        let table = ctx
            .state()
            .ok_or_else(|| SdgError::Runtime("count task requires state".into()))?
            .as_table()?;
        table.update(key, |v| {
            Value::Int(v.map(|x| x.as_int().unwrap_or(0)).unwrap_or(0) + 1)
        });
        Ok(())
    }
}

/// Two-stage pipeline: a passthrough entry forwards over a partitioned,
/// batched dataflow edge into a counting state task.
fn deploy_pipeline(partitions: usize, batch: BatchConfig, ft: bool) -> (Deployment, StateId) {
    deploy_pipeline_sched(partitions, batch, ft, None)
}

/// Like [`deploy_pipeline`], optionally pinning the scheduler (`None`
/// keeps the `SDG_SCHED`-derived default, so the whole file still runs
/// under either mode via the environment).
fn deploy_pipeline_sched(
    partitions: usize,
    batch: BatchConfig,
    ft: bool,
    scheduler: Option<sdg_runtime::config::SchedulerMode>,
) -> (Deployment, StateId) {
    let mut b = SdgBuilder::new();
    let counts = b.add_state(
        "counts",
        StateType::Table,
        Distribution::Partitioned {
            dim: PartitionDim::Row,
        },
    );
    let gen = b.add_task(
        "gen",
        TaskKind::Entry {
            method: "feed".into(),
        },
        TaskCode::Passthrough,
        None,
    );
    let count = b.add_task(
        "count",
        TaskKind::Compute,
        TaskCode::Native(Arc::new(CountTask)),
        Some(StateAccessEdge {
            state: counts,
            mode: AccessMode::Partitioned {
                key: "k".into(),
                dim: PartitionDim::Row,
            },
            writes: true,
        }),
    );
    b.connect(
        gen,
        count,
        Dispatch::Partitioned { key: "k".into() },
        vec!["k".into()],
    );
    let sdg = b.build().unwrap();
    let mut cfg = RuntimeConfig::default();
    if let Some(s) = scheduler {
        cfg.scheduler = s;
        cfg.sched_threads = 4;
    }
    cfg.se_instances.insert(counts, partitions);
    cfg.batch = batch;
    if ft {
        cfg.checkpoint.enabled = true;
        cfg.checkpoint.interval = Duration::from_secs(3600); // Manual only.
    }
    (Deployment::start(sdg, cfg).unwrap(), counts)
}

fn total_count(d: &Deployment, counts: StateId) -> i64 {
    let instances = d
        .metrics()
        .state_by_id(counts)
        .map_or(0, |s| s.instances as usize);
    let mut total = 0;
    for replica in 0..instances {
        d.with_state(counts, replica as u32, |s| {
            s.as_table().unwrap().for_each(|_, v| {
                total += v.as_int().unwrap();
            });
        })
        .unwrap();
    }
    total
}

#[test]
fn batched_pipeline_counts_are_exact() {
    // 500 items with batch size 16: 31 full batches plus a 4-item tail
    // that only the linger (or shutdown) can flush.
    let (d, counts) = deploy_pipeline(
        3,
        BatchConfig {
            max_items: 16,
            linger: Duration::from_millis(2),
        },
        false,
    );
    for n in 0..500i64 {
        d.submit("feed", record! {"k" => Value::Int(n % 50)})
            .unwrap();
    }
    assert!(d.quiesce(Duration::from_secs(10)));
    assert_eq!(total_count(&d, counts), 500);
    assert_eq!(d.stats().errors, 0);
    d.shutdown();
}

#[test]
fn recovery_replays_batched_buffers_exactly_once() {
    // The Fig. 11 path under batching: output buffers are appended via the
    // batched path (`push_all`), a partition dies, and replay must restore
    // exact counts — no loss, no duplicates.
    let (d, counts) = deploy_pipeline(
        2,
        BatchConfig {
            max_items: 4,
            linger: Duration::from_millis(1),
        },
        true,
    );
    for n in 0..300i64 {
        d.submit("feed", record! {"k" => Value::Int(n % 20)})
            .unwrap();
    }
    assert!(d.quiesce(Duration::from_secs(10)));
    d.reconfigure(ReconfigRequest::Checkpoint).unwrap();

    // Post-checkpoint items live only in (batch-appended) upstream buffers
    // and the soon-to-be-lost partition state.
    for n in 0..200i64 {
        d.submit("feed", record! {"k" => Value::Int(n % 20)})
            .unwrap();
    }
    assert!(d.quiesce(Duration::from_secs(10)));
    assert_eq!(total_count(&d, counts), 500);

    let report = d
        .reconfigure(ReconfigRequest::FailAndRecover {
            state: counts,
            replica: 0,
        })
        .unwrap();
    assert!(d.quiesce(Duration::from_secs(10)));
    assert_eq!(
        total_count(&d, counts),
        500,
        "recovery under batching lost or duplicated updates"
    );
    assert!(
        report.replayed > 0,
        "post-checkpoint items must be replayed"
    );

    // The pipeline keeps processing normally afterwards.
    for n in 0..100i64 {
        d.submit("feed", record! {"k" => Value::Int(n % 20)})
            .unwrap();
    }
    assert!(d.quiesce(Duration::from_secs(10)));
    assert_eq!(total_count(&d, counts), 600);
    assert_eq!(d.stats().errors, 0);
    d.shutdown();
}

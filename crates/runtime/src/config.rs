//! Runtime and cluster configuration.

use std::collections::HashMap;
use std::time::Duration;

use sdg_checkpoint::config::CheckpointConfig;
use sdg_common::error::{SdgError, SdgResult};
use sdg_common::ids::{StateId, TaskId};

/// One simulated cluster node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSpec {
    /// Relative processing speed; `1.0` is a normal node, `0.5` takes twice
    /// as long per item (a straggler, §6.3).
    pub speed: f64,
}

impl Default for NodeSpec {
    fn default() -> Self {
        NodeSpec { speed: 1.0 }
    }
}

/// The simulated cluster: nodes are allocated in order; when the SDG needs
/// more nodes than specified, extra nodes of speed 1.0 are assumed.
#[derive(Debug, Clone, Default)]
pub struct ClusterSpec {
    /// Node specifications in allocation order.
    pub nodes: Vec<NodeSpec>,
}

impl ClusterSpec {
    /// A uniform cluster of `n` normal-speed nodes.
    pub fn uniform(n: usize) -> Self {
        ClusterSpec {
            nodes: vec![NodeSpec::default(); n],
        }
    }

    /// Returns the speed of node `idx` (1.0 for unspecified nodes).
    pub fn speed_of(&self, idx: usize) -> f64 {
        self.nodes.get(idx).map(|n| n.speed).unwrap_or(1.0)
    }
}

/// Reactive runtime-parallelism settings (§3.3 "Runtime parallelism and
/// stragglers").
#[derive(Debug, Clone)]
pub struct ScalingConfig {
    /// Master switch.
    pub enabled: bool,
    /// How often the monitor samples queue depths.
    pub check_interval: Duration,
    /// A task is a bottleneck when its mean queue depth exceeds this
    /// fraction of channel capacity.
    pub high_watermark: f64,
    /// Consecutive saturated samples before scaling out.
    pub patience: u32,
    /// Upper bound on instances per task.
    pub max_instances: u32,
    /// A scaled-out task is idle when its mean queue depth falls below this
    /// fraction of channel capacity. Must stay below `high_watermark`.
    pub low_watermark: f64,
    /// Consecutive idle samples before scaling in. Deliberately larger than
    /// `patience` by default: scale-in migrates state, so the monitor should
    /// be slower to reclaim than to grow.
    pub idle_patience: u32,
    /// Lower bound on instances per task — scale-in never goes below this.
    pub min_instances: u32,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        ScalingConfig {
            enabled: false,
            check_interval: Duration::from_millis(100),
            high_watermark: 0.75,
            patience: 3,
            max_instances: 8,
            low_watermark: 0.1,
            idle_patience: 5,
            min_instances: 1,
        }
    }
}

impl ScalingConfig {
    /// Validates internal consistency of the scaling thresholds.
    pub fn validate(&self) -> SdgResult<()> {
        if !(0.0..=1.0).contains(&self.high_watermark) {
            return Err(SdgError::Config(
                "scaling.high_watermark must be in [0, 1]".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.low_watermark) {
            return Err(SdgError::Config(
                "scaling.low_watermark must be in [0, 1]".into(),
            ));
        }
        if self.low_watermark >= self.high_watermark {
            return Err(SdgError::Config(
                "scaling.low_watermark must be below high_watermark".into(),
            ));
        }
        if self.min_instances == 0 {
            return Err(SdgError::Config("scaling.min_instances must be ≥ 1".into()));
        }
        if self.min_instances > self.max_instances {
            return Err(SdgError::Config(
                "scaling.min_instances must not exceed max_instances".into(),
            ));
        }
        Ok(())
    }
}

/// The self-healing supervisor: failure detection (caught panics +
/// heartbeat scans) and automatic §5 fail-and-recover with bounded
/// backoff (see [`crate::fault`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Master switch. On by default: with no fault plan and no panics the
    /// supervisor is a parked thread waking `heartbeat_interval`-ly.
    pub enabled: bool,
    /// Heuristic hang detection from stalled heartbeat epochs. Off by
    /// default: an instance legitimately blocked on downstream
    /// backpressure for `heartbeat_interval × miss_threshold` is
    /// indistinguishable from a hung one, so this is opt-in for chaos
    /// tests and deployments that tune the threshold to their topology.
    /// Panic detection is precise and always on with the supervisor.
    pub hang_detection: bool,
    /// Supervisor scan period (and heartbeat staleness unit).
    pub heartbeat_interval: Duration,
    /// Consecutive stalled scans before an instance is declared hung.
    pub miss_threshold: u32,
    /// Recovery attempts per failed instance before escalating to the
    /// terminal `Degraded` health state.
    pub max_attempts: u32,
    /// First retry backoff; doubles per attempt (with jitter).
    pub backoff_base: Duration,
    /// Upper bound on the exponential backoff. Must be ≥ `backoff_base`.
    pub backoff_cap: Duration,
    /// Storm guard: recoveries driven per scan, at most.
    pub max_concurrent_recoveries: usize,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            enabled: true,
            hang_detection: false,
            heartbeat_interval: Duration::from_millis(20),
            miss_threshold: 10,
            max_attempts: 5,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            max_concurrent_recoveries: 1,
        }
    }
}

impl SupervisorConfig {
    /// Validates internal consistency of the supervisor settings.
    pub fn validate(&self) -> SdgResult<()> {
        if self.heartbeat_interval.is_zero() {
            return Err(SdgError::Config(
                "supervisor.heartbeat_interval must be positive".into(),
            ));
        }
        if self.miss_threshold == 0 {
            return Err(SdgError::Config(
                "supervisor.miss_threshold must be ≥ 1".into(),
            ));
        }
        if self.max_attempts == 0 {
            return Err(SdgError::Config(
                "supervisor.max_attempts must be ≥ 1".into(),
            ));
        }
        if self.backoff_cap < self.backoff_base {
            return Err(SdgError::Config(
                "supervisor.backoff_cap must be ≥ backoff_base".into(),
            ));
        }
        if self.max_concurrent_recoveries == 0 {
            return Err(SdgError::Config(
                "supervisor.max_concurrent_recoveries must be ≥ 1".into(),
            ));
        }
        Ok(())
    }
}

/// Which execution engine runs translated (StateLang) TE code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecEngine {
    /// Deploy-time slot compilation: names are interned into per-TE symbol
    /// tables, the per-item environment is a reused flat register file.
    /// The default.
    #[default]
    Compiled,
    /// The tree-walking reference interpreter over a `HashMap` environment.
    /// Slower; kept as the semantic baseline and for debugging.
    Reference,
}

impl ExecEngine {
    /// Reads `SDG_ENGINE` (`compiled` | `reference`, case-insensitive);
    /// unset or unrecognised values fall back to [`ExecEngine::Compiled`].
    pub fn from_env() -> Self {
        match std::env::var("SDG_ENGINE") {
            Ok(v) if v.eq_ignore_ascii_case("reference") => ExecEngine::Reference,
            _ => ExecEngine::Compiled,
        }
    }
}

/// Which scheduler hosts TE instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerMode {
    /// One dedicated OS thread per TE instance. The reference
    /// implementation: simple, but deployment cost and context-switch
    /// pressure grow linearly with replica count. The default.
    #[default]
    Threads,
    /// Work-stealing cooperative executor: every TE instance becomes an
    /// actor with a serial mailbox, multiplexed onto
    /// [`RuntimeConfig::sched_threads`] pool workers (see
    /// [`crate::sched`]). Ordering and dedupe semantics are identical to
    /// [`SchedulerMode::Threads`].
    Pool,
}

impl SchedulerMode {
    /// Reads `SDG_SCHED` (`threads` | `pool`, case-insensitive); unset or
    /// unrecognised values fall back to [`SchedulerMode::Threads`].
    pub fn from_env() -> Self {
        match std::env::var("SDG_SCHED") {
            Ok(v) if v.eq_ignore_ascii_case("pool") => SchedulerMode::Pool,
            _ => SchedulerMode::Threads,
        }
    }
}

/// Edge micro-batching settings.
///
/// Producers coalesce consecutive items per (edge, destination replica)
/// into one channel message and one output-buffer append, flushing when
/// `max_items` accumulate, when the oldest pending item has waited
/// `linger`, or at shutdown. `max_items = 1` disables batching (each item
/// is sent eagerly, the pre-batching behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Flush a destination's pending batch at this size. `1` disables
    /// batching.
    pub max_items: usize,
    /// Flush pending batches when the oldest pending item has waited this
    /// long (bounds added latency under low load).
    pub linger: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_items: 1,
            linger: Duration::from_millis(1),
        }
    }
}

impl BatchConfig {
    /// Batching disabled: every item is sent eagerly.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Batch up to `max_items` with the default 1 ms linger.
    pub fn with_max_items(max_items: usize) -> Self {
        BatchConfig {
            max_items,
            ..Default::default()
        }
    }
}

/// Full runtime configuration for one deployment.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Bounded channel capacity between TE instances (pipelining with
    /// backpressure).
    pub channel_capacity: usize,
    /// Initial SE instance counts: partitions for partitioned SEs, replica
    /// count for partial SEs. Defaults to 1.
    pub se_instances: HashMap<StateId, usize>,
    /// Initial instance counts for stateless tasks. Defaults to 1.
    pub task_instances: HashMap<TaskId, usize>,
    /// Synthetic per-item CPU cost per task, in nanoseconds, divided by the
    /// hosting node's speed. Models the computational cost of TEs.
    pub work_ns: HashMap<TaskId, u64>,
    /// The simulated cluster.
    pub cluster: ClusterSpec,
    /// Reactive scaling settings.
    pub scaling: ScalingConfig,
    /// Checkpointing settings.
    pub checkpoint: CheckpointConfig,
    /// Bound on the deployment's structured observability event log
    /// (oldest events are evicted past this).
    pub event_log_capacity: usize,
    /// Which engine executes translated TE code. Defaults to the
    /// slot-compiled engine, overridable per process with
    /// `SDG_ENGINE=reference`.
    pub engine: ExecEngine,
    /// Which scheduler hosts TE instances. Defaults to thread-per-replica,
    /// overridable per process with `SDG_SCHED=pool`.
    pub scheduler: SchedulerMode,
    /// Pool workers when `scheduler` is [`SchedulerMode::Pool`]; ignored
    /// under [`SchedulerMode::Threads`].
    pub sched_threads: usize,
    /// Edge micro-batching settings (default: disabled).
    pub batch: BatchConfig,
    /// Lock stripes per partitioned SE instance. Accessing tasks route each
    /// item to the stripe owning its key, so replicas of one SE group and
    /// the checkpoint coordinator contend per-stripe instead of on one cell
    /// mutex. `1` restores the single-mutex cell; partial and vector SEs
    /// always use one stripe.
    pub state_stripes: usize,
    /// Trust the program's annotations instead of the `sdg-verify`
    /// certificates. By default (`false`), striping, edge micro-batching
    /// and incremental checkpointing are enabled only for elements whose
    /// certificates hold; setting this to `true` restores the
    /// pre-verifier behavior where the annotations alone are believed.
    /// Graphs without an attached report (hand-built, native tasks) are
    /// always trusted — there is nothing to check them against.
    pub trust_annotations: bool,
    /// Self-healing supervisor settings (failure detection and automatic
    /// recovery).
    pub supervisor: SupervisorConfig,
    /// Deterministic fault plan for chaos runs; `None` (the default)
    /// injects nothing.
    pub faults: Option<crate::fault::FaultPlan>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            channel_capacity: 1024,
            se_instances: HashMap::new(),
            task_instances: HashMap::new(),
            work_ns: HashMap::new(),
            cluster: ClusterSpec::default(),
            scaling: ScalingConfig::default(),
            checkpoint: CheckpointConfig::disabled(),
            event_log_capacity: sdg_common::obs::DEFAULT_EVENT_CAPACITY,
            engine: ExecEngine::from_env(),
            scheduler: SchedulerMode::from_env(),
            sched_threads: 4,
            batch: BatchConfig::default(),
            state_stripes: 16,
            trust_annotations: false,
            supervisor: SupervisorConfig::default(),
            faults: None,
        }
    }
}

impl RuntimeConfig {
    /// Starts a chained builder from the default configuration:
    ///
    /// ```
    /// use sdg_runtime::config::RuntimeConfig;
    /// use sdg_common::ids::TaskId;
    ///
    /// let cfg = RuntimeConfig::builder()
    ///     .nodes(4)
    ///     .channel_capacity(64)
    ///     .work_ns(TaskId(0), 50_000)
    ///     .build();
    /// assert_eq!(cfg.cluster.nodes.len(), 4);
    /// ```
    pub fn builder() -> RuntimeConfigBuilder {
        RuntimeConfigBuilder {
            cfg: Self::default(),
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> SdgResult<()> {
        if self.channel_capacity == 0 {
            return Err(SdgError::Config("channel_capacity must be ≥ 1".into()));
        }
        if self.event_log_capacity == 0 {
            return Err(SdgError::Config("event_log_capacity must be ≥ 1".into()));
        }
        for (&se, &n) in &self.se_instances {
            if n == 0 {
                return Err(SdgError::Config(format!("state {se} needs ≥ 1 instance")));
            }
            if n > 1024 {
                return Err(SdgError::Config(format!(
                    "state {se}: at most 1024 instances are supported"
                )));
            }
        }
        for (&t, &n) in &self.task_instances {
            if n == 0 || n > 1024 {
                return Err(SdgError::Config(format!(
                    "task {t}: instance count must be in 1..=1024"
                )));
            }
        }
        if self.batch.max_items == 0 {
            return Err(SdgError::Config(
                "batch.max_items must be ≥ 1 (1 disables batching)".into(),
            ));
        }
        if self.batch.max_items > self.channel_capacity.saturating_mul(1024) {
            return Err(SdgError::Config(
                "batch.max_items is implausibly large".into(),
            ));
        }
        if self.state_stripes == 0 || self.state_stripes > 1024 {
            return Err(SdgError::Config("state_stripes must be in 1..=1024".into()));
        }
        if self.sched_threads == 0 || self.sched_threads > 256 {
            return Err(SdgError::Config("sched_threads must be in 1..=256".into()));
        }
        self.scaling.validate()?;
        self.supervisor.validate()?;
        self.checkpoint.validate()
    }
}

/// Chained builder for [`RuntimeConfig`] (see [`RuntimeConfig::builder`]).
#[derive(Debug, Clone)]
pub struct RuntimeConfigBuilder {
    cfg: RuntimeConfig,
}

impl RuntimeConfigBuilder {
    /// Sets the bounded channel capacity between TE instances.
    pub fn channel_capacity(mut self, n: usize) -> Self {
        self.cfg.channel_capacity = n;
        self
    }

    /// Uses a uniform cluster of `n` normal-speed nodes.
    pub fn nodes(mut self, n: usize) -> Self {
        self.cfg.cluster = ClusterSpec::uniform(n);
        self
    }

    /// Uses an explicit cluster specification.
    pub fn cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cfg.cluster = cluster;
        self
    }

    /// Sets the initial SE instance count of `state`.
    pub fn se_instances(mut self, state: StateId, n: usize) -> Self {
        self.cfg.se_instances.insert(state, n);
        self
    }

    /// Sets the initial instance count of stateless `task`.
    pub fn task_instances(mut self, task: TaskId, n: usize) -> Self {
        self.cfg.task_instances.insert(task, n);
        self
    }

    /// Sets the synthetic per-item CPU cost of `task` in nanoseconds.
    pub fn work_ns(mut self, task: TaskId, ns: u64) -> Self {
        self.cfg.work_ns.insert(task, ns);
        self
    }

    /// Replaces the reactive-scaling settings.
    pub fn scaling(mut self, scaling: ScalingConfig) -> Self {
        self.cfg.scaling = scaling;
        self
    }

    /// Replaces the checkpointing settings.
    pub fn checkpoint(mut self, checkpoint: CheckpointConfig) -> Self {
        self.cfg.checkpoint = checkpoint;
        self
    }

    /// Bounds the structured observability event log.
    pub fn event_log_capacity(mut self, n: usize) -> Self {
        self.cfg.event_log_capacity = n;
        self
    }

    /// Selects the execution engine for translated TE code.
    pub fn engine(mut self, engine: ExecEngine) -> Self {
        self.cfg.engine = engine;
        self
    }

    /// Selects the scheduler hosting TE instances.
    pub fn scheduler(mut self, scheduler: SchedulerMode) -> Self {
        self.cfg.scheduler = scheduler;
        self
    }

    /// Sets the pool worker count for [`SchedulerMode::Pool`].
    pub fn sched_threads(mut self, n: usize) -> Self {
        self.cfg.sched_threads = n;
        self
    }

    /// Replaces the edge micro-batching settings.
    pub fn batch(mut self, batch: BatchConfig) -> Self {
        self.cfg.batch = batch;
        self
    }

    /// Sets the lock-stripe count of partitioned SE instances.
    pub fn state_stripes(mut self, n: usize) -> Self {
        self.cfg.state_stripes = n;
        self
    }

    /// Trusts annotations over `sdg-verify` certificates (escape hatch).
    pub fn trust_annotations(mut self, trust: bool) -> Self {
        self.cfg.trust_annotations = trust;
        self
    }

    /// Replaces the self-healing supervisor settings.
    pub fn supervisor(mut self, supervisor: SupervisorConfig) -> Self {
        self.cfg.supervisor = supervisor;
        self
    }

    /// Installs a deterministic fault plan for chaos runs.
    pub fn faults(mut self, plan: crate::fault::FaultPlan) -> Self {
        self.cfg.faults = Some(plan);
        self
    }

    /// Finishes the chain. Consistency is still checked by
    /// [`RuntimeConfig::validate`] at deploy time.
    pub fn build(self) -> RuntimeConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        RuntimeConfig::default().validate().unwrap();
    }

    #[test]
    fn builder_chains_every_knob() {
        let cfg = RuntimeConfig::builder()
            .channel_capacity(32)
            .nodes(4)
            .se_instances(StateId(1), 2)
            .task_instances(TaskId(2), 3)
            .work_ns(TaskId(2), 10_000)
            .scaling(ScalingConfig {
                enabled: true,
                ..Default::default()
            })
            .checkpoint(CheckpointConfig::default())
            .event_log_capacity(64)
            .build();
        assert_eq!(cfg.channel_capacity, 32);
        assert_eq!(cfg.cluster.nodes.len(), 4);
        assert_eq!(cfg.se_instances[&StateId(1)], 2);
        assert_eq!(cfg.task_instances[&TaskId(2)], 3);
        assert_eq!(cfg.work_ns[&TaskId(2)], 10_000);
        assert!(cfg.scaling.enabled && cfg.checkpoint.enabled);
        assert_eq!(cfg.event_log_capacity, 64);
        cfg.validate().unwrap();
    }

    #[test]
    fn zero_event_log_capacity_is_rejected() {
        let cfg = RuntimeConfig::builder().event_log_capacity(0).build();
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn batch_config_validation() {
        let cfg = RuntimeConfig::builder()
            .batch(BatchConfig {
                max_items: 0,
                linger: Duration::from_millis(1),
            })
            .build();
        assert!(cfg.validate().is_err());

        let cfg = RuntimeConfig::builder()
            .batch(BatchConfig::with_max_items(16))
            .engine(ExecEngine::Reference)
            .build();
        cfg.validate().unwrap();
        assert_eq!(cfg.batch.max_items, 16);
        assert_eq!(cfg.engine, ExecEngine::Reference);
        assert_eq!(BatchConfig::disabled().max_items, 1);
    }

    #[test]
    fn cluster_speed_defaults_to_one() {
        let c = ClusterSpec {
            nodes: vec![NodeSpec { speed: 0.5 }],
        };
        assert_eq!(c.speed_of(0), 0.5);
        assert_eq!(c.speed_of(7), 1.0);
        assert_eq!(ClusterSpec::uniform(3).nodes.len(), 3);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let c = RuntimeConfig {
            channel_capacity: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let mut c = RuntimeConfig::default();
        c.se_instances.insert(StateId(0), 0);
        assert!(c.validate().is_err());

        let mut c = RuntimeConfig::default();
        c.se_instances.insert(StateId(0), 4096);
        assert!(c.validate().is_err());

        let mut c = RuntimeConfig::default();
        c.task_instances.insert(TaskId(0), 0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn scaling_thresholds_are_validated() {
        ScalingConfig::default().validate().unwrap();

        let cfg = RuntimeConfig::builder()
            .scaling(ScalingConfig {
                low_watermark: 0.9, // above high_watermark (0.75)
                ..Default::default()
            })
            .build();
        assert!(cfg.validate().is_err());

        let cfg = RuntimeConfig::builder()
            .scaling(ScalingConfig {
                min_instances: 0,
                ..Default::default()
            })
            .build();
        assert!(cfg.validate().is_err());

        let cfg = RuntimeConfig::builder()
            .scaling(ScalingConfig {
                min_instances: 9,
                max_instances: 8,
                ..Default::default()
            })
            .build();
        assert!(cfg.validate().is_err());

        let cfg = RuntimeConfig::builder()
            .scaling(ScalingConfig {
                enabled: true,
                low_watermark: 0.05,
                idle_patience: 2,
                min_instances: 2,
                ..Default::default()
            })
            .build();
        cfg.validate().unwrap();
        assert_eq!(cfg.scaling.idle_patience, 2);
    }

    #[test]
    fn scheduler_config_validation() {
        assert_eq!(RuntimeConfig::default().sched_threads, 4);
        let cfg = RuntimeConfig::builder()
            .scheduler(SchedulerMode::Pool)
            .sched_threads(2)
            .build();
        assert_eq!(cfg.scheduler, SchedulerMode::Pool);
        assert_eq!(cfg.sched_threads, 2);
        cfg.validate().unwrap();
        assert!(RuntimeConfig::builder()
            .sched_threads(0)
            .build()
            .validate()
            .is_err());
        assert!(RuntimeConfig::builder()
            .sched_threads(512)
            .build()
            .validate()
            .is_err());
    }

    #[test]
    fn supervisor_config_validation() {
        SupervisorConfig::default().validate().unwrap();
        assert!(RuntimeConfig::default().supervisor.enabled);
        assert!(!RuntimeConfig::default().supervisor.hang_detection);
        assert!(RuntimeConfig::default().faults.is_none());

        let cases = [
            SupervisorConfig {
                heartbeat_interval: Duration::ZERO,
                ..Default::default()
            },
            SupervisorConfig {
                miss_threshold: 0,
                ..Default::default()
            },
            SupervisorConfig {
                max_attempts: 0,
                ..Default::default()
            },
            SupervisorConfig {
                backoff_base: Duration::from_millis(100),
                backoff_cap: Duration::from_millis(50),
                ..Default::default()
            },
            SupervisorConfig {
                max_concurrent_recoveries: 0,
                ..Default::default()
            },
        ];
        for bad in cases {
            let cfg = RuntimeConfig::builder().supervisor(bad.clone()).build();
            assert!(cfg.validate().is_err(), "accepted invalid {bad:?}");
        }

        let cfg = RuntimeConfig::builder()
            .supervisor(SupervisorConfig {
                hang_detection: true,
                heartbeat_interval: Duration::from_millis(5),
                miss_threshold: 3,
                ..Default::default()
            })
            .faults(crate::fault::FaultPlan::seeded(11).with_worker_panic("bump_0", 0, 40))
            .build();
        cfg.validate().unwrap();
        assert_eq!(cfg.supervisor.miss_threshold, 3);
        assert!(!cfg.faults.as_ref().unwrap().is_noop());
    }

    #[test]
    fn state_stripes_validation() {
        assert_eq!(RuntimeConfig::default().state_stripes, 16);
        let cfg = RuntimeConfig::builder().state_stripes(4).build();
        assert_eq!(cfg.state_stripes, 4);
        cfg.validate().unwrap();
        assert!(RuntimeConfig::builder()
            .state_stripes(0)
            .build()
            .validate()
            .is_err());
        assert!(RuntimeConfig::builder()
            .state_stripes(2048)
            .build()
            .validate()
            .is_err());
    }
}

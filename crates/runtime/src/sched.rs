//! The `Pool` scheduler: a work-stealing cooperative executor running
//! every TE instance as an *actor*.
//!
//! The reference `Threads` scheduler spends one OS thread per TE replica;
//! at the replica counts the reconfiguration plane can reach, deployment
//! cost and context-switch pressure grow linearly with instances. This
//! module multiplexes instances onto a fixed pool instead
//! (`RuntimeConfig::sched_threads` workers, selected via
//! `RuntimeConfig::scheduler` or `SDG_SCHED=pool`):
//!
//! - **Serial mailboxes.** Each instance is an actor: a FIFO mailbox plus
//!   the instance's [`Worker`]. At most one pool worker runs an actor at a
//!   time, so per-instance ordering and dedupe semantics are exactly those
//!   of a dedicated thread. One mutex guards both the queue and the
//!   actor's run state, so a push can never race an idle transition into a
//!   lost wakeup.
//! - **Work stealing.** Runnable actors sit in per-worker local deques
//!   (owner pops newest) or a global injector; an idle worker takes its
//!   own work first, then the injector, then steals the *oldest* work from
//!   randomly probed victims. Idle workers park on a condvar; a global
//!   injection epoch closes the scan-then-park window.
//! - **Credit-based backpressure.** A send from inside an actor never
//!   blocks the pool thread: the message is pushed unconditionally and, if
//!   the destination is at capacity, the *producer actor* suspends after
//!   its slice, registering itself as a waiter on each over-full mailbox.
//!   The pop that takes a mailbox back under capacity reschedules its
//!   waiters. Suspension only ever propagates upstream (consumers never
//!   wait on producers), so on a DAG the sinks always drain and, by
//!   induction over reverse topological order, every suspended actor is
//!   eventually resumed — no deadlock. External threads (ingest, control
//!   plane) block on the mailbox condvar instead, like a bounded channel.
//! - **Timer heap.** Micro-batch linger deadlines move from per-thread
//!   `recv_timeout` waits to one shared min-heap; pool workers fire due
//!   entries between slices and bound their park time by the earliest
//!   deadline.
//!
//! Shutdown and disconnect mirror the thread-per-instance semantics:
//! `Stop` flushes pending batches and retires the actor; dropping the last
//! [`PoolSender`] (the scale-in/recovery slot swap) lets the actor drain
//! what is queued and then retire, exactly as a dedicated thread exits on
//! channel disconnect. Sends to a retired actor fail like sends to a
//! disconnected channel.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sdg_common::obs::SchedInstruments;

use crate::worker::{SendClosed, Worker, WorkerMsg};

/// Messages an actor processes per activation before rescheduling itself:
/// long enough to amortise wakeup cost over a batch drain, short enough
/// that one busy mailbox cannot monopolise a pool worker.
const RUN_SLICE: usize = 128;

/// Longest a pool worker parks before re-checking for work; bounds the
/// staleness of a timer registered while every worker was asleep.
const MAX_PARK: Duration = Duration::from_millis(50);

/// Run state of an actor, kept under the mailbox lock so queue contents
/// and scheduling decisions can never disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunState {
    /// Not queued anywhere; the next push (or timer) schedules it.
    Idle,
    /// Sitting in a pool deque awaiting a worker.
    Scheduled,
    /// Owned by a pool worker right now.
    Running,
    /// Waiting for credit on one or more full downstream mailboxes.
    Suspended,
}

/// Everything guarded by the mailbox lock.
struct MailboxInner {
    queue: VecDeque<WorkerMsg>,
    state: RunState,
    /// Live [`PoolSender`] clones. Zero mirrors channel disconnect.
    senders: usize,
    /// The actor retired (`Stop` processed, or disconnect drain finished):
    /// further sends fail like sends to a dropped receiver.
    closed: bool,
    /// All senders dropped; retire once the queue drains.
    disconnected: bool,
    /// Producer actors suspended on this mailbox's credit.
    waiters: Vec<Arc<Actor>>,
}

/// One TE instance scheduled on the pool: a serial mailbox plus the
/// instance's [`Worker`] (present until the actor retires).
struct Actor {
    mb: Mutex<MailboxInner>,
    /// Signals external (non-actor) senders blocked on a full mailbox.
    not_full: Condvar,
    /// Mailbox capacity (`RuntimeConfig::channel_capacity`). In-actor and
    /// forced sends may overfill past it; the overfill is repaid through
    /// producer suspension.
    cap: usize,
    worker: Mutex<Option<Worker>>,
    shared: Arc<PoolShared>,
}

/// Per-thread context present while a pool worker runs an actor slice.
struct ActorCtx {
    /// The actor being run (self-sends are exempt from suspension: the
    /// actor drains its own mailbox, so waiting on it would never end).
    actor: Arc<Actor>,
    /// Over-capacity destinations pushed into during the slice.
    blocked: Vec<Arc<Actor>>,
    /// Index of the pool worker running the slice, for local rescheduling.
    me: usize,
}

thread_local! {
    static CURRENT: RefCell<Option<ActorCtx>> = const { RefCell::new(None) };
}

/// The pool-worker index of the slice running on this thread, if any.
fn ctx_worker() -> Option<usize> {
    CURRENT.with(|c| c.borrow().as_ref().map(|ctx| ctx.me))
}

/// Sending half of an actor mailbox — the pool analogue of a bounded
/// channel sender. Clones are counted: when the last clone drops, the
/// mailbox disconnects and the actor drains what is queued, then retires,
/// exactly like a dedicated worker thread observing channel disconnect.
pub struct PoolSender {
    actor: Arc<Actor>,
}

impl PoolSender {
    /// Delivers `msg`. From inside a pool slice this never blocks the pool
    /// thread: the message is pushed unconditionally and an over-full
    /// destination suspends the producer actor after its slice. External
    /// threads block on the mailbox condvar, like a bounded channel send.
    pub fn send(&self, msg: WorkerMsg) -> Result<(), SendClosed> {
        self.actor.push(msg, false)
    }

    /// Delivers `msg` without waiting for space even from an external
    /// thread. Used by paths that run under the target-list write guards
    /// (recovery replay, victim `Stop`), where waiting could stall every
    /// pool worker behind the same guards.
    pub fn force_send(&self, msg: WorkerMsg) -> Result<(), SendClosed> {
        self.actor.push(msg, true)
    }

    /// Messages queued in the mailbox.
    pub fn len(&self) -> usize {
        self.actor.mb.lock().expect("mailbox lock").queue.len()
    }

    /// Whether the mailbox is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the actor holds a pool thread right now. The supervisor's
    /// hang detection only suspects `Running` actors: `Idle`, `Scheduled`
    /// and `Suspended` actors legitimately sit on stalled heartbeat
    /// epochs while parked behind busy workers or awaiting send credit.
    pub(crate) fn is_running(&self) -> bool {
        self.actor.mb.lock().expect("mailbox lock").state == RunState::Running
    }
}

impl Clone for PoolSender {
    fn clone(&self) -> Self {
        self.actor.mb.lock().expect("mailbox lock").senders += 1;
        PoolSender {
            actor: Arc::clone(&self.actor),
        }
    }
}

impl Drop for PoolSender {
    fn drop(&mut self) {
        let schedule = {
            let mut mb = self.actor.mb.lock().expect("mailbox lock");
            mb.senders -= 1;
            if mb.senders > 0 || mb.closed {
                false
            } else {
                // Last sender gone: the thread-per-instance equivalent is
                // a disconnecting channel. Schedule the actor so it drains
                // the remaining queue and retires.
                mb.disconnected = true;
                if mb.state == RunState::Idle {
                    mb.state = RunState::Scheduled;
                    true
                } else {
                    false
                }
            }
        };
        if schedule {
            self.actor
                .shared
                .schedule(Arc::clone(&self.actor), ctx_worker());
        }
    }
}

impl Actor {
    fn push(self: &Arc<Self>, msg: WorkerMsg, force: bool) -> Result<(), SendClosed> {
        let in_ctx = CURRENT.with(|c| c.borrow().is_some());
        let mut mb = self.mb.lock().expect("mailbox lock");
        if !in_ctx && !force {
            while !mb.closed && mb.queue.len() >= self.cap {
                mb = self.not_full.wait(mb).expect("mailbox lock");
            }
        }
        if mb.closed {
            return Err(SendClosed);
        }
        mb.queue.push_back(msg);
        let schedule = mb.state == RunState::Idle;
        if schedule {
            mb.state = RunState::Scheduled;
        }
        let over = in_ctx && mb.queue.len() >= self.cap;
        drop(mb);
        if schedule {
            self.shared.schedule(Arc::clone(self), ctx_worker());
        }
        if over {
            // Record the over-full destination; the producer suspends on
            // it once its slice ends. Self-sends are exempt (the actor is
            // the one draining this mailbox).
            CURRENT.with(|c| {
                if let Some(ctx) = c.borrow_mut().as_mut() {
                    if !Arc::ptr_eq(&ctx.actor, self)
                        && !ctx.blocked.iter().any(|a| Arc::ptr_eq(a, self))
                    {
                        ctx.blocked.push(Arc::clone(self));
                    }
                }
            });
        }
        Ok(())
    }

    /// Pops one message. Returns the message, the waiters to resume when
    /// the pop crossed back under capacity, and the disconnect flag.
    fn pop(&self) -> (Option<WorkerMsg>, Vec<Arc<Actor>>, bool) {
        let mut mb = self.mb.lock().expect("mailbox lock");
        let msg = mb.queue.pop_front();
        let mut waiters = Vec::new();
        let mut notify = false;
        if msg.is_some() && mb.queue.len() + 1 == self.cap {
            // Crossed from at-capacity to under-capacity: hand the credit
            // to suspended producers and blocked external senders.
            waiters = std::mem::take(&mut mb.waiters);
            notify = true;
        }
        let disconnected = mb.disconnected;
        drop(mb);
        if notify {
            self.not_full.notify_all();
        }
        (msg, waiters, disconnected)
    }
}

/// Bumped on every global injection; parking workers re-check it under the
/// idle lock to close the scan-then-park window.
struct IdleState {
    epoch: u64,
    parked: usize,
}

/// A linger deadline for one actor, ordered by `(deadline, seq)`.
struct TimerEntry {
    at: Instant,
    seq: u64,
    actor: Arc<Actor>,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The shared linger-deadline min-heap.
struct TimerHeap {
    heap: BinaryHeap<Reverse<TimerEntry>>,
    seq: u64,
}

/// State shared by all pool workers, senders and actors.
struct PoolShared {
    /// Global FIFO of runnable actors (external injections).
    injector: Mutex<VecDeque<Arc<Actor>>>,
    /// Per-worker deques: owner pushes/pops the back, thieves steal the
    /// front.
    locals: Vec<Mutex<VecDeque<Arc<Actor>>>>,
    idle: Mutex<IdleState>,
    idle_cv: Condvar,
    timers: Mutex<TimerHeap>,
    /// Actors not yet retired; `join` waits for zero.
    live: Mutex<usize>,
    done: Condvar,
    shutdown: AtomicBool,
    obs: Arc<SchedInstruments>,
}

impl PoolShared {
    /// Queues a runnable actor: onto the scheduling worker's own deque
    /// when called from a pool slice (locality), onto the global injector
    /// otherwise.
    fn schedule(&self, actor: Arc<Actor>, me: Option<usize>) {
        if let Some(me) = me {
            self.locals[me].lock().expect("deque lock").push_back(actor);
            return;
        }
        self.injector
            .lock()
            .expect("injector lock")
            .push_back(actor);
        let mut idle = self.idle.lock().expect("idle lock");
        idle.epoch += 1;
        // Only a fully parked pool needs a kick: any awake worker scans
        // the injector on its next loop iteration.
        if idle.parked == self.locals.len() {
            drop(idle);
            self.idle_cv.notify_one();
        }
    }

    /// Resumes suspended actors whose awaited credit arrived.
    fn resume(&self, waiters: Vec<Arc<Actor>>, me: Option<usize>) {
        for actor in waiters {
            let schedule = {
                let mut mb = actor.mb.lock().expect("mailbox lock");
                if mb.state == RunState::Suspended {
                    mb.state = RunState::Scheduled;
                    true
                } else {
                    // Already rescheduled through another mailbox's credit
                    // (or retired); stale registrations are no-ops.
                    false
                }
            };
            if schedule {
                self.obs.resumes.inc();
                self.schedule(actor, me);
            }
        }
    }

    /// Registers a linger deadline for `actor`.
    fn register_timer(&self, at: Instant, actor: Arc<Actor>) {
        {
            let mut t = self.timers.lock().expect("timer lock");
            t.seq += 1;
            let seq = t.seq;
            t.heap.push(Reverse(TimerEntry { at, seq, actor }));
        }
        // A parked worker may be sleeping past the new deadline: wake one
        // so it re-parks against the updated heap minimum.
        let idle = self.idle.lock().expect("idle lock");
        if idle.parked > 0 {
            drop(idle);
            self.idle_cv.notify_one();
        }
    }

    /// Schedules every idle actor whose deadline passed; returns the count.
    fn fire_due_timers(&self, me: usize) -> usize {
        let now = Instant::now();
        let mut fired = 0;
        loop {
            let actor = {
                let mut t = self.timers.lock().expect("timer lock");
                match t.heap.peek() {
                    Some(Reverse(e)) if e.at <= now => t.heap.pop().expect("peeked").0.actor,
                    _ => break,
                }
            };
            let schedule = {
                let mut mb = actor.mb.lock().expect("mailbox lock");
                // Scheduled/Running actors flush expired batches on their
                // own; a suspended actor flushes when its credit arrives
                // (flushing from here would push into the very mailboxes
                // it is waiting on).
                if !mb.closed && mb.state == RunState::Idle {
                    mb.state = RunState::Scheduled;
                    true
                } else {
                    false
                }
            };
            if schedule {
                self.obs.timer_fires.inc();
                self.schedule(actor, Some(me));
                fired += 1;
            }
        }
        fired
    }

    fn next_timer(&self) -> Option<Instant> {
        self.timers
            .lock()
            .expect("timer lock")
            .heap
            .peek()
            .map(|e| e.0.at)
    }

    fn retire_one(&self) {
        let mut live = self.live.lock().expect("live lock");
        *live -= 1;
        if *live == 0 {
            self.done.notify_all();
        }
    }
}

/// A minimal xorshift generator for victim selection — deterministic per
/// worker, no shared state.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift((seed.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// The work-stealing actor pool. One per deployment when
/// `RuntimeConfig::scheduler` is `Pool`.
pub struct Pool {
    shared: Arc<PoolShared>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Pool {
    /// Starts `threads` pool workers reporting through `obs`.
    pub(crate) fn start(threads: usize, obs: Arc<SchedInstruments>) -> Arc<Pool> {
        let n = threads.max(1);
        obs.workers.set(n as u64);
        let shared = Arc::new(PoolShared {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            idle: Mutex::new(IdleState {
                epoch: 0,
                parked: 0,
            }),
            idle_cv: Condvar::new(),
            timers: Mutex::new(TimerHeap {
                heap: BinaryHeap::new(),
                seq: 0,
            }),
            live: Mutex::new(0),
            done: Condvar::new(),
            shutdown: AtomicBool::new(false),
            obs,
        });
        let handles = (0..n)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sdg-pool-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        Arc::new(Pool {
            shared,
            threads: Mutex::new(handles),
        })
    }

    /// Registers `worker` as a pool actor with mailbox capacity `cap` and
    /// returns its sending half.
    pub(crate) fn spawn_actor(&self, worker: Worker, cap: usize) -> PoolSender {
        *self.shared.live.lock().expect("live lock") += 1;
        let actor = Arc::new(Actor {
            mb: Mutex::new(MailboxInner {
                queue: VecDeque::new(),
                state: RunState::Idle,
                senders: 1,
                closed: false,
                disconnected: false,
                waiters: Vec::new(),
            }),
            not_full: Condvar::new(),
            cap: cap.max(1),
            worker: Mutex::new(Some(worker)),
            shared: Arc::clone(&self.shared),
        });
        PoolSender { actor }
    }

    /// Waits until every actor has retired, then stops and joins the pool
    /// workers. Called by `Deployment::shutdown` after `Stop` fan-out.
    pub(crate) fn join(&self) {
        {
            let mut live = self.shared.live.lock().expect("live lock");
            while *live > 0 {
                // The timeout only guards a hypothetically missed notify;
                // retirement always signals `done`.
                let (guard, _) = self
                    .shared
                    .done
                    .wait_timeout(live, Duration::from_millis(50))
                    .expect("live lock");
                live = guard;
            }
        }
        self.stop_workers();
    }

    fn stop_workers(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Take the idle lock so no worker can re-park between the flag
        // store and the broadcast.
        drop(self.shared.idle.lock().expect("idle lock"));
        self.idle_cv_notify_all();
        for handle in self.threads.lock().expect("thread list").drain(..) {
            let _ = handle.join();
        }
    }

    fn idle_cv_notify_all(&self) {
        self.shared.idle_cv.notify_all();
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // A deployment dropped without `shutdown()` abandons queued work,
        // exactly as dedicated threads abandon their channels — but the
        // pool workers themselves must still exit.
        self.stop_workers();
    }
}

/// Main loop of one pool worker.
fn worker_loop(shared: &Arc<PoolShared>, me: usize) {
    let mut rng = XorShift::new(me as u64);
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let epoch = shared.idle.lock().expect("idle lock").epoch;
        if let Some(actor) = find_task(shared, me, &mut rng) {
            run_actor(shared, me, actor);
            continue;
        }
        if shared.fire_due_timers(me) > 0 {
            continue;
        }
        // Park. Re-check the injection epoch under the idle lock so an
        // injection racing the scan above is never slept through.
        let mut idle = shared.idle.lock().expect("idle lock");
        if idle.epoch != epoch || shared.shutdown.load(Ordering::Acquire) {
            continue;
        }
        let wait = shared
            .next_timer()
            .map(|at| at.saturating_duration_since(Instant::now()))
            .unwrap_or(MAX_PARK)
            .min(MAX_PARK);
        idle.parked += 1;
        shared.obs.parks.inc();
        let (mut idle, _) = shared.idle_cv.wait_timeout(idle, wait).expect("idle lock");
        idle.parked -= 1;
    }
}

/// Finds the next runnable actor: own deque (newest), then the injector,
/// then randomized stealing of the oldest work from other workers.
fn find_task(shared: &PoolShared, me: usize, rng: &mut XorShift) -> Option<Arc<Actor>> {
    if let Some(actor) = shared.locals[me].lock().expect("deque lock").pop_back() {
        return Some(actor);
    }
    if let Some(actor) = shared.injector.lock().expect("injector lock").pop_front() {
        return Some(actor);
    }
    let n = shared.locals.len();
    if n > 1 {
        for _ in 0..2 * n {
            let victim = (rng.next() as usize) % n;
            if victim == me {
                continue;
            }
            if let Some(actor) = shared.locals[victim]
                .lock()
                .expect("deque lock")
                .pop_front()
            {
                shared.obs.steals.inc();
                return Some(actor);
            }
        }
    }
    None
}

/// Runs one actor slice: drain up to [`RUN_SLICE`] messages, then hand the
/// actor back to the scheduler in the appropriate state.
fn run_actor(shared: &Arc<PoolShared>, me: usize, actor: Arc<Actor>) {
    {
        let mut mb = actor.mb.lock().expect("mailbox lock");
        if mb.closed {
            // A stale deque or timer entry for a retired actor.
            mb.state = RunState::Idle;
            return;
        }
        debug_assert_eq!(mb.state, RunState::Scheduled);
        mb.state = RunState::Running;
    }
    let Some(mut worker) = actor.worker.lock().expect("worker slot").take() else {
        actor.mb.lock().expect("mailbox lock").state = RunState::Idle;
        return;
    };
    shared.obs.polls.inc();
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(ActorCtx {
            actor: Arc::clone(&actor),
            blocked: Vec::new(),
            me,
        });
    });
    let mut stopped = false;
    let mut processed = 0usize;
    loop {
        // Timer-heap-driven linger: flush expired micro-batches before
        // draining further input, so a parked batch is never starved by a
        // steady arrival stream (mirrors `Worker::run`'s post-message
        // flush under the `Threads` scheduler).
        worker.flush_expired();
        let blocked = CURRENT.with(|c| c.borrow().as_ref().is_some_and(|x| !x.blocked.is_empty()));
        if blocked {
            break;
        }
        let (msg, waiters, disconnected) = actor.pop();
        if !waiters.is_empty() {
            shared.resume(waiters, Some(me));
        }
        match msg {
            None => {
                if disconnected {
                    // All senders dropped: a dedicated thread would see
                    // channel disconnect here — flush and exit.
                    worker.flush_or_discard();
                    stopped = true;
                }
                break;
            }
            Some(msg) => {
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| worker.step(msg))) {
                    Ok(true) => {
                        stopped = true;
                        break;
                    }
                    Ok(false) => {
                        processed += 1;
                        if processed >= RUN_SLICE {
                            break;
                        }
                    }
                    Err(payload) => {
                        // The actor dies the way a panicking dedicated
                        // thread would: report the caught panic, drop the
                        // worker (its `OutEdge`s repay parked batches on
                        // drop), and retire the mailbox so producers see
                        // disconnect instead of a wedged queue — the pool
                        // worker itself survives to run other actors.
                        let probe = worker.panic_probe();
                        CURRENT.with(|c| {
                            c.borrow_mut().take();
                        });
                        drop(worker);
                        probe.report(payload.as_ref());
                        retire(shared, &actor, Some(me));
                        return;
                    }
                }
            }
        }
    }
    let ctx = CURRENT
        .with(|c| c.borrow_mut().take())
        .expect("actor ctx set for the slice");
    if stopped {
        drop(worker);
        retire(shared, &actor, Some(me));
        return;
    }
    // Pending micro-batches flush through the shared timer heap. The
    // worker goes back before any state transition so whichever pool
    // thread runs the actor next finds it in place.
    let deadline = worker.earliest_deadline();
    *actor.worker.lock().expect("worker slot") = Some(worker);
    if !ctx.blocked.is_empty() {
        // No timer while suspended: the resumed slice flushes expired
        // batches first thing, and `fire_due_timers` would drop an entry
        // for a non-Idle actor anyway.
        suspend(shared, me, actor, ctx.blocked);
        return;
    }
    let schedule = {
        let mut mb = actor.mb.lock().expect("mailbox lock");
        if mb.queue.is_empty() && !mb.disconnected {
            mb.state = RunState::Idle;
            false
        } else {
            // More input arrived during the slice, or the disconnect
            // drain still has to observe the empty queue.
            mb.state = RunState::Scheduled;
            true
        }
    };
    if schedule {
        // The next slice's top-of-loop `flush_expired` honours the
        // deadline; no timer entry needed.
        shared.schedule(actor, Some(me));
    } else if let Some(at) = deadline {
        // Register only after the actor is observably Idle: the fire path
        // drops entries for non-Idle actors, so registering while still
        // Running races a concurrent `fire_due_timers` into losing the
        // only wakeup for a parked micro-batch. A push that schedules the
        // actor between the transition and this registration merely makes
        // the entry stale — firing on a busy (or re-idled and re-armed)
        // actor is harmless.
        shared.register_timer(at, Arc::clone(&actor));
    }
}

/// Suspends `actor` on its over-full destinations (credit wait).
fn suspend(shared: &Arc<PoolShared>, me: usize, actor: Arc<Actor>, blocked: Vec<Arc<Actor>>) {
    actor.mb.lock().expect("mailbox lock").state = RunState::Suspended;
    let mut registered = 0usize;
    for dest in blocked {
        let mut dm = dest.mb.lock().expect("mailbox lock");
        // Re-check under the destination's lock: a drained (or retired)
        // destination owes no credit. A still-full one holds our
        // registration until a pop crosses back under capacity — the same
        // lock serialises that pop against this check, so the wakeup
        // cannot be missed.
        if !dm.closed && dm.queue.len() >= dest.cap {
            dm.waiters.push(Arc::clone(&actor));
            registered += 1;
        }
    }
    if registered == 0 {
        // Every destination drained while the slice was finishing.
        let schedule = {
            let mut mb = actor.mb.lock().expect("mailbox lock");
            if mb.state == RunState::Suspended {
                mb.state = RunState::Scheduled;
                true
            } else {
                false
            }
        };
        if schedule {
            shared.schedule(actor, Some(me));
        }
    } else {
        shared.obs.suspends.inc();
    }
}

/// Retires an actor: marks the mailbox closed, drops whatever is still
/// queued (as a dedicated thread drops its channel on exit), releases
/// blocked senders and suspended producers, and signals `join`.
fn retire(shared: &Arc<PoolShared>, actor: &Arc<Actor>, me: Option<usize>) {
    let waiters = {
        let mut mb = actor.mb.lock().expect("mailbox lock");
        mb.closed = true;
        mb.state = RunState::Idle;
        mb.queue.clear();
        std::mem::take(&mut mb.waiters)
    };
    actor.not_full.notify_all();
    shared.resume(waiters, me);
    shared.retire_one();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_obs() -> Arc<SchedInstruments> {
        Arc::new(SchedInstruments::default())
    }

    /// A bare actor shell for mailbox-protocol tests (no worker).
    fn shell(cap: usize) -> (Arc<PoolShared>, Arc<Actor>) {
        let shared = Arc::new(PoolShared {
            injector: Mutex::new(VecDeque::new()),
            locals: vec![Mutex::new(VecDeque::new())],
            idle: Mutex::new(IdleState {
                epoch: 0,
                parked: 0,
            }),
            idle_cv: Condvar::new(),
            timers: Mutex::new(TimerHeap {
                heap: BinaryHeap::new(),
                seq: 0,
            }),
            live: Mutex::new(1),
            done: Condvar::new(),
            shutdown: AtomicBool::new(false),
            obs: test_obs(),
        });
        let actor = Arc::new(Actor {
            mb: Mutex::new(MailboxInner {
                queue: VecDeque::new(),
                state: RunState::Idle,
                senders: 1,
                closed: false,
                disconnected: false,
                waiters: Vec::new(),
            }),
            not_full: Condvar::new(),
            cap,
            worker: Mutex::new(None),
            shared: Arc::clone(&shared),
        });
        (shared, actor)
    }

    fn marker(corr: u64) -> WorkerMsg {
        WorkerMsg::Item(crate::item::Item {
            edge: sdg_common::ids::EdgeId(1),
            src_replica: 0,
            ts: corr + 1,
            corr,
            expect: 1,
            payload: Arc::new(sdg_common::value::Record::with_capacity(0)),
            submitted_at: None,
        })
    }

    #[test]
    fn mailbox_preserves_fifo_order() {
        let (_shared, actor) = shell(16);
        for i in 0..5u64 {
            actor.push(marker(i), true).unwrap();
        }
        for i in 0..5u64 {
            let (msg, _, _) = actor.pop();
            match msg {
                Some(WorkerMsg::Item(item)) => assert_eq!(item.corr, i),
                other => panic!("expected item, got {other:?}"),
            }
        }
        let (none, _, _) = actor.pop();
        assert!(none.is_none());
    }

    #[test]
    fn push_schedules_an_idle_actor_exactly_once() {
        let (shared, actor) = shell(16);
        actor.push(WorkerMsg::Stop, true).unwrap();
        actor.push(WorkerMsg::Stop, true).unwrap();
        // One injection for two pushes: the second saw `Scheduled`.
        assert_eq!(shared.injector.lock().unwrap().len(), 1);
        assert_eq!(actor.mb.lock().unwrap().state, RunState::Scheduled);
        assert_eq!(shared.idle.lock().unwrap().epoch, 1);
    }

    #[test]
    fn closed_mailbox_rejects_sends_like_a_disconnected_channel() {
        let (shared, actor) = shell(16);
        retire(&shared, &actor, None);
        assert_eq!(actor.push(WorkerMsg::Stop, false), Err(SendClosed));
        assert_eq!(actor.push(WorkerMsg::Stop, true), Err(SendClosed));
        assert_eq!(*shared.live.lock().unwrap(), 0);
    }

    #[test]
    fn pop_crossing_capacity_returns_waiters_once() {
        let (shared, actor) = shell(2);
        let (_, producer) = shell(2);
        producer.mb.lock().unwrap().state = RunState::Suspended;
        for _ in 0..3 {
            actor.push(WorkerMsg::Stop, true).unwrap();
        }
        actor.mb.lock().unwrap().waiters.push(Arc::clone(&producer));
        // len 3 → 2: still at capacity, no credit yet.
        let (_, waiters, _) = actor.pop();
        assert!(waiters.is_empty());
        // len 2 → 1: crossed under capacity, credit handed out.
        let (_, waiters, _) = actor.pop();
        assert_eq!(waiters.len(), 1);
        shared.resume(waiters, None);
        assert_eq!(producer.mb.lock().unwrap().state, RunState::Scheduled);
        assert_eq!(shared.obs.resumes.get(), 1);
        // Subsequent pops find no stale registrations.
        let (_, waiters, _) = actor.pop();
        assert!(waiters.is_empty());
    }

    #[test]
    fn resume_skips_actors_already_rescheduled() {
        let (shared, actor) = shell(2);
        let (_, producer) = shell(2);
        producer.mb.lock().unwrap().state = RunState::Scheduled;
        shared.resume(vec![Arc::clone(&producer)], None);
        assert_eq!(shared.obs.resumes.get(), 0);
        assert_eq!(producer.mb.lock().unwrap().state, RunState::Scheduled);
        drop(actor);
    }

    #[test]
    fn last_sender_drop_disconnects_and_schedules_the_drain() {
        let (shared, actor) = shell(4);
        let tx = PoolSender {
            actor: Arc::clone(&actor),
        };
        let tx2 = tx.clone();
        drop(tx);
        assert!(!actor.mb.lock().unwrap().disconnected);
        drop(tx2);
        let mb = actor.mb.lock().unwrap();
        assert!(mb.disconnected);
        assert_eq!(mb.state, RunState::Scheduled);
        drop(mb);
        assert_eq!(shared.injector.lock().unwrap().len(), 1);
    }

    #[test]
    fn timer_heap_fires_in_deadline_order() {
        let (shared, a) = shell(4);
        let (_, b) = shell(4);
        let now = Instant::now();
        shared.register_timer(now + Duration::from_millis(200), Arc::clone(&b));
        shared.register_timer(now, Arc::clone(&a));
        // Only `a` is due; it is idle, so firing schedules it.
        let fired = shared.fire_due_timers(0);
        assert_eq!(fired, 1);
        assert_eq!(a.mb.lock().unwrap().state, RunState::Scheduled);
        assert_eq!(b.mb.lock().unwrap().state, RunState::Idle);
        assert_eq!(shared.next_timer(), Some(now + Duration::from_millis(200)));
        assert_eq!(shared.obs.timer_fires.get(), 1);
    }

    #[test]
    fn due_timer_skips_non_idle_actors() {
        let (shared, a) = shell(4);
        a.mb.lock().unwrap().state = RunState::Suspended;
        shared.register_timer(Instant::now(), Arc::clone(&a));
        assert_eq!(shared.fire_due_timers(0), 0);
        assert_eq!(a.mb.lock().unwrap().state, RunState::Suspended);
    }

    #[test]
    fn timer_entries_order_by_deadline_then_seq() {
        let (_, a) = shell(1);
        let t = Instant::now();
        let early = TimerEntry {
            at: t,
            seq: 2,
            actor: Arc::clone(&a),
        };
        let late = TimerEntry {
            at: t + Duration::from_millis(1),
            seq: 1,
            actor: Arc::clone(&a),
        };
        let tie = TimerEntry {
            at: t,
            seq: 3,
            actor: Arc::clone(&a),
        };
        let twin = TimerEntry {
            at: t,
            seq: 2,
            actor: a,
        };
        assert!(early < late);
        assert!(early < tie);
        assert!(early == twin);
    }

    #[test]
    fn xorshift_is_deterministic_and_covers_victims() {
        let mut a = XorShift::new(3);
        let mut b = XorShift::new(3);
        let mut seen = [false; 4];
        for _ in 0..64 {
            let v = a.next();
            assert_eq!(v, b.next());
            seen[(v % 4) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "all victims probed: {seen:?}");
    }

    #[test]
    fn schedule_prefers_the_local_deque() {
        let (shared, actor) = shell(4);
        shared.schedule(Arc::clone(&actor), Some(0));
        assert_eq!(shared.locals[0].lock().unwrap().len(), 1);
        assert!(shared.injector.lock().unwrap().is_empty());
        // Epoch untouched: local pushes are consumed by their own worker.
        assert_eq!(shared.idle.lock().unwrap().epoch, 0);
    }
}

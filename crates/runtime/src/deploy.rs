//! Deployment: materialising an SDG onto the simulated cluster.
//!
//! `Deployment::start` allocates TE and SE instances to nodes (§3.3),
//! spawns one worker thread per TE instance, wires the dataflow channels,
//! and starts the checkpoint and scaling controllers. The handle then
//! accepts external requests ([`Deployment::submit`]), exposes the output
//! sink, and supports failure injection with §5's replay-based recovery.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use sdg_checkpoint::backup::{BackupSet, BackupStore};
use sdg_checkpoint::buffer::BufferedItem;
use sdg_checkpoint::cell::StateCell;
use sdg_checkpoint::coordinator::{take_checkpoint_with, CheckpointOptions};
use sdg_checkpoint::recovery::{restore_chain_resilient_observed, RestoreOptions};
use sdg_common::error::{SdgError, SdgResult};
use sdg_common::ids::{EdgeId, InstanceId, StateId, TaskId};
use sdg_common::obs::{
    DeploymentStats, EventKind, MetricsRegistry, MetricsSnapshot, ObsEvent, TaskInstruments,
};
use sdg_common::time::{TsGen, VectorTs};
use sdg_common::value::Record;
use sdg_graph::alloc::allocate;
use sdg_graph::model::{AccessMode, Dispatch, Distribution, Sdg, StateDecl, TaskKind};
use sdg_graph::validate::validate;
use sdg_ir::analysis::verify::VerifyReport;
use sdg_ir::te_compiled::CompiledTe;
use sdg_state::partition::PartitionDim;
use sdg_state::store::{StateStore, StateType};

use crate::compile::Scratch;
use crate::config::{BatchConfig, RuntimeConfig, SchedulerMode};
use crate::fault::{
    run_supervisor, FailureHub, FaultInjector, Health, HeartbeatView, RecoveryUnit,
};
use crate::item::{lane, Item};
use crate::reconfig::{ReconfigReport, ReconfigRequest};
use crate::scaling::{run_scaling_monitor, ScaleDirection, ScaleEvent, StopWait};
use crate::sched::Pool;
use crate::worker::{
    BufferKey, BufferRegistry, MailboxSender, OutEdge, PreparedCode, Targets, Worker, WorkerMsg,
};

pub use crate::worker::OutputEvent;

/// Base for synthetic ingest edge ids (external requests into entry TEs).
const INGEST_BASE: u32 = 2_000_000;

/// Returns the synthetic ingest edge of an entry task.
pub fn ingest_edge(task: TaskId) -> EdgeId {
    EdgeId(INGEST_BASE + task.raw())
}

/// Synthetic instance id used to key SE-instance checkpoints.
fn se_instance_id(state: StateId, replica: u32) -> InstanceId {
    // SE checkpoints are keyed in a disjoint TaskId namespace.
    InstanceId::new(TaskId(0x4000_0000 | state.raw()), replica)
}

/// Stripe count, partition axis and delta-chunk space for one SE's cells.
///
/// Only partitioned tables and matrices are striped: the partitioned access
/// contract (a task touches only state belonging to its item's key) is what
/// makes per-key stripe routing sound, and dense vectors have no meaningful
/// key space to split. Everything else keeps the single-mutex cell.
///
/// Both optimizations are gated on the `sdg-verify` certificates when a
/// report is attached: striping requires the SE's key-locality certificate
/// (an access through a reassigned key would land on the wrong stripe),
/// and delta checkpointing requires the replay-safety certificate (replay
/// recovery of a delta chain re-executes buffered items and needs them to
/// reproduce the same transitions). A graph without a report — hand-built,
/// native tasks — is trusted, as is `RuntimeConfig::trust_annotations`.
fn cell_layout(
    cfg: &RuntimeConfig,
    decl: &StateDecl,
    verify: Option<&VerifyReport>,
) -> (usize, PartitionDim, Option<usize>) {
    let trusted = cfg.trust_annotations;
    let key_local = trusted || verify.is_none_or(|r| r.key_local(&decl.name));
    let replay_safe = trusted || verify.is_none_or(|r| r.replay_safe(&decl.name));
    let (stripes, dim) = match decl.dist {
        Distribution::Partitioned { dim } if decl.ty != StateType::Vector && key_local => {
            (cfg.state_stripes, dim)
        }
        Distribution::Partitioned { dim } => (1, dim),
        _ => (1, PartitionDim::Row),
    };
    let delta = if cfg.checkpoint.enabled && cfg.checkpoint.incremental && replay_safe {
        Some(cfg.checkpoint.delta_chunks)
    } else {
        None
    };
    (stripes, dim, delta)
}

/// Report of one failure-injection recovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryReport {
    /// Time to fetch chunks and reconstitute state.
    pub restore: Duration,
    /// Items replayed from upstream buffers.
    pub replayed: usize,
    /// End-to-end recovery time (pause → resume).
    pub total: Duration,
}

struct IngestLane {
    ts: TsGen,
    rr: usize,
}

pub(crate) struct Inner {
    pub sdg: Arc<Sdg>,
    pub cfg: RuntimeConfig,
    /// Consumer senders per task, replica-indexed.
    pub targets: HashMap<TaskId, Targets>,
    /// SE instance cells, replica-indexed.
    pub cells: RwLock<HashMap<StateId, Vec<Arc<StateCell>>>>,
    /// Liveness flag per TE instance.
    pub(crate) alive: RwLock<HashMap<(TaskId, u32), Arc<AtomicBool>>>,
    /// Heartbeat epoch per TE instance, bumped by the worker once per
    /// step; the supervisor scans these for hang detection.
    heartbeats: RwLock<HashMap<(TaskId, u32), Arc<AtomicU64>>>,
    /// Caught worker/actor panics, drained by the supervisor.
    failure_hub: Arc<FailureHub>,
    /// Resolved fault plan (empty when no plan is configured).
    injector: FaultInjector,
    /// Supervisor-driven health ([`Health`] as `u8`); `Degraded` is
    /// terminal.
    health: AtomicU8,
    /// The deployment's instrument registry: per-task and per-state
    /// instruments, checkpoint phase timers, and the structured event log.
    pub obs: Arc<MetricsRegistry>,
    /// Per-task instrument handles, resolved once at start so workers and
    /// the monitor never touch the registry maps on the hot path.
    pub instruments: HashMap<TaskId, Arc<TaskInstruments>>,
    pub buffers: Arc<BufferRegistry>,
    sink_tx: Sender<OutputEvent>,
    corr: AtomicU64,
    ingest: Mutex<HashMap<TaskId, IngestLane>>,
    ingest_src: AtomicU32,
    node_cursor: AtomicU32,
    pub(crate) node_of_instance: RwLock<HashMap<(TaskId, u32), u32>>,
    pub stores: Vec<Arc<BackupStore>>,
    backup_seq: AtomicU64,
    /// Checkpoint chains per SE instance: a base generation followed by the
    /// deltas taken since it. Restore composes the whole chain.
    backups: Mutex<HashMap<(StateId, u32), Vec<BackupSet>>>,
    /// SE instances whose next checkpoint must be a full (non-delta) take:
    /// a reconfiguration migrated state into them, so a delta on top of the
    /// pre-migration chain would restore the old key ownership.
    force_full: Mutex<HashSet<(StateId, u32)>>,
    pub events: Mutex<Vec<ScaleEvent>>,
    pub in_flight: Arc<AtomicU64>,
    /// Deploy-time slot-compilation cache: one [`CompiledTe`] per task,
    /// shared by all replicas (including respawns during recovery and
    /// scale-out).
    compiled: Mutex<HashMap<TaskId, Arc<CompiledTe>>>,
    /// The cooperative executor when `cfg.scheduler` is
    /// [`SchedulerMode::Pool`]; `None` runs one OS thread per instance.
    pool: Option<Arc<Pool>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    stop: Arc<AtomicBool>,
    /// Parks the controller threads between ticks; notified at shutdown so
    /// they exit without sleeping out their interval.
    stop_wait: StopWait,
    pub started: Instant,
}

/// A private submission handle with its own ingest lane (see
/// [`Deployment::ingest_handle`]).
pub struct IngestHandle {
    inner: Arc<Inner>,
    src: u32,
    lanes: HashMap<TaskId, (TsGen, usize)>,
}

impl IngestHandle {
    /// Submits a request through this handle's lane; blocks on
    /// backpressure. Returns the correlation id.
    pub fn submit(&mut self, entry: &str, payload: Record) -> SdgResult<u64> {
        let task = self.inner.find_entry(entry)?.clone();
        let corr = self.inner.corr.fetch_add(1, Ordering::Relaxed);
        let (ts_gen, rr) = self
            .lanes
            .entry(task.id)
            .or_insert((TsGen::new(), self.src as usize));
        let ts = ts_gen.tick();
        let inner = Arc::clone(&self.inner);
        inner.ingest_dispatch(&task, &payload, corr, self.src, ts, rr)?;
        Ok(corr)
    }
}

/// A running SDG.
pub struct Deployment {
    inner: Arc<Inner>,
    sink_rx: Receiver<OutputEvent>,
    control: Mutex<Vec<JoinHandle<()>>>,
}

impl Deployment {
    /// Materialises `sdg` on the simulated cluster and starts processing.
    pub fn start(sdg: Sdg, cfg: RuntimeConfig) -> SdgResult<Deployment> {
        validate(&sdg)?;
        cfg.validate()?;
        let sdg = Arc::new(sdg);
        let allocation = allocate(&sdg);
        let (sink_tx, sink_rx) = unbounded();

        // Backup stores for checkpoint chunks (the "disks" of spare nodes).
        // A configured fault plan injects its store faults into every one,
        // exercising the retry and chain-fallback paths deterministically.
        let store_faults = cfg
            .faults
            .as_ref()
            .map(|p| p.store_faults)
            .filter(|s| !s.is_noop());
        let store_count = cfg.checkpoint.backup_fanout.max(2);
        let stores: Vec<Arc<BackupStore>> = (0..store_count)
            .map(|_| {
                let mut store = BackupStore::in_memory()
                    .with_bandwidth(cfg.checkpoint.disk_write_bps, cfg.checkpoint.disk_read_bps);
                if let Some(spec) = store_faults {
                    store = store.with_faults(spec);
                }
                Arc::new(store)
            })
            .collect();

        // The deployment's instrument registry. Task and state instruments
        // are created eagerly so a snapshot always lists every element,
        // even before its first item.
        let obs = Arc::new(MetricsRegistry::with_event_capacity(cfg.event_log_capacity));
        let mut targets = HashMap::new();
        let mut instruments = HashMap::new();
        for task in &sdg.tasks {
            targets.insert(task.id, Arc::new(RwLock::new(Vec::new())) as Targets);
            instruments.insert(task.id, obs.task_with_id(&task.name, Some(task.id)));
        }

        // SE instances.
        let mut cells: HashMap<StateId, Vec<Arc<StateCell>>> = HashMap::new();
        for state in &sdg.states {
            let _ = obs.state_with_id(&state.name, Some(state.id));
            let n = cfg.se_instances.get(&state.id).copied().unwrap_or(1);
            let (stripes, dim, delta) = cell_layout(&cfg, state, sdg.verify.as_deref());
            cells.insert(
                state.id,
                (0..n)
                    .map(|_| Arc::new(StateCell::new_striped(state.ty, stripes, dim, delta)))
                    .collect(),
            );
        }

        // The cooperative executor (PR 9): TE instances become actors on a
        // fixed worker pool instead of one OS thread each.
        let pool = match cfg.scheduler {
            SchedulerMode::Pool => Some(Pool::start(cfg.sched_threads, Arc::clone(obs.sched()))),
            SchedulerMode::Threads => None,
        };

        // Resolve the fault plan against the graph before anything runs:
        // a plan naming an unknown task is a config error, not a silently
        // unarmed chaos run.
        let injector = FaultInjector::resolve(cfg.faults.as_ref(), &sdg)?;
        let failure_hub = Arc::new(FailureHub::new(Arc::clone(&obs)));

        let inner = Arc::new(Inner {
            sdg: Arc::clone(&sdg),
            cfg: cfg.clone(),
            targets,
            cells: RwLock::new(cells),
            alive: RwLock::new(HashMap::new()),
            heartbeats: RwLock::new(HashMap::new()),
            failure_hub,
            injector,
            health: AtomicU8::new(Health::Healthy.as_u8()),
            obs,
            instruments,
            buffers: Arc::new(BufferRegistry::new(100_000)),
            sink_tx,
            corr: AtomicU64::new(1),
            ingest: Mutex::new(HashMap::new()),
            ingest_src: AtomicU32::new(1),
            node_cursor: AtomicU32::new(allocation.num_nodes),
            node_of_instance: RwLock::new(HashMap::new()),
            stores,
            backup_seq: AtomicU64::new(1),
            backups: Mutex::new(HashMap::new()),
            force_full: Mutex::new(HashSet::new()),
            events: Mutex::new(Vec::new()),
            in_flight: Arc::new(AtomicU64::new(0)),
            compiled: Mutex::new(HashMap::new()),
            pool,
            threads: Mutex::new(Vec::new()),
            stop: Arc::new(AtomicBool::new(false)),
            stop_wait: StopWait::new(),
            started: Instant::now(),
        });

        // Spawn instances: stateful tasks get one instance per SE replica,
        // stateless tasks use their configured count.
        for task in &sdg.tasks {
            let count = match &task.access {
                Some(a) => {
                    let se_count = inner.cells.read()[&a.state].len();
                    if let Some(&configured) = cfg.task_instances.get(&task.id) {
                        if configured != se_count {
                            return Err(SdgError::Config(format!(
                                "task `{}` instance count {configured} conflicts with its \
                                 state element's {se_count} instances",
                                task.name
                            )));
                        }
                    }
                    se_count
                }
                None => cfg.task_instances.get(&task.id).copied().unwrap_or(1),
            };
            for replica in 0..count {
                let node = if replica == 0 {
                    allocation.node_of_task(task.id).raw()
                } else {
                    inner.node_cursor.fetch_add(1, Ordering::Relaxed)
                };
                inner.spawn_instance(task.id, replica as u32, node)?;
            }
        }

        let deployment = Deployment {
            inner: Arc::clone(&inner),
            sink_rx,
            control: Mutex::new(Vec::new()),
        };
        deployment.start_controllers();
        Ok(deployment)
    }

    fn start_controllers(&self) {
        let mut control = self.control.lock();
        if self.inner.cfg.checkpoint.enabled {
            let inner = Arc::clone(&self.inner);
            control.push(std::thread::spawn(move || {
                let interval = inner.cfg.checkpoint.interval;
                // Park in small slices so long intervals stay interruptible;
                // only checkpoint when a full interval has elapsed. The
                // stop-aware wait returns immediately when shutdown fires.
                let mut due = interval;
                loop {
                    if inner
                        .stop_wait
                        .wait(&inner.stop, interval.min(Duration::from_millis(50)))
                    {
                        break;
                    }
                    if inner.started.elapsed() >= due {
                        due += interval;
                        let _ = inner.checkpoint_all();
                    }
                }
            }));
        }
        if self.inner.cfg.scaling.enabled {
            let inner = Arc::clone(&self.inner);
            control.push(std::thread::spawn(move || {
                run_scaling_monitor(&inner);
            }));
        }
        if self.inner.cfg.supervisor.enabled {
            let inner = Arc::clone(&self.inner);
            let cfg = self.inner.cfg.supervisor.clone();
            control.push(std::thread::spawn(move || {
                run_supervisor(inner, cfg);
            }));
        }
    }

    /// Supervisor-driven health: `Healthy` → `Recovering` while failures
    /// are being repaired, terminal `Degraded` once a recovery exhausts
    /// its attempts.
    pub fn health(&self) -> Health {
        self.inner.health_state()
    }

    /// Submits an external request to entry method `entry`.
    ///
    /// Blocks when the entry instance's channel is full (backpressure).
    /// Returns the request's correlation id.
    pub fn submit(&self, entry: &str, payload: Record) -> SdgResult<u64> {
        self.inner.submit(entry, payload)
    }

    /// The external output sink.
    pub fn outputs(&self) -> &Receiver<OutputEvent> {
        &self.sink_rx
    }

    /// Creates a private ingest handle with its own dedupe lane, so many
    /// feeder threads can submit without contending on the shared lane.
    ///
    /// # Errors
    ///
    /// At most `LANE_STRIDE - 1` handles can exist per deployment.
    pub fn ingest_handle(&self) -> SdgResult<IngestHandle> {
        let src = self.inner.ingest_src.fetch_add(1, Ordering::Relaxed);
        if src >= crate::item::LANE_STRIDE {
            return Err(SdgError::Runtime(
                "too many ingest handles (max 1023)".into(),
            ));
        }
        Ok(IngestHandle {
            inner: Arc::clone(&self.inner),
            src,
            lanes: HashMap::new(),
        })
    }

    /// Executes one typed reconfiguration request — scale-out, scale-in,
    /// checkpoint, or failure injection — and returns a uniform
    /// [`ReconfigReport`] with timings, migrated bytes and the resulting
    /// instance counts.
    ///
    /// This is the deployment's only control-plane entry point.
    ///
    /// Scale-in live-migrates the removed replica's state: a partitioned
    /// shard is split by the partitioner's key hash and merged into the
    /// survivors (with pointwise-max dedupe watermarks), a partial
    /// aggregate is additively folded into a survivor — refused when the
    /// SE's `@Partial` merge is uncertified by the attached `sdg-verify`
    /// report, unless `trust_annotations` is set.
    ///
    /// On `FailAndRecover`, recovery is exact (exactly-once) for the
    /// failed SE's own state: the checkpoint restores it, upstream buffers
    /// replay the suffix, and the vector timestamp filters duplicates. A
    /// limitation relative to §5 of the paper: replayed items reprocessed
    /// by the recovered TEs forward downstream with *fresh* timestamps
    /// rather than regenerating their original ones, so when a recovered
    /// stage feeds a different stateful stage, that downstream stage may
    /// re-apply effects it already holds. (The paper avoids this by
    /// checkpointing output buffers and relying on deterministic timestamp
    /// regeneration; the checkpoint layer here captures output buffers —
    /// see `take_checkpoint` — but the engine does not yet replay them.)
    /// Pipelines whose stateful stages hang off distinct
    /// upstream-stateless paths, such as the KV store and each SE of CF in
    /// isolation, recover exactly. A reconfiguration that migrated state
    /// also invalidates the affected chains, so recovery between a
    /// migration and the next checkpoint reports "no checkpoint recorded"
    /// instead of restoring the old key ownership.
    pub fn reconfigure(&self, request: ReconfigRequest) -> SdgResult<ReconfigReport> {
        crate::reconfig::execute(&self.inner, request)
    }

    /// Freezes every instrument into a plain-data [`MetricsSnapshot`]:
    /// per-TE counters and timing summaries, per-SE sizes, checkpoint phase
    /// timers, the deployment-wide latency summary, and the retained
    /// events. Sampled gauges (queue depths, instance counts, state bytes,
    /// dirty-overlay bytes) are refreshed immediately before the freeze.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.refresh_gauges();
        self.inner.obs.snapshot()
    }

    /// The retained structured events, oldest first.
    ///
    /// The log is bounded (see `RuntimeConfig::event_log_capacity`); the
    /// snapshot's `events_dropped` counter reveals eviction.
    pub fn events(&self) -> Vec<ObsEvent> {
        self.inner.obs.events()
    }

    /// One-line deployment aggregates, derived from [`Deployment::metrics`].
    pub fn stats(&self) -> DeploymentStats {
        self.metrics().deployment_stats()
    }

    /// Resets every timing histogram (service, latency, checkpoint phases)
    /// while keeping counters, gauges and events. Benchmarks call this
    /// after warm-up so percentiles cover only the measured window.
    pub fn reset_observations(&self) {
        self.inner.obs.reset_observations();
    }

    /// Runs `f` against SE instance `(state, replica)` under its lock.
    pub fn with_state<R>(
        &self,
        state: StateId,
        replica: u32,
        f: impl FnOnce(&mut StateStore) -> R,
    ) -> SdgResult<R> {
        let cell = self
            .inner
            .cells
            .read()
            .get(&state)
            .and_then(|v| v.get(replica as usize).cloned())
            .ok_or_else(|| SdgError::NotFound(format!("state instance {state}#{replica}")))?;
        cell.with_merged(f)
    }

    /// Waits until all submitted work has drained (queues empty and no item
    /// mid-processing), up to `timeout`. Returns `true` on success.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let queued: usize = self
                .inner
                .targets
                .values()
                .map(|t| t.read().iter().map(|s| s.len()).sum::<usize>())
                .sum();
            let busy = self.inner.in_flight.load(Ordering::Acquire);
            if queued == 0 && busy == 0 {
                // Double-check after a grace period: a worker may be
                // between recv and the in-flight increment.
                std::thread::sleep(Duration::from_millis(2));
                let queued: usize = self
                    .inner
                    .targets
                    .values()
                    .map(|t| t.read().iter().map(|s| s.len()).sum::<usize>())
                    .sum();
                if queued == 0 && self.inner.in_flight.load(Ordering::Acquire) == 0 {
                    return true;
                }
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Stops all workers and controllers, joining their threads.
    pub fn shutdown(self) {
        self.inner.stop.store(true, Ordering::Release);
        // Wake the parked controllers so they observe the flag now instead
        // of sleeping out their check interval.
        self.inner.stop_wait.notify();
        for t in self.inner.targets.values() {
            for sender in t.read().iter() {
                // `force_send` so a full mailbox cannot block shutdown: under
                // the pool scheduler Stop must reach every actor even when
                // its producers are suspended on it.
                let _ = sender.force_send(WorkerMsg::Stop);
            }
        }
        for handle in self.control.lock().drain(..) {
            let _ = handle.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.inner.threads.lock());
        for handle in handles {
            let _ = handle.join();
        }
        if let Some(pool) = &self.inner.pool {
            pool.join();
        }
    }
}

impl Inner {
    /// Refreshes the sampled gauges (queue depths, instance counts, state
    /// sizes) so a snapshot taken right after reflects current occupancy.
    fn refresh_gauges(&self) {
        for (task, instruments) in &self.instruments {
            let targets = self.targets[task].read();
            instruments.instances.set(targets.len() as u64);
            instruments
                .queue_depth
                .set(targets.iter().map(|s| s.len() as u64).sum());
        }
        for (&state, group) in self.cells.read().iter() {
            let Ok(decl) = self.sdg.state(state) else {
                continue;
            };
            let s = self.obs.state_with_id(&decl.name, Some(state));
            s.instances.set(group.len() as u64);
            s.bytes
                .set(group.iter().map(|c| c.approx_bytes() as u64).sum());
            s.dirty_bytes
                .set(group.iter().map(|c| c.dirty_bytes() as u64).sum());
            s.stripes
                .set(group.first().map(|c| c.stripe_count() as u64).unwrap_or(0));
            s.dirty_chunks
                .set(group.iter().map(|c| c.pending_dirty_chunks() as u64).sum());
        }
        self.obs
            .checkpoints()
            .buffered_bytes
            .set(self.buffers.total_bytes() as u64);
        // Mirror the transient store-I/O retries absorbed so far into the
        // monotone fault counter (each store counts its own).
        let retried: u64 = self.stores.iter().map(|s| s.retried_ops()).sum();
        let seen = self.obs.faults().io_retries.get();
        if retried > seen {
            self.obs.faults().io_retries.add(retried - seen);
        }
        if self.pool.is_some() {
            let depth: usize = self
                .targets
                .values()
                .map(|t| t.read().iter().map(|s| s.len()).sum::<usize>())
                .sum();
            self.obs.sched().mailbox_depth.set(depth as u64);
        }
    }

    /// Label of SE instance `(state, replica)` in event payloads.
    fn se_label(&self, state: StateId, replica: u32) -> String {
        match self.sdg.state(state) {
            Ok(decl) => format!("{}#{replica}", decl.name),
            Err(_) => format!("{state}#{replica}"),
        }
    }

    /// Allocates the next fresh cluster node.
    pub(crate) fn next_node(&self) -> u32 {
        self.node_cursor.fetch_add(1, Ordering::Relaxed)
    }

    /// The certificate-gated stripe/axis/delta layout for `decl`'s cells.
    pub(crate) fn layout_of(&self, decl: &StateDecl) -> (usize, PartitionDim, Option<usize>) {
        cell_layout(&self.cfg, decl, self.sdg.verify.as_deref())
    }

    /// Spawns one TE instance worker; its sender is appended (or swapped in
    /// at `replica`) in the task's target list.
    pub(crate) fn spawn_instance(&self, task_id: TaskId, replica: u32, node: u32) -> SdgResult<()> {
        self.spawn_instance_in(task_id, replica, node, None)
    }

    /// [`Inner::spawn_instance`] with an optionally pre-held target list.
    ///
    /// Recovery and repartitioning hold the task's dispatch lock across the
    /// whole operation (kill → restore → respawn → replay); passing the
    /// held guard's vector here avoids re-locking and keeps producers
    /// paused until the swap (and any replay) is complete.
    pub(crate) fn spawn_instance_in(
        &self,
        task_id: TaskId,
        replica: u32,
        node: u32,
        slot_override: Option<&mut Vec<MailboxSender>>,
    ) -> SdgResult<()> {
        let task = self.sdg.task(task_id)?.clone();

        let cell = match &task.access {
            Some(a) => {
                let cells = self.cells.read();
                let group = cells
                    .get(&a.state)
                    .ok_or_else(|| SdgError::NotFound(format!("state {}", a.state)))?;
                Some(group.get(replica as usize).cloned().ok_or_else(|| {
                    SdgError::Runtime(format!(
                        "task `{}` replica {replica} has no SE instance",
                        task.name
                    ))
                })?)
            }
            None => None,
        };

        let route_key = task.access.as_ref().and_then(|a| match &a.mode {
            AccessMode::Partitioned { key, .. } => Some(key.clone()),
            _ => None,
        });

        let gather_var = self
            .sdg
            .flows_to(task_id)
            .iter()
            .find_map(|f| match &f.dispatch {
                Dispatch::AllToOne { collect_var } => Some(collect_var.clone()),
                _ => None,
            });

        let buffered = self.cfg.checkpoint.enabled;
        let outs: Vec<OutEdge> = self
            .sdg
            .flows_from(task_id)
            .into_iter()
            .map(|flow| {
                // Resume timestamps past anything already buffered on this
                // producer lane, so a respawned instance never reuses a ts.
                let mut last = 0;
                for (_, buf) in self.buffers_from(flow.id, replica) {
                    last = last.max(buf.lock().last_ts());
                }
                OutEdge::new(
                    flow.id,
                    flow.dispatch.clone(),
                    flow.live_vars.clone(),
                    Arc::clone(&self.targets[&flow.to]),
                    TsGen::resume_after(last),
                    replica as usize, // Stagger round-robin start points.
                    Arc::clone(&self.buffers),
                    buffered,
                    self.cfg.checkpoint.deferred_encode,
                    self.edge_batch(flow.to),
                    Arc::clone(&self.in_flight),
                )
            })
            .collect();

        let alive = Arc::new(AtomicBool::new(true));
        self.alive
            .write()
            .insert((task_id, replica), Arc::clone(&alive));
        let heartbeat = Arc::new(AtomicU64::new(0));
        self.heartbeats
            .write()
            .insert((task_id, replica), Arc::clone(&heartbeat));
        self.node_of_instance
            .write()
            .insert((task_id, replica), node);

        // Prepare the task's code for the configured engine; compiled form
        // is built once per task and shared by every replica.
        let code = PreparedCode::prepare(&task.code, self.cfg.engine, |te| {
            Arc::clone(
                self.compiled
                    .lock()
                    .entry(task_id)
                    .or_insert_with(|| Arc::new(CompiledTe::compile(te))),
            )
        });

        let worker = Worker {
            name: task.name.clone(),
            replica,
            code,
            scratch: Scratch::new(),
            cell,
            route_key,
            outs,
            sink: self.sink_tx.clone(),
            pending_gathers: HashMap::new(),
            gather_var,
            work_ns: self.cfg.work_ns.get(&task_id).copied().unwrap_or(0),
            speed: self.cfg.cluster.speed_of(node as usize),
            alive,
            obs: Arc::clone(&self.instruments[&task_id]),
            e2e: Arc::clone(self.obs.e2e_latency()),
            dedupe: true,
            in_flight: Arc::clone(&self.in_flight),
            work_debt: Duration::ZERO,
            task: task_id,
            heartbeat,
            // A respawned replica shares the original (spent) trigger, so
            // a recovered worker does not re-fail on the replayed item.
            fault: self.injector.trigger_for(task_id, replica),
            hub: Some(Arc::clone(&self.failure_hub)),
        };
        let tx = match &self.pool {
            Some(pool) => MailboxSender::Pool(pool.spawn_actor(worker, self.cfg.channel_capacity)),
            None => {
                let (tx, rx) = bounded::<WorkerMsg>(self.cfg.channel_capacity);
                let handle = std::thread::spawn(move || {
                    // The panic boundary of a dedicated worker thread: a
                    // caught panic is reported to the failure hub (for the
                    // supervisor) instead of dying silently into `join`.
                    // The unwind drops the worker, whose `OutEdge`s repay
                    // any parked batches, and drops `rx`, so producers see
                    // a disconnected channel instead of a wedged queue.
                    let probe = worker.panic_probe();
                    if let Err(payload) =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| worker.run(rx)))
                    {
                        probe.report(payload.as_ref());
                    }
                });
                self.threads.lock().push(handle);
                MailboxSender::Thread(tx)
            }
        };

        let mut own_guard;
        let targets: &mut Vec<MailboxSender> = match slot_override {
            Some(slot) => slot,
            None => {
                own_guard = self.targets[&task_id].write();
                &mut own_guard
            }
        };
        if (replica as usize) < targets.len() {
            targets[replica as usize] = tx;
        } else {
            targets.push(tx);
        }
        Ok(())
    }

    /// All buffers produced by `(edge, src replica)`, regardless of dst.
    fn buffers_from(
        &self,
        edge: EdgeId,
        src: u32,
    ) -> Vec<(
        u32,
        Arc<parking_lot::Mutex<sdg_checkpoint::buffer::OutputBuffer>>,
    )> {
        let mut out = Vec::new();
        // Probe destination replicas 0..current maximum (bounded by 1024).
        let max_dst = self
            .sdg
            .flow(edge)
            .ok()
            .map(|f| self.targets[&f.to].read().len() as u32)
            .unwrap_or(0);
        for dst in 0..max_dst {
            let key = BufferKey { edge, src, dst };
            out.push((dst, self.buffers.get(key)));
        }
        out
    }

    fn find_entry(&self, entry: &str) -> SdgResult<&sdg_graph::model::TaskDecl> {
        self.sdg
            .tasks
            .iter()
            .find(|t| {
                matches!(&t.kind, TaskKind::Entry { method } if method == entry) || t.name == entry
            })
            .ok_or_else(|| SdgError::NotFound(format!("entry point `{entry}`")))
    }

    /// Dispatches one external request into the entry task's instances.
    ///
    /// `src` distinguishes ingest lanes: each submitter handle owns one so
    /// duplicate detection stays per-producer; `ts` must increase per
    /// `(entry, src)`.
    fn ingest_dispatch(
        &self,
        task: &sdg_graph::model::TaskDecl,
        payload: &Record,
        corr: u64,
        src: u32,
        ts: sdg_common::time::ScalarTs,
        rr: &mut usize,
    ) -> SdgResult<()> {
        let edge = ingest_edge(task.id);
        let targets = self.targets[&task.id].read();
        let n = targets.len();
        if n == 0 {
            return Err(SdgError::Runtime(format!(
                "entry `{}` has no running instances",
                task.name
            )));
        }
        // Broadcast ingestion for global-access entries, keyed dispatch for
        // partitioned ones, shortest-queue otherwise.
        let idxs: Vec<usize> = match task.access.as_ref().map(|a| &a.mode) {
            Some(AccessMode::Partitioned { key, .. }) => {
                let k = payload.require(key)?.to_key()?;
                vec![(k.stable_hash() % n as u64) as usize]
            }
            Some(AccessMode::PartialGlobal) => (0..n).collect(),
            _ => {
                let start = *rr % n;
                *rr = rr.wrapping_add(1);
                let mut idx = start;
                let mut best = usize::MAX;
                for off in 0..n {
                    let candidate = (start + off) % n;
                    let depth = targets[candidate].len();
                    if depth < best {
                        best = depth;
                        idx = candidate;
                    }
                    if depth == 0 {
                        break;
                    }
                }
                vec![idx]
            }
        };
        let expect = idxs.len() as u32;
        let submitted_at = Some(Instant::now());
        // One refcounted allocation shared across every broadcast target
        // and the output-buffer log — fan-out is a refcount bump.
        let shared = Arc::new(payload.clone());
        for idx in idxs {
            let item = Item {
                edge,
                src_replica: src,
                ts,
                corr,
                expect,
                payload: Arc::clone(&shared),
                submitted_at,
            };
            if self.cfg.checkpoint.enabled {
                let key = BufferKey {
                    edge,
                    src,
                    dst: idx as u32,
                };
                let buf = self.buffers.get(key);
                if self.cfg.checkpoint.deferred_encode {
                    buf.lock().push_live(ts, corr, expect, Arc::clone(&shared));
                } else {
                    buf.lock().push_encoded(ts, item.encode_payload());
                }
            }
            targets[idx]
                .send(WorkerMsg::Item(item))
                .map_err(|_| SdgError::Runtime("entry channel closed".into()))?;
        }
        Ok(())
    }

    fn submit(&self, entry: &str, payload: Record) -> SdgResult<u64> {
        let task = self.find_entry(entry)?;
        let corr = self.corr.fetch_add(1, Ordering::Relaxed);
        // The shared path funnels through one ingest lane (src 0); heavy
        // multi-threaded feeders should use `Deployment::ingest_handle`.
        let (ts, mut rr) = {
            let mut ingest = self.ingest.lock();
            let lane_state = ingest.entry(task.id).or_insert(IngestLane {
                ts: TsGen::new(),
                rr: 0,
            });
            let ts = lane_state.ts.tick();
            lane_state.rr = lane_state.rr.wrapping_add(1);
            (ts, lane_state.rr)
        };
        self.ingest_dispatch(task, &payload, corr, 0, ts, &mut rr)?;
        Ok(corr)
    }

    /// The micro-batching configuration for edges into task `to`.
    ///
    /// Batching coalesces consecutive items and reorders their interleaving
    /// with other producers' items, which is only replay-transparent when
    /// the destination TE is certified deterministic — so an uncertified
    /// destination gets eager (unbatched) delivery. Tasks without a
    /// certificate (native code in a translated graph, or a graph with no
    /// report at all) are trusted, preserving pre-verifier behavior.
    fn edge_batch(&self, to: TaskId) -> BatchConfig {
        if self.cfg.trust_annotations {
            return self.cfg.batch;
        }
        let Some(report) = self.sdg.verify.as_deref() else {
            return self.cfg.batch;
        };
        let certified = self
            .sdg
            .task(to)
            .ok()
            .is_none_or(|t| report.te(&t.name).is_none_or(|c| c.deterministic));
        if certified {
            self.cfg.batch
        } else {
            BatchConfig::disabled()
        }
    }

    pub(crate) fn checkpoint_all(&self) -> SdgResult<()> {
        let snapshot: Vec<(StateId, Vec<Arc<StateCell>>)> = self
            .cells
            .read()
            .iter()
            .map(|(&s, v)| (s, v.clone()))
            .collect();
        for (state, group) in snapshot {
            for (replica, cell) in group.iter().enumerate() {
                let seq = self.backup_seq.fetch_add(1, Ordering::Relaxed);
                let label = self.se_label(state, replica as u32);
                // A reconfiguration migrated state into this cell since the
                // last take: the next generation must be a full base, never
                // a delta chained onto the pre-migration ownership.
                let migrated = self.force_full.lock().contains(&(state, replica as u32));
                // Compaction: once the deltas accumulated since the base
                // outweigh `compact_threshold` of its size, force a full
                // generation so restore chains stay short.
                let force_full = migrated || {
                    let backups = self.backups.lock();
                    match backups.get(&(state, replica as u32)) {
                        Some(chain) if chain.len() > 1 => {
                            let base = chain[0].state_bytes.max(1) as f64;
                            let deltas: usize = chain[1..].iter().map(|s| s.state_bytes).sum();
                            deltas as f64 > self.cfg.checkpoint.compact_threshold * base
                        }
                        _ => false,
                    }
                };
                self.obs.record_event(EventKind::CheckpointBegin {
                    instance: label.clone(),
                    seq,
                });
                let set = take_checkpoint_with(
                    cell,
                    se_instance_id(state, replica as u32),
                    seq,
                    || self.capture_outputs_for(state, replica as u32),
                    &self.stores,
                    &self.cfg.checkpoint,
                    Some(self.obs.checkpoints()),
                    CheckpointOptions { force_full },
                )?;
                self.obs.record_event(EventKind::CheckpointBackup {
                    instance: label.clone(),
                    seq,
                    bytes: set.state_bytes as u64,
                });
                self.obs.record_event(EventKind::CheckpointConsolidate {
                    instance: label,
                    seq,
                });
                if let Ok(decl) = self.sdg.state(state) {
                    self.obs
                        .state_with_id(&decl.name, Some(state))
                        .checkpoints
                        .inc();
                }
                if migrated {
                    self.force_full.lock().remove(&(state, replica as u32));
                }
                // Trim upstream buffers covered by this checkpoint.
                self.trim_for(state, replica as u32, &set);
                // Chain bookkeeping: a base generation supersedes the whole
                // chain (its predecessors' chunks can go); a delta extends
                // it, so everything back to the base stays alive.
                let keep = {
                    let mut backups = self.backups.lock();
                    let chain = backups.entry((state, replica as u32)).or_default();
                    if set.is_base() {
                        chain.clear();
                    }
                    chain.push(set);
                    chain[0].seq
                };
                for store in &self.stores {
                    store.garbage_collect(se_instance_id(state, replica as u32), keep);
                }
            }
        }
        Ok(())
    }

    /// Snapshots the output buffers feeding SE instance `(state, replica)`,
    /// keyed by their dedupe lane so a restored node can match watermarks.
    ///
    /// Runs inside the checkpoint initiation lock. Snapshots are O(items)
    /// refcount bumps (live entries stay un-encoded until the persist
    /// phase seals them), so the lock-held span stays short.
    fn capture_outputs_for(
        &self,
        state: StateId,
        replica: u32,
    ) -> Vec<(EdgeId, Vec<BufferedItem>)> {
        let mut out = Vec::new();
        for task in self.sdg.tasks_accessing(state) {
            let mut edges: Vec<EdgeId> = self.sdg.flows_to(task.id).iter().map(|f| f.id).collect();
            if matches!(task.kind, TaskKind::Entry { .. }) {
                edges.push(ingest_edge(task.id));
            }
            for edge in edges {
                for (src, buf) in self.buffers.buffers_into(edge, replica) {
                    let items = buf.lock().snapshot();
                    if !items.is_empty() {
                        out.push((lane(edge, src), items));
                    }
                }
            }
        }
        out
    }

    /// Trims buffers into `(state, replica)`'s consumer tasks using the
    /// checkpoint's vector watermarks.
    fn trim_for(&self, state: StateId, replica: u32, set: &BackupSet) {
        for task in self.sdg.tasks_accessing(state) {
            let mut edges: Vec<EdgeId> = self.sdg.flows_to(task.id).iter().map(|f| f.id).collect();
            if matches!(task.kind, TaskKind::Entry { .. }) {
                edges.push(ingest_edge(task.id));
            }
            for edge in edges {
                for (src, _) in self.buffers.buffers_into(edge, replica) {
                    let wm = set.vector.get(lane(edge, src));
                    self.buffers.trim(
                        BufferKey {
                            edge,
                            src,
                            dst: replica,
                        },
                        wm,
                    );
                }
            }
        }
        // Bound buffers into stateless consumers.
        let cap = self.buffers.stateless_cap;
        for task in &self.sdg.tasks {
            if task.access.is_none() {
                for flow in self.sdg.flows_to(task.id) {
                    let n = self.targets[&task.id].read().len() as u32;
                    for dst in 0..n {
                        for (src, buf) in self.buffers.buffers_into(flow.id, dst) {
                            let _ = src;
                            buf.lock().cap(cap);
                        }
                    }
                }
            }
        }
    }

    pub(crate) fn fail_and_recover(
        &self,
        state: StateId,
        replica: u32,
    ) -> SdgResult<RecoveryReport> {
        let t0 = Instant::now();
        let label = self.se_label(state, replica);
        self.obs.record_event(EventKind::FailureInjected {
            instance: label.clone(),
        });
        let chain = self
            .backups
            .lock()
            .get(&(state, replica))
            .filter(|c| !c.is_empty())
            .cloned();
        // Without a chain, recovery from scratch (empty store, zero
        // watermark, full replay) is sound only while the upstream buffers
        // still hold everything ever sent to this replica: checkpointing
        // must be on (or buffers don't exist), and no reconfiguration may
        // have migrated state into the replica since (the buffers describe
        // the *current* key ownership only from that point on).
        if chain.is_none()
            && (!self.cfg.checkpoint.enabled || self.force_full.lock().contains(&(state, replica)))
        {
            return Err(SdgError::Recovery(format!(
                "no checkpoint recorded for {state}#{replica}; enable checkpointing"
            )));
        }

        // Pause producers into the affected tasks: take their target locks
        // in id order (consistent ordering prevents lock cycles). The locks
        // are held through restore, respawn AND replay: if new traffic ran
        // ahead of the replayed (lower-timestamped) items, the duplicate
        // filter would wrongly discard the replay.
        let mut affected: Vec<TaskId> = self
            .sdg
            .tasks_accessing(state)
            .iter()
            .map(|t| t.id)
            .collect();
        affected.sort();
        let mut guards: Vec<_> = affected.iter().map(|t| self.targets[t].write()).collect();

        // Kill the old instances: their queues drain as discards.
        for &task in &affected {
            if let Some(flag) = self.alive.read().get(&(task, replica)) {
                flag.store(false, Ordering::Release);
            }
        }

        // Restore state from the m backup stores, composing the base
        // generation with any deltas taken since it. The resilient restore
        // routes around corrupt or missing chunks by falling back to the
        // newest intact prefix of the chain; with no chain at all (never
        // checkpointed), recovery rebuilds from an empty store and a zero
        // watermark — replay then reconstructs the state from scratch.
        let restore_t0 = Instant::now();
        let decl = self.sdg.state(state)?.clone();
        let (store, vector, stripe_vectors) = match &chain {
            Some(chain) => {
                let restored = restore_chain_resilient_observed(
                    chain,
                    &self.stores,
                    1,
                    RestoreOptions::default(),
                    Some(self.obs.checkpoints()),
                )?;
                if !restored.fallback_errors.is_empty() {
                    // Corrupt generations were dropped: surface each loss,
                    // then truncate the recorded chain to the prefix that
                    // actually restored, so later deltas can never compose
                    // across the corrupt boundary, and force the next
                    // checkpoint to be a full (non-delta) take.
                    for e in &restored.fallback_errors {
                        self.obs.faults().chunks_corrupt.inc();
                        self.obs.record_event(EventKind::ChunkCorrupt {
                            instance: label.clone(),
                            error: e.to_string(),
                        });
                    }
                    self.obs
                        .recovery()
                        .chain_fallbacks
                        .add(restored.fallback_errors.len() as u64);
                    if let Some(c) = self.backups.lock().get_mut(&(state, replica)) {
                        c.truncate(restored.used + 1);
                    }
                    self.force_full.lock().insert((state, replica));
                }
                let stripe_vectors = chain[restored.used].stripe_vectors.clone();
                let (store, vector) = restored.parts.into_iter().next().expect("n=1 restore");
                (store, vector, stripe_vectors)
            }
            None => (StateStore::new(decl.ty), VectorTs::default(), Vec::new()),
        };
        let (stripes, dim, delta) = cell_layout(&self.cfg, &decl, self.sdg.verify.as_deref());
        // Re-split into stripes with the exact per-stripe vectors recorded
        // at checkpoint time (split_by_hash and stripe routing use the same
        // key hash, so stripe i gets back exactly the keys — and watermarks
        // — it owned). Falling back to the merged (min) vector is safe but
        // replays more.
        let new_cell = if stripes > 1 && stripe_vectors.len() == stripes {
            let parts = store.split_by_hash(stripes, dim)?;
            Arc::new(StateCell::from_parts(
                parts
                    .into_iter()
                    .zip(stripe_vectors.iter().cloned())
                    .collect(),
                dim,
                delta,
            ))
        } else {
            Arc::new(StateCell::from_store_striped(
                store,
                vector.clone(),
                stripes,
                dim,
                delta,
            )?)
        };
        self.cells
            .write()
            .get_mut(&state)
            .and_then(|g| {
                g.get_mut(replica as usize)
                    .map(|slot| *slot = Arc::clone(&new_cell))
            })
            .ok_or_else(|| SdgError::NotFound(format!("state instance {state}#{replica}")))?;
        let restore = restore_t0.elapsed();
        self.obs.record_event(EventKind::RecoveryRestored {
            instance: label.clone(),
            took: restore,
        });

        // Respawn workers on a fresh node, swapping senders in through the
        // held guards.
        let node = self.node_cursor.fetch_add(1, Ordering::Relaxed);
        for (i, &task) in affected.iter().enumerate() {
            self.spawn_instance_in(task, replica, node, Some(&mut guards[i]))?;
        }

        // Replay from upstream output buffers past the restored watermarks,
        // still before any producer may send: replayed items must be first
        // in every lane so their (older) timestamps pass the filter.
        let mut replayed = 0usize;
        for (i, &task_id) in affected.iter().enumerate() {
            let task = self.sdg.task(task_id)?;
            let mut edges: Vec<EdgeId> = self.sdg.flows_to(task_id).iter().map(|f| f.id).collect();
            if matches!(task.kind, TaskKind::Entry { .. }) {
                edges.push(ingest_edge(task_id));
            }
            let sender = guards[i][replica as usize].clone();
            for edge in edges {
                for (src, buf) in self.buffers.buffers_into(edge, replica) {
                    let wm = vector.get(lane(edge, src));
                    for buffered in buf.lock().replay_after(wm) {
                        // Live entries re-send the buffered `Arc` directly
                        // (zero decode); only `Encoded` entries — restored
                        // from a checkpoint or logged by the eager
                        // baseline — go through the wire codec.
                        let item = Item::from_buffered(edge, src, buffered)?;
                        // Replay runs while the target write guards are held;
                        // a blocking send could never receive credit (the
                        // pool's producers are paused), so bypass the cap.
                        sender
                            .force_send(WorkerMsg::Item(item))
                            .map_err(|_| SdgError::Runtime("replay channel closed".into()))?;
                        replayed += 1;
                    }
                }
            }
        }
        drop(guards);
        self.obs.checkpoints().replayed.add(replayed as u64);
        self.obs.record_event(EventKind::RecoveryReplayed {
            instance: label.clone(),
            items: replayed as u64,
        });
        let total = t0.elapsed();
        self.obs.record_event(EventKind::RecoveryComplete {
            instance: label,
            took: total,
        });

        Ok(RecoveryReport {
            restore,
            replayed,
            total,
        })
    }

    pub(crate) fn stop_flag(&self) -> &Arc<AtomicBool> {
        &self.stop
    }

    pub(crate) fn stop_wait(&self) -> &StopWait {
        &self.stop_wait
    }

    // ---- supervisor interface (see `crate::fault::run_supervisor`) ----

    pub(crate) fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        &self.obs
    }

    pub(crate) fn failure_hub(&self) -> &FailureHub {
        &self.failure_hub
    }

    /// Seed for the supervisor's backoff jitter (0 without a plan).
    pub(crate) fn fault_seed(&self) -> u64 {
        self.cfg.faults.as_ref().map(|p| p.seed).unwrap_or(0)
    }

    pub(crate) fn health_state(&self) -> Health {
        Health::from_u8(self.health.load(Ordering::Acquire))
    }

    /// `Healthy` → `Recovering`; never leaves `Degraded`.
    pub(crate) fn mark_recovering(&self) {
        let _ = self.health.compare_exchange(
            Health::Healthy.as_u8(),
            Health::Recovering.as_u8(),
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// `Recovering` → `Healthy`; never leaves `Degraded`.
    pub(crate) fn mark_stable(&self) {
        let _ = self.health.compare_exchange(
            Health::Recovering.as_u8(),
            Health::Healthy.as_u8(),
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// Terminal escalation.
    pub(crate) fn mark_degraded(&self) {
        self.health
            .store(Health::Degraded.as_u8(), Ordering::Release);
    }

    /// Samples every instance's heartbeat epoch together with what the
    /// supervisor needs to judge it: liveness, queued input, and whether
    /// a stalled epoch can mean a hang at all under the scheduler.
    pub(crate) fn heartbeat_view(&self) -> Vec<HeartbeatView> {
        let heartbeats = self.heartbeats.read();
        let alive = self.alive.read();
        let mut views = Vec::with_capacity(heartbeats.len());
        for (&(task, replica), epoch) in heartbeats.iter() {
            let sender = self
                .targets
                .get(&task)
                .and_then(|t| t.read().get(replica as usize).cloned());
            let Some(sender) = sender else {
                continue; // instance not wired (mid-spawn or retired)
            };
            views.push(HeartbeatView {
                task,
                replica,
                epoch: epoch.load(Ordering::Acquire),
                alive: alive
                    .get(&(task, replica))
                    .is_some_and(|f| f.load(Ordering::Acquire)),
                queued: sender.len(),
                hang_candidate: sender.hang_candidate(),
                label: self.te_label(task, replica),
            });
        }
        views
    }

    /// Label of TE instance `(task, replica)` in event payloads.
    fn te_label(&self, task: TaskId, replica: u32) -> String {
        match self.sdg.task(task) {
            Ok(decl) => format!("{}#{replica}", decl.name),
            Err(_) => format!("{task}#{replica}"),
        }
    }

    /// What recovering the failed instance `(task, replica)` means:
    /// stateful tasks go through fail-and-recover keyed by their SE,
    /// stateless ones are respawned.
    pub(crate) fn recovery_unit(&self, task: TaskId, replica: u32) -> RecoveryUnit {
        match self.sdg.task(task).ok().and_then(|t| t.access.as_ref()) {
            Some(a) => RecoveryUnit::State(a.state, replica),
            None => RecoveryUnit::Task(task, replica),
        }
    }

    pub(crate) fn unit_label(&self, unit: RecoveryUnit) -> String {
        match unit {
            RecoveryUnit::State(state, replica) => self.se_label(state, replica),
            RecoveryUnit::Task(task, replica) => self.te_label(task, replica),
        }
    }

    /// Executes one recovery on behalf of the supervisor.
    pub(crate) fn recover(&self, unit: RecoveryUnit) -> SdgResult<()> {
        match unit {
            RecoveryUnit::State(state, replica) => {
                self.fail_and_recover(state, replica).map(|_| ())
            }
            RecoveryUnit::Task(task, replica) => self.respawn_stateless(task, replica),
        }
    }

    /// Replaces a dead stateless instance with a fresh one on a new node.
    ///
    /// There is no state to restore and no watermark to replay from:
    /// items that were queued in the dead instance's mailbox are covered
    /// by upstream buffers only through a downstream stateful consumer's
    /// recovery; for a purely stateless stretch the respawn restores
    /// liveness, not the lost items (the §5 model: in-flight data on a
    /// failed node is lost, durability comes from checkpoints + replay at
    /// the stateful stages).
    pub(crate) fn respawn_stateless(&self, task: TaskId, replica: u32) -> SdgResult<()> {
        if let Some(flag) = self.alive.read().get(&(task, replica)) {
            flag.store(false, Ordering::Release);
        }
        let node = self.next_node();
        let targets = Arc::clone(
            self.targets
                .get(&task)
                .ok_or_else(|| SdgError::NotFound(format!("task {task}")))?,
        );
        let mut guard = targets.write();
        self.spawn_instance_in(task, replica, node, Some(&mut guard))
    }

    /// Drops every recorded checkpoint chain of `state` and marks its
    /// remaining replicas for a forced full (non-delta) take: a chain
    /// recorded before a repartition describes the old key ownership, so
    /// `restore_chain` must never compose deltas across the migration
    /// boundary. Until the next checkpoint, failure recovery of this state
    /// reports "no checkpoint recorded" rather than restoring stale shards.
    pub(crate) fn invalidate_chains(&self, state: StateId) {
        self.backups.lock().retain(|&(s, _), _| s != state);
        let replicas = self.cells.read().get(&state).map(|g| g.len()).unwrap_or(0);
        let mut force = self.force_full.lock();
        force.retain(|&(s, _)| s != state);
        for replica in 0..replicas as u32 {
            force.insert((state, replica));
        }
    }

    /// Records one scale event in the obs log, the reconfig counters, and
    /// the Fig. 10 timeline.
    pub(crate) fn record_scale(&self, task: TaskId, node: u32, direction: ScaleDirection) {
        let instances = self.targets[&task].read().len() as u32;
        let name = match self.sdg.task(task) {
            Ok(decl) => decl.name.clone(),
            Err(_) => task.to_string(),
        };
        match direction {
            ScaleDirection::Out => {
                self.obs.record_event(EventKind::ScaleOut {
                    task: name,
                    instances,
                    node,
                });
                self.obs.reconfig().scale_outs.inc();
            }
            ScaleDirection::In => {
                self.obs.record_event(EventKind::ScaleIn {
                    task: name,
                    instances,
                    node,
                });
                self.obs.reconfig().scale_ins.inc();
            }
        }
        self.events.lock().push(ScaleEvent {
            at: self.started.elapsed(),
            task,
            instances,
            node,
            direction,
        });
    }

    /// Records one state-migration episode (bytes that changed SE owner).
    pub(crate) fn record_migration(&self, state: StateId, bytes: u64, took: Duration) {
        let name = match self.sdg.state(state) {
            Ok(decl) => decl.name.clone(),
            Err(_) => state.to_string(),
        };
        self.obs.record_event(EventKind::StateMigrated {
            state: name,
            bytes,
            took,
        });
        self.obs.reconfig().migrated_bytes.record(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdg_ir::analysis::verify::SeCertificate;

    fn decl(ty: StateType, dist: Distribution) -> StateDecl {
        StateDecl {
            id: StateId(0),
            name: "t".into(),
            ty,
            dist,
        }
    }

    fn report(key_local: bool, replay_safe: bool) -> VerifyReport {
        let mut report = VerifyReport::default();
        report.se_certs.insert(
            "t".into(),
            SeCertificate {
                field: "t".into(),
                key_local,
                replay_safe,
                merge_sound: replay_safe,
                violations: Vec::new(),
            },
        );
        report
    }

    fn cfg_with_delta() -> RuntimeConfig {
        let mut cfg = RuntimeConfig {
            state_stripes: 8,
            ..RuntimeConfig::default()
        };
        cfg.checkpoint.enabled = true;
        cfg.checkpoint.incremental = true;
        cfg.checkpoint.delta_chunks = 32;
        cfg
    }

    #[test]
    fn certified_partitioned_table_is_striped_with_deltas() {
        let cfg = cfg_with_delta();
        let d = decl(
            StateType::Table,
            Distribution::Partitioned {
                dim: PartitionDim::Row,
            },
        );
        let (stripes, _, delta) = cell_layout(&cfg, &d, Some(&report(true, true)));
        assert_eq!(stripes, 8);
        assert_eq!(delta, Some(32));
    }

    #[test]
    fn key_locality_violation_forces_one_stripe() {
        let cfg = cfg_with_delta();
        let d = decl(
            StateType::Table,
            Distribution::Partitioned {
                dim: PartitionDim::Row,
            },
        );
        let (stripes, _, delta) = cell_layout(&cfg, &d, Some(&report(false, true)));
        assert_eq!(stripes, 1, "uncertified key locality must not stripe");
        assert_eq!(delta, Some(32), "replay safety is independent of striping");
    }

    #[test]
    fn replay_violation_disables_delta_checkpointing() {
        let cfg = cfg_with_delta();
        let d = decl(
            StateType::Table,
            Distribution::Partitioned {
                dim: PartitionDim::Row,
            },
        );
        let (stripes, _, delta) = cell_layout(&cfg, &d, Some(&report(true, false)));
        assert_eq!(stripes, 8);
        assert_eq!(delta, None, "uncertified replay safety must not cut deltas");
    }

    #[test]
    fn absent_report_and_trust_annotations_are_both_trusted() {
        let mut cfg = cfg_with_delta();
        let d = decl(
            StateType::Table,
            Distribution::Partitioned {
                dim: PartitionDim::Row,
            },
        );
        // Hand-built graphs attach no report: optimizations stay on.
        let (stripes, _, delta) = cell_layout(&cfg, &d, None);
        assert_eq!((stripes, delta), (8, Some(32)));
        // The escape hatch overrides a failing certificate.
        cfg.trust_annotations = true;
        let (stripes, _, delta) = cell_layout(&cfg, &d, Some(&report(false, false)));
        assert_eq!((stripes, delta), (8, Some(32)));
    }

    #[test]
    fn vectors_and_partials_never_stripe() {
        let cfg = cfg_with_delta();
        let vec_decl = decl(
            StateType::Vector,
            Distribution::Partitioned {
                dim: PartitionDim::Row,
            },
        );
        assert_eq!(cell_layout(&cfg, &vec_decl, None).0, 1);
        let partial = decl(StateType::Table, Distribution::Partial);
        assert_eq!(cell_layout(&cfg, &partial, None).0, 1);
    }
}

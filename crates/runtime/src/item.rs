//! Data items flowing on dataflow edges.

use std::sync::Arc;
use std::time::Instant;

use bytes::BytesMut;
use sdg_checkpoint::buffer::{BufferedItem, BufferedPayload};
use sdg_common::codec::{write_varint, Codec, Reader};
use sdg_common::error::SdgResult;
use sdg_common::ids::EdgeId;
use sdg_common::time::ScalarTs;
use sdg_common::value::Record;

/// Multiplier for encoding `(edge, source replica)` into a dedupe lane.
///
/// Each producer instance owns its own strictly increasing timestamps, so
/// duplicate detection must be scoped to the `(edge, producer replica)`
/// pair. Lanes embed the replica in the low bits of a synthetic [`EdgeId`].
pub const LANE_STRIDE: u32 = 1024;

/// Computes the dedupe lane for items produced by `replica` on `edge`.
///
/// # Panics
///
/// Panics if `replica >= LANE_STRIDE` (the runtime caps instances at 1024).
pub fn lane(edge: EdgeId, replica: u32) -> EdgeId {
    assert!(replica < LANE_STRIDE, "replica {replica} out of lane range");
    EdgeId(edge.raw() * LANE_STRIDE + replica)
}

/// One data item on one dataflow edge.
#[derive(Debug, Clone)]
pub struct Item {
    /// The edge the item travels on.
    pub edge: EdgeId,
    /// Producer replica index (for the dedupe lane).
    pub src_replica: u32,
    /// Producer-assigned scalar timestamp on `(edge, src_replica)`.
    pub ts: ScalarTs,
    /// Correlation id of the originating external request.
    pub corr: u64,
    /// For gathers: number of fragments the barrier must collect
    /// (stamped by the broadcast dispatcher, 1 otherwise).
    pub expect: u32,
    /// The live variables crossing the edge. Refcounted so broadcast
    /// fan-out and output-buffer logging share one allocation; mutating
    /// paths (gather/assemble) use `Arc::make_mut` for copy-on-write.
    pub payload: Arc<Record>,
    /// Submission time of the originating request, for latency measurement.
    /// `None` for replayed items.
    pub submitted_at: Option<Instant>,
}

impl Item {
    /// Returns the item's dedupe lane.
    pub fn lane(&self) -> EdgeId {
        lane(self.edge, self.src_replica)
    }

    /// Encodes the replay-relevant parts (corr, expect, payload) for output
    /// buffering. The timestamp is stored alongside by the buffer itself.
    pub fn encode_payload(&self) -> Vec<u8> {
        // Pre-size from the payload's approximate footprint so typical
        // items encode without growth reallocations.
        let mut buf = BytesMut::with_capacity(self.payload.approx_size() + 16);
        self.encode_payload_to(&mut buf);
        buf.to_vec()
    }

    /// [`Item::encode_payload`] through a reusable scratch buffer.
    ///
    /// The scratch is cleared, the item is encoded into it, and the encoded
    /// bytes are copied out. Workers keep one scratch per outgoing edge so
    /// steady-state encoding never grows a fresh allocation buffer.
    pub fn encode_payload_into(&self, scratch: &mut BytesMut) -> Vec<u8> {
        scratch.clear();
        self.encode_payload_to(scratch);
        scratch[..].to_vec()
    }

    fn encode_payload_to(&self, buf: &mut BytesMut) {
        write_varint(buf, self.corr);
        write_varint(buf, u64::from(self.expect));
        self.payload.encode(buf);
    }

    /// Rebuilds an item from buffered bytes for replay.
    pub fn decode_payload(
        edge: EdgeId,
        src_replica: u32,
        ts: ScalarTs,
        bytes: &[u8],
    ) -> SdgResult<Item> {
        let mut r = Reader::new(bytes);
        let corr = r.read_varint()?;
        let expect = r.read_varint()? as u32;
        let payload = Record::decode(&mut r)?;
        Ok(Item {
            edge,
            src_replica,
            ts,
            corr,
            expect,
            payload: Arc::new(payload),
            submitted_at: None,
        })
    }

    /// Rebuilds an item from a buffered (two-state) entry for replay.
    ///
    /// `Live` payloads are re-sent with zero decode — the buffered `Arc` is
    /// the item; only `Encoded` payloads (restored from a checkpoint or
    /// logged by the eager baseline) go through the wire codec.
    pub fn from_buffered(
        edge: EdgeId,
        src_replica: u32,
        buffered: BufferedItem,
    ) -> SdgResult<Item> {
        match buffered.payload {
            BufferedPayload::Live {
                corr,
                expect,
                payload,
            } => Ok(Item {
                edge,
                src_replica,
                ts: buffered.ts,
                corr,
                expect,
                payload,
                submitted_at: None,
            }),
            BufferedPayload::Encoded(bytes) => {
                Item::decode_payload(edge, src_replica, buffered.ts, &bytes)
            }
        }
    }

    /// Approximate encoded size (used for buffer accounting), computed
    /// arithmetically from the record's footprint — no throwaway encode.
    pub fn approx_size(&self) -> usize {
        self.payload.approx_size() + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdg_common::record;
    use sdg_common::value::Value;

    #[test]
    fn lanes_are_disjoint_per_replica_and_edge() {
        assert_ne!(lane(EdgeId(1), 0), lane(EdgeId(1), 1));
        assert_ne!(lane(EdgeId(1), 0), lane(EdgeId(2), 0));
        // Adjacent edges never collide while replicas stay under the stride.
        assert_ne!(lane(EdgeId(1), LANE_STRIDE - 1), lane(EdgeId(2), 0));
    }

    #[test]
    #[should_panic(expected = "out of lane range")]
    fn oversized_replica_panics() {
        lane(EdgeId(0), LANE_STRIDE);
    }

    #[test]
    fn payload_roundtrips_through_buffering() {
        let item = Item {
            edge: EdgeId(3),
            src_replica: 2,
            ts: 77,
            corr: 123,
            expect: 4,
            payload: Arc::new(
                record! {"user" => Value::Int(9), "row" => Value::List(vec![Value::Float(0.5)])},
            ),
            submitted_at: Some(Instant::now()),
        };
        let bytes = item.encode_payload();
        let back = Item::decode_payload(EdgeId(3), 2, 77, &bytes).unwrap();
        assert_eq!(back.corr, 123);
        assert_eq!(back.expect, 4);
        assert_eq!(back.payload, item.payload);
        assert_eq!(back.ts, 77);
        assert_eq!(back.lane(), item.lane());
        // Replayed items carry no submission time: their latency is not a
        // client-visible latency.
        assert!(back.submitted_at.is_none());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Item::decode_payload(EdgeId(0), 0, 1, &[0xff, 0xff]).is_err());
    }

    #[test]
    fn scratch_encoding_matches_fresh_encoding() {
        let mut scratch = BytesMut::new();
        for corr in 0..3u64 {
            let item = Item {
                edge: EdgeId(1),
                src_replica: 0,
                ts: corr + 1,
                corr,
                expect: 1,
                payload: Arc::new(record! {"k" => Value::Int(corr as i64), "v" => Value::str("x")}),
                submitted_at: None,
            };
            assert_eq!(
                item.encode_payload_into(&mut scratch),
                item.encode_payload()
            );
        }
    }

    #[test]
    fn from_buffered_live_is_zero_decode() {
        let payload = Arc::new(record! {"k" => Value::Int(1)});
        let buffered = BufferedItem::live(9, 42, 3, Arc::clone(&payload));
        let item = Item::from_buffered(EdgeId(2), 1, buffered).unwrap();
        assert_eq!(item.ts, 9);
        assert_eq!(item.corr, 42);
        assert_eq!(item.expect, 3);
        assert!(item.submitted_at.is_none());
        // The replayed item shares the buffered allocation — no decode, no
        // clone.
        assert!(Arc::ptr_eq(&item.payload, &payload));
    }

    #[test]
    fn from_buffered_encoded_falls_back_to_the_codec() {
        let original = Item {
            edge: EdgeId(2),
            src_replica: 1,
            ts: 9,
            corr: 42,
            expect: 3,
            payload: Arc::new(record! {"k" => Value::Int(1), "v" => Value::str("x")}),
            submitted_at: None,
        };
        let buffered = BufferedItem::encoded(9, original.encode_payload());
        let item = Item::from_buffered(EdgeId(2), 1, buffered).unwrap();
        assert_eq!(item.corr, 42);
        assert_eq!(item.expect, 3);
        assert_eq!(item.payload, original.payload);

        let garbage = BufferedItem::encoded(1, vec![0xff, 0xff]);
        assert!(Item::from_buffered(EdgeId(0), 0, garbage).is_err());
    }

    #[test]
    fn approx_size_tracks_the_encoded_size_within_tolerance() {
        // The arithmetic estimate replaced a throwaway encode; pin it to
        // the old (encoded-length) value so accounting never drifts wildly.
        let payloads = [
            record! {"k" => Value::Int(7)},
            record! {"user" => Value::Int(9), "name" => Value::str("a-typical-string-value")},
            record! {"row" => Value::List(vec![Value::Float(0.5); 32])},
            record! {
                "neg" => Value::Int(-1),
                "nested" => Value::List(vec![Value::Str("abc".into()), Value::Bool(true)]),
            },
        ];
        for payload in payloads {
            let item = Item {
                edge: EdgeId(0),
                src_replica: 0,
                ts: 1,
                corr: 1,
                expect: 1,
                payload: Arc::new(payload),
                submitted_at: None,
            };
            let old = item.encode_payload().len() + 16;
            let new = item.approx_size();
            let ratio = new as f64 / old as f64;
            assert!(
                (0.25..=4.0).contains(&ratio),
                "approx_size {new} drifted from encoded size {old} (ratio {ratio:.2})"
            );
        }
    }
}

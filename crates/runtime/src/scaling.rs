//! Reactive runtime parallelism (§3.3 "Runtime parallelism and stragglers").
//!
//! The monitor samples the queue depth of every task's instances. A task
//! whose queues stay saturated is a bottleneck — because its TEs are
//! computationally expensive, or because one of its instances sits on a
//! straggler node and drains slowly. In both cases the reaction is the
//! same (the paper's reactive approach): add a TE instance, creating new
//! partitioned or partial SE instances as required.
//!
//! Scale-in is the symmetric path: a task whose queues stay *below* the
//! low watermark for `idle_patience` consecutive samples has its newest
//! instance removed (down to `min_instances`), live-migrating its state
//! shard or partial aggregate into the survivors via the reconfiguration
//! control plane ([`crate::reconfig`]).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use sdg_common::ids::TaskId;
use sdg_common::obs::EventKind;

use crate::deploy::Inner;

/// Which way a scale event went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDirection {
    /// An instance was added.
    Out,
    /// An instance was removed (state live-migrated into survivors).
    In,
}

/// One scale event, for the Fig. 10 timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleEvent {
    /// Offset from deployment start.
    pub at: Duration,
    /// The task that was scaled.
    pub task: TaskId,
    /// Instance count after scaling.
    pub instances: u32,
    /// The node the new instance was placed on (scale-out), or the node
    /// the removed instance ran on (scale-in).
    pub node: u32,
    /// Which way the event went.
    pub direction: ScaleDirection,
}

/// A stop-aware park: controller threads wait on the condvar instead of
/// sleeping, so `Deployment::shutdown` can wake them immediately instead
/// of letting them sleep out their check interval.
///
/// The wake-up protocol is lost-wakeup-free: `notify` acquires the mutex
/// after the stop flag is set, so a waiter either sees the flag before
/// parking or is parked (holding a ticket on the condvar) when the notify
/// lands.
#[derive(Debug, Default)]
pub(crate) struct StopWait {
    mu: Mutex<()>,
    cv: Condvar,
}

impl StopWait {
    pub(crate) fn new() -> Self {
        StopWait::default()
    }

    /// Parks for up to `period`, returning early — with `true` — as soon
    /// as `stop` is set and [`StopWait::notify`] fires. Returns `false`
    /// when the period elapsed without a stop.
    pub(crate) fn wait(&self, stop: &AtomicBool, period: Duration) -> bool {
        let deadline = Instant::now() + period;
        let mut guard = self.mu.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if stop.load(Ordering::Acquire) {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            guard = self
                .cv
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    /// Wakes every parked waiter. Call after setting the stop flag.
    pub(crate) fn notify(&self) {
        let _guard = self.mu.lock().unwrap_or_else(|e| e.into_inner());
        self.cv.notify_all();
    }
}

/// Runs the bottleneck monitor until the deployment stops.
pub(crate) fn run_scaling_monitor(inner: &Inner) {
    let cfg = inner.cfg.scaling.clone();
    let capacity = inner.cfg.channel_capacity as f64;
    let mut streaks: std::collections::HashMap<TaskId, u32> = std::collections::HashMap::new();
    let mut idle_streaks: std::collections::HashMap<TaskId, u32> = std::collections::HashMap::new();

    loop {
        if inner
            .stop_wait()
            .wait(inner.stop_flag(), cfg.check_interval)
        {
            break;
        }
        // Find the most saturated task this tick. A task whose *downstream*
        // consumers are also saturated is merely backpressured — the real
        // bottleneck is further down the pipeline, so skip it.
        let fill_of = |task: TaskId| -> f64 {
            let targets = inner.targets[&task].read();
            if targets.is_empty() {
                return 0.0;
            }
            let depth: usize = targets.iter().map(|s| s.len()).sum();
            depth as f64 / (capacity * targets.len() as f64)
        };
        let mut worst: Option<(TaskId, f64)> = None;
        for task in &inner.sdg.tasks {
            let fill = fill_of(task.id);
            let backpressured = inner
                .sdg
                .flows_from(task.id)
                .iter()
                .any(|f| fill_of(f.to) >= cfg.high_watermark / 2.0);
            if fill >= cfg.high_watermark && !backpressured {
                let streak = streaks.entry(task.id).or_insert(0);
                *streak += 1;
                let instances = inner.targets[&task.id].read().len() as u32;
                if *streak >= cfg.patience
                    && instances < cfg.max_instances
                    && worst.map(|(_, w)| fill > w).unwrap_or(true)
                {
                    worst = Some((task.id, fill));
                }
            } else {
                streaks.insert(task.id, 0);
            }
        }
        if let Some((task, fill)) = worst {
            if let Ok(decl) = inner.sdg.task(task) {
                inner.obs.record_event(EventKind::BottleneckDetected {
                    task: decl.name.clone(),
                    fill,
                });
            }
            if crate::reconfig::scale_out(inner, task).is_ok() {
                streaks.insert(task, 0);
            }
            // A growing pipeline is not idle: keep the idle streaks cold so
            // scale-out and scale-in never fight within one window.
            idle_streaks.clear();
            continue;
        }

        // Scale-in: a task that has sat below the low watermark for
        // `idle_patience` consecutive samples releases its newest instance
        // (down to `min_instances`). At most one task shrinks per tick.
        let mut idlest: Option<(TaskId, f64)> = None;
        for task in &inner.sdg.tasks {
            let fill = fill_of(task.id);
            let instances = inner.targets[&task.id].read().len() as u32;
            if fill <= cfg.low_watermark && instances > cfg.min_instances {
                let streak = idle_streaks.entry(task.id).or_insert(0);
                *streak += 1;
                if *streak >= cfg.idle_patience && idlest.map(|(_, f)| fill < f).unwrap_or(true) {
                    idlest = Some((task.id, fill));
                }
            } else {
                idle_streaks.insert(task.id, 0);
            }
        }
        if let Some((task, _)) = idlest {
            // Reset all idle streaks either way: a repartition changes the
            // whole group's instance counts, and a refused scale-in (local
            // state, uncertified merge) should not retry every tick.
            idle_streaks.clear();
            let _ = crate::reconfig::scale_in(inner, task);
        }
    }
}

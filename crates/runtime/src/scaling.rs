//! Reactive runtime parallelism (§3.3 "Runtime parallelism and stragglers").
//!
//! The monitor samples the queue depth of every task's instances. A task
//! whose queues stay saturated is a bottleneck — because its TEs are
//! computationally expensive, or because one of its instances sits on a
//! straggler node and drains slowly. In both cases the reaction is the
//! same (the paper's reactive approach): add a TE instance, creating new
//! partitioned or partial SE instances as required.

use std::sync::atomic::Ordering;
use std::time::Duration;

use sdg_common::ids::TaskId;
use sdg_common::obs::EventKind;

use crate::deploy::Inner;

/// One scale-out event, for the Fig. 10 timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleEvent {
    /// Offset from deployment start.
    pub at: Duration,
    /// The task that was scaled.
    pub task: TaskId,
    /// Instance count after scaling.
    pub instances: u32,
    /// The node the new instance was placed on.
    pub node: u32,
}

/// Runs the bottleneck monitor until the deployment stops.
pub(crate) fn run_scaling_monitor(inner: &Inner) {
    let cfg = inner.cfg.scaling.clone();
    let capacity = inner.cfg.channel_capacity as f64;
    let mut streaks: std::collections::HashMap<TaskId, u32> = std::collections::HashMap::new();

    while !stopped(inner) {
        std::thread::sleep(cfg.check_interval);
        // Find the most saturated task this tick. A task whose *downstream*
        // consumers are also saturated is merely backpressured — the real
        // bottleneck is further down the pipeline, so skip it.
        let fill_of = |task: TaskId| -> f64 {
            let targets = inner.targets[&task].read();
            if targets.is_empty() {
                return 0.0;
            }
            let depth: usize = targets.iter().map(|s| s.len()).sum();
            depth as f64 / (capacity * targets.len() as f64)
        };
        let mut worst: Option<(TaskId, f64)> = None;
        for task in &inner.sdg.tasks {
            let fill = fill_of(task.id);
            let backpressured = inner
                .sdg
                .flows_from(task.id)
                .iter()
                .any(|f| fill_of(f.to) >= cfg.high_watermark / 2.0);
            if fill >= cfg.high_watermark && !backpressured {
                let streak = streaks.entry(task.id).or_insert(0);
                *streak += 1;
                let instances = inner.targets[&task.id].read().len() as u32;
                if *streak >= cfg.patience
                    && instances < cfg.max_instances
                    && worst.map(|(_, w)| fill > w).unwrap_or(true)
                {
                    worst = Some((task.id, fill));
                }
            } else {
                streaks.insert(task.id, 0);
            }
        }
        if let Some((task, fill)) = worst {
            if let Ok(decl) = inner.sdg.task(task) {
                inner.obs.record_event(EventKind::BottleneckDetected {
                    task: decl.name.clone(),
                    fill,
                });
            }
            if inner.scale_task(task).is_ok() {
                streaks.insert(task, 0);
            }
        }
    }
}

fn stopped(inner: &Inner) -> bool {
    inner.stop_flag().load(Ordering::Acquire)
}

//! TE instance workers: the pipelined processing loops.
//!
//! Each TE instance is one worker thread consuming a bounded channel.
//! Producers dispatch directly into consumer channels (no scheduler), so a
//! full channel applies backpressure upstream — this is the paper's fully
//! pipelined execution (§3.1).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use sdg_checkpoint::buffer::OutputBuffer;
use sdg_checkpoint::cell::StateCell;
use sdg_common::error::{SdgError, SdgResult};
use sdg_common::ids::EdgeId;
use sdg_common::metrics::Histogram;
use sdg_common::obs::TaskInstruments;
use sdg_common::time::TsGen;
use sdg_common::value::{Record, Value};
use sdg_graph::model::{Dispatch, TaskCode, TaskContext};

use crate::interp::{run_te, Effects};
use crate::item::{lane, Item};

/// Messages delivered to a worker.
#[derive(Debug)]
pub enum WorkerMsg {
    /// A data item to process.
    Item(Item),
    /// Graceful stop.
    Stop,
}

/// The shared list of consumer-instance senders for one task.
pub type Targets = Arc<RwLock<Vec<Sender<WorkerMsg>>>>;

/// Key of one upstream output buffer: `(edge, producer replica, consumer
/// replica)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferKey {
    /// Dataflow edge (or ingest lane edge).
    pub edge: EdgeId,
    /// Producer replica.
    pub src: u32,
    /// Consumer replica the item was sent to.
    pub dst: u32,
}

/// Registry of all upstream output buffers in a deployment.
#[derive(Debug, Default)]
pub struct BufferRegistry {
    buffers: Mutex<HashMap<BufferKey, Arc<Mutex<OutputBuffer>>>>,
    /// Maximum items kept per buffer for consumers that never checkpoint
    /// (stateless tasks); bounds the upstream-backup horizon.
    pub stateless_cap: usize,
}

impl BufferRegistry {
    /// Creates a registry with the given stateless-consumer cap.
    pub fn new(stateless_cap: usize) -> Self {
        BufferRegistry {
            buffers: Mutex::new(HashMap::new()),
            stateless_cap,
        }
    }

    /// Returns (creating on demand) the buffer for `key`.
    pub fn get(&self, key: BufferKey) -> Arc<Mutex<OutputBuffer>> {
        self.buffers
            .lock()
            .entry(key)
            .or_insert_with(|| Arc::new(Mutex::new(OutputBuffer::new())))
            .clone()
    }

    /// Returns all buffers feeding consumer replica `dst` on `edge`.
    pub fn buffers_into(&self, edge: EdgeId, dst: u32) -> Vec<(u32, Arc<Mutex<OutputBuffer>>)> {
        self.buffers
            .lock()
            .iter()
            .filter(|(k, _)| k.edge == edge && k.dst == dst)
            .map(|(k, b)| (k.src, Arc::clone(b)))
            .collect()
    }

    /// Trims the buffer feeding `(edge, src → dst)` below `watermark`.
    pub fn trim(&self, key: BufferKey, watermark: u64) {
        if let Some(buf) = self.buffers.lock().get(&key) {
            buf.lock().trim(watermark);
        }
    }

    /// Total buffered bytes across all buffers (for tests and metrics).
    pub fn total_bytes(&self) -> usize {
        self.buffers
            .lock()
            .values()
            .map(|b| b.lock().buffered_bytes())
            .sum()
    }
}

/// One outgoing edge of a worker, with its dispatch machinery.
pub struct OutEdge {
    /// Edge id.
    pub edge: EdgeId,
    /// Dispatch semantics.
    pub dispatch: Dispatch,
    /// Live variables to project onto the edge.
    pub live_vars: Vec<String>,
    /// Consumer instance senders (shared; scaling mutates it).
    pub targets: Targets,
    /// Timestamp generator per `(this producer instance, edge)`.
    pub ts: TsGen,
    /// Round-robin cursor for one-to-any dispatch.
    pub rr: usize,
    /// Buffer registry for upstream backup.
    pub buffers: Arc<BufferRegistry>,
    /// Whether to record items in output buffers (fault tolerance on).
    pub buffered: bool,
}

impl OutEdge {
    /// Dispatches `payload` according to the edge semantics.
    pub fn send(
        &mut self,
        src_replica: u32,
        payload: &Record,
        corr: u64,
        upstream_expect: u32,
        submitted_at: Option<Instant>,
    ) -> SdgResult<()> {
        let projected = if self.live_vars.is_empty() {
            payload.clone()
        } else {
            payload.project(&self.live_vars)
        };
        let targets_arc = Arc::clone(&self.targets);
        let targets = targets_arc.read();
        let n = targets.len();
        if n == 0 {
            return Err(SdgError::Runtime(format!(
                "edge {} has no consumer instances",
                self.edge
            )));
        }
        match &self.dispatch {
            Dispatch::Partitioned { key } => {
                let key_value = projected.require(key)?.to_key()?;
                let idx = (key_value.stable_hash() % n as u64) as usize;
                self.send_one(&targets, idx, src_replica, projected, corr, 1, submitted_at)
            }
            Dispatch::OneToAny => {
                // Join-shortest-queue: slow (straggler) instances naturally
                // receive less work; ties fall back to round-robin.
                let start = self.rr % n;
                self.rr = self.rr.wrapping_add(1);
                let mut idx = start;
                let mut best = usize::MAX;
                for off in 0..n {
                    let candidate = (start + off) % n;
                    let depth = targets[candidate].len();
                    if depth < best {
                        best = depth;
                        idx = candidate;
                    }
                    if depth == 0 {
                        break;
                    }
                }
                self.send_one(&targets, idx, src_replica, projected, corr, 1, submitted_at)
            }
            Dispatch::AllToOne { .. } => {
                // The gather consumer is a single instance. The fragment
                // count equals the fan-out of the broadcast that fed this
                // producer, which travelled on the input item.
                self.send_one(
                    &targets,
                    0,
                    src_replica,
                    projected,
                    corr,
                    upstream_expect,
                    submitted_at,
                )
            }
            Dispatch::OneToAll => {
                let ts = self.ts.tick();
                let expect = n as u32;
                for (idx, target) in targets.iter().enumerate() {
                    let item = Item {
                        edge: self.edge,
                        src_replica,
                        ts,
                        corr,
                        expect,
                        payload: projected.clone(),
                        submitted_at,
                    };
                    if self.buffered {
                        let key = BufferKey {
                            edge: self.edge,
                            src: src_replica,
                            dst: idx as u32,
                        };
                        self.buffers.get(key).lock().push(ts, item.encode_payload());
                    }
                    target
                        .send(WorkerMsg::Item(item))
                        .map_err(|_| SdgError::Runtime("consumer channel closed".into()))?;
                }
                Ok(())
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn send_one(
        &mut self,
        targets: &[Sender<WorkerMsg>],
        idx: usize,
        src_replica: u32,
        payload: Record,
        corr: u64,
        expect: u32,
        submitted_at: Option<Instant>,
    ) -> SdgResult<()> {
        let ts = self.ts.tick();
        let item = Item {
            edge: self.edge,
            src_replica,
            ts,
            corr,
            expect,
            payload,
            submitted_at,
        };
        if self.buffered {
            let key = BufferKey {
                edge: self.edge,
                src: src_replica,
                dst: idx as u32,
            };
            self.buffers.get(key).lock().push(ts, item.encode_payload());
        }
        targets[idx]
            .send(WorkerMsg::Item(item))
            .map_err(|_| SdgError::Runtime("consumer channel closed".into()))
    }
}

/// An event on the SDG's external output.
#[derive(Debug, Clone)]
pub struct OutputEvent {
    /// Correlation id of the originating request.
    pub corr: u64,
    /// Emitted value.
    pub value: Value,
    /// Client-visible latency (absent for replayed duplicates).
    pub latency: Option<Duration>,
}

/// Everything one worker thread needs.
pub struct Worker {
    /// Task name (diagnostics).
    pub name: String,
    /// Replica index of this instance.
    pub replica: u32,
    /// Executable payload.
    pub code: TaskCode,
    /// Local SE instance, when the task has an access edge.
    pub cell: Option<Arc<StateCell>>,
    /// Outgoing edges.
    pub outs: Vec<OutEdge>,
    /// External output sink.
    pub sink: Sender<OutputEvent>,
    /// Gather state for all-to-one input edges: `corr → fragments by
    /// producer replica`.
    pub pending_gathers: HashMap<u64, HashMap<u32, Item>>,
    /// Collect variable of the inbound gather edge, if any.
    pub gather_var: Option<String>,
    /// Synthetic per-item CPU cost in nanoseconds (scaled by node speed).
    pub work_ns: u64,
    /// Hosting node's speed factor.
    pub speed: f64,
    /// Cleared when the hosting node "fails": the worker then discards
    /// items, simulating loss of in-flight data.
    pub alive: Arc<AtomicBool>,
    /// Per-task instruments, shared with the deployment's registry: items
    /// in/out, processed, errors, gather waits, service time, latency.
    pub obs: Arc<TaskInstruments>,
    /// Deployment-wide end-to-end latency histogram.
    pub e2e: Arc<Histogram>,
    /// Dedupe switch: duplicate filtering needs a cell; stateless tasks
    /// pass everything through.
    pub dedupe: bool,
    /// Global count of in-flight items, used by scale/drain barriers.
    pub in_flight: Arc<AtomicU64>,
    /// Accumulated service-time debt not yet slept (see `busy_work`).
    pub work_debt: Duration,
}

impl Worker {
    /// Runs the worker loop until `Stop` or channel disconnect.
    pub fn run(mut self, rx: Receiver<WorkerMsg>) {
        while let Ok(msg) = rx.recv() {
            match msg {
                WorkerMsg::Stop => break,
                WorkerMsg::Item(item) => {
                    if !self.alive.load(Ordering::Acquire) {
                        // Simulated dead node: in-flight items are lost.
                        continue;
                    }
                    self.handle(item);
                }
            }
        }
    }

    fn handle(&mut self, item: Item) {
        self.obs.items_in.inc();
        // Gather barriers assemble one logical item from `expect` fragments.
        let item = if let Some(var) = self.gather_var.clone() {
            match self.assemble(item, &var) {
                Some(merged) => merged,
                None => {
                    // Barrier still waiting on sibling fragments.
                    self.obs.gather_waits.inc();
                    return;
                }
            }
        } else {
            item
        };
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        let t0 = Instant::now();
        let r = self.process(&item);
        self.obs.service.record(t0.elapsed().as_nanos() as u64);
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
        if r.is_err() {
            self.obs.errors.inc();
        }
    }

    /// Collects fragments; returns the merged item once all arrived.
    fn assemble(&mut self, item: Item, collect_var: &str) -> Option<Item> {
        let corr = item.corr;
        let expect = item.expect.max(1) as usize;
        let slot = self.pending_gathers.entry(corr).or_default();
        slot.insert(item.src_replica, item);
        if slot.len() < expect {
            return None;
        }
        let mut fragments = self.pending_gathers.remove(&corr)?;
        // Deterministic order: by producer replica.
        let mut replicas: Vec<u32> = fragments.keys().copied().collect();
        replicas.sort_unstable();
        let first = replicas[0];
        let base = fragments.remove(&first)?;
        let mut collected: Vec<Value> = Vec::with_capacity(replicas.len());
        collected.push(
            base.payload
                .get(collect_var)
                .cloned()
                .unwrap_or(Value::Null),
        );
        let mut submitted_at = base.submitted_at;
        for r in &replicas[1..] {
            let frag = fragments.remove(r)?;
            collected.push(
                frag.payload
                    .get(collect_var)
                    .cloned()
                    .unwrap_or(Value::Null),
            );
            submitted_at = submitted_at.or(frag.submitted_at);
        }
        let mut payload = base.payload;
        payload.set(collect_var, Value::List(collected));
        Some(Item {
            edge: base.edge,
            src_replica: first,
            ts: base.ts,
            corr: base.corr,
            expect: 1,
            payload,
            submitted_at,
        })
    }

    fn process(&mut self, item: &Item) -> SdgResult<()> {
        if self.work_ns > 0 {
            // Accumulate service time and sleep it in ≥1 ms slices: short
            // sleeps overshoot badly (timer slack), which would distort the
            // modelled service rate.
            self.work_debt +=
                Duration::from_nanos((self.work_ns as f64 / self.speed.max(0.01)) as u64);
            if self.work_debt >= Duration::from_millis(1) {
                busy_work(self.work_debt);
                self.work_debt = Duration::ZERO;
            }
        }
        let effects = match (&self.cell, self.dedupe) {
            (Some(cell), true) => {
                let lane = lane(item.edge, item.src_replica);
                match cell.apply(lane, item.ts, |store| {
                    execute(&self.code, &item.payload, Some(store), self.replica)
                }) {
                    None => {
                        // Duplicate from a replay: already applied.
                        self.obs.processed.inc();
                        return Ok(());
                    }
                    Some(r) => r?,
                }
            }
            (Some(cell), false) => cell.with(|inner| {
                execute(
                    &self.code,
                    &item.payload,
                    Some(&mut inner.store),
                    self.replica,
                )
            })?,
            (None, _) => execute(&self.code, &item.payload, None, self.replica)?,
        };
        self.obs.processed.inc();
        self.obs.emits.add(effects.emits.len() as u64);
        for value in effects.emits {
            let latency = item.submitted_at.map(|t| t.elapsed());
            if let Some(l) = latency {
                let ns = l.as_nanos() as u64;
                self.obs.latency.record(ns);
                self.e2e.record(ns);
            }
            let event = OutputEvent {
                corr: item.corr,
                value,
                latency,
            };
            let _ = self.sink.send(event);
        }
        self.obs
            .items_out
            .add((effects.forwards.len() * self.outs.len()) as u64);
        for record in &effects.forwards {
            for out in &mut self.outs {
                out.send(
                    self.replica,
                    record,
                    item.corr,
                    item.expect,
                    item.submitted_at,
                )?;
            }
        }
        Ok(())
    }
}

/// Executes a task's code against one input.
pub fn execute(
    code: &TaskCode,
    input: &Record,
    state: Option<&mut sdg_state::store::StateStore>,
    replica: u32,
) -> SdgResult<Effects> {
    match code {
        TaskCode::Passthrough => Ok(Effects {
            forwards: vec![input.clone()],
            emits: Vec::new(),
        }),
        TaskCode::Interpreted(te) => run_te(te, input, state),
        TaskCode::Native(task) => {
            let mut ctx = NativeCtx {
                state,
                effects: Effects::default(),
                replica,
            };
            task.process(input.clone(), &mut ctx)?;
            Ok(ctx.effects)
        }
    }
}

struct NativeCtx<'a> {
    state: Option<&'a mut sdg_state::store::StateStore>,
    effects: Effects,
    replica: u32,
}

impl TaskContext for NativeCtx<'_> {
    fn state(&mut self) -> Option<&mut sdg_state::store::StateStore> {
        self.state.as_deref_mut()
    }

    fn emit(&mut self, record: Record) {
        // Native emissions carry the record's `value` field, or the whole
        // record as a list when absent.
        let value = record
            .get("value")
            .cloned()
            .unwrap_or_else(|| Value::List(record.iter().map(|(_, v)| v.clone()).collect()));
        self.effects.emits.push(value);
    }

    fn forward(&mut self, record: Record) {
        self.effects.forwards.push(record);
    }

    fn replica(&self) -> u32 {
        self.replica
    }
}

/// Sleeps for `d`, simulating the per-item service time of a TE.
///
/// Sleeping (not spinning) is deliberate: each simulated node is a thread,
/// and on a host with fewer cores than simulated nodes, spinning would
/// serialise the whole cluster. Sleeping lets node service times overlap
/// the way independent machines do, so scaling experiments behave like the
/// cluster they model regardless of the host's core count.
pub fn busy_work(d: Duration) {
    if d.is_zero() {
        return;
    }
    std::thread::sleep(d);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdg_common::record;

    #[test]
    fn buffer_registry_creates_and_trims() {
        let reg = BufferRegistry::new(1000);
        let key = BufferKey {
            edge: EdgeId(1),
            src: 0,
            dst: 2,
        };
        reg.get(key).lock().push(1, vec![1, 2, 3]);
        reg.get(key).lock().push(2, vec![4]);
        assert_eq!(reg.total_bytes(), 4);
        let into = reg.buffers_into(EdgeId(1), 2);
        assert_eq!(into.len(), 1);
        assert_eq!(into[0].0, 0);
        reg.trim(key, 1);
        assert_eq!(reg.total_bytes(), 1);
        assert!(reg.buffers_into(EdgeId(1), 9).is_empty());
    }

    #[test]
    fn passthrough_execute_forwards_input() {
        let rec = record! {"a" => Value::Int(1)};
        let fx = execute(&TaskCode::Passthrough, &rec, None, 0).unwrap();
        assert_eq!(fx.forwards, vec![rec]);
        assert!(fx.emits.is_empty());
    }

    #[test]
    fn busy_work_spins_approximately() {
        let t0 = Instant::now();
        busy_work(Duration::from_micros(50));
        assert!(t0.elapsed() >= Duration::from_micros(45));
        let t0 = Instant::now();
        busy_work(Duration::from_millis(2));
        assert!(t0.elapsed() >= Duration::from_millis(2));
        busy_work(Duration::ZERO); // Must not panic or sleep.
    }

    #[test]
    fn native_ctx_emit_prefers_value_field() {
        struct Echo;
        impl sdg_graph::model::NativeTask for Echo {
            fn process(&self, input: Record, ctx: &mut dyn TaskContext) -> SdgResult<()> {
                ctx.emit(input.clone());
                ctx.forward(input);
                assert_eq!(ctx.replica(), 3);
                Ok(())
            }
        }
        let code = TaskCode::Native(Arc::new(Echo));
        let rec = record! {"value" => Value::Int(42), "other" => Value::Int(1)};
        let fx = execute(&code, &rec, None, 3).unwrap();
        assert_eq!(fx.emits, vec![Value::Int(42)]);
        assert_eq!(fx.forwards.len(), 1);
    }
}

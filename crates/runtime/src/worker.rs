//! TE instance workers: the pipelined processing loops.
//!
//! Each TE instance is one serial consumer of a bounded mailbox: a
//! dedicated worker thread under the `Threads` scheduler, or a cooperative
//! actor multiplexed onto a fixed worker pool under `Pool` (see
//! [`crate::sched`]). Producers dispatch directly into consumer mailboxes
//! (no central scheduler), so a full mailbox applies backpressure
//! upstream — this is the paper's fully pipelined execution (§3.1).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::BytesMut;
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};
use sdg_checkpoint::buffer::{BufferedItem, OutputBuffer};
use sdg_checkpoint::cell::StateCell;
use sdg_common::error::{SdgError, SdgResult};
use sdg_common::ids::{EdgeId, TaskId};
use sdg_common::metrics::Histogram;
use sdg_common::obs::TaskInstruments;
use sdg_common::time::TsGen;
use sdg_common::value::{Record, Value};
use sdg_graph::model::{Dispatch, NativeTask, TaskCode, TaskContext};
use sdg_ir::te_compiled::CompiledTe;

use crate::compile::{run_compiled, Scratch};
use crate::config::{BatchConfig, ExecEngine};
use crate::fault::{FailureHub, FaultAction, FaultTrigger, PanicProbe};
use crate::interp::{run_te, Effects};
use crate::item::{lane, Item};

/// Messages delivered to a worker.
#[derive(Debug)]
pub enum WorkerMsg {
    /// A data item to process.
    Item(Item),
    /// A micro-batch of items, processed in order. One channel message —
    /// producers coalesce per destination to amortise channel signalling
    /// (see [`crate::config::BatchConfig`]).
    Batch(Vec<Item>),
    /// Graceful stop.
    Stop,
}

/// The shared list of consumer-instance senders for one task.
pub type Targets = Arc<RwLock<Vec<MailboxSender>>>;

/// Error returned by [`MailboxSender::send`]: the consumer is gone (its
/// thread exited, or its actor retired), matching a disconnected channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendClosed;

/// One consumer endpoint: where producers hand a [`WorkerMsg`] to a TE
/// instance.
///
/// Under the `Threads` scheduler this is the bounded crossbeam channel of
/// a dedicated worker thread; under `Pool` it is the serial mailbox of a
/// pool-scheduled actor. Either way a full destination applies
/// backpressure — channel sends block the producer thread, mailbox sends
/// suspend the producer actor cooperatively (see [`crate::sched`]).
#[derive(Clone)]
pub enum MailboxSender {
    /// Bounded channel of a dedicated worker thread (`Threads`).
    Thread(Sender<WorkerMsg>),
    /// Serial actor mailbox scheduled on the worker pool (`Pool`).
    Pool(crate::sched::PoolSender),
}

impl MailboxSender {
    /// Delivers `msg`, applying backpressure when the destination is full.
    pub fn send(&self, msg: WorkerMsg) -> Result<(), SendClosed> {
        match self {
            MailboxSender::Thread(tx) => tx.send(msg).map_err(|_| SendClosed),
            MailboxSender::Pool(tx) => tx.send(msg),
        }
    }

    /// Delivers `msg` without ever waiting for mailbox space.
    ///
    /// Recovery replays into freshly spawned instances — and retires scale
    /// victims — while holding the target-list write guards; waiting for
    /// space there could stall every pool worker behind the same guards
    /// and deadlock, so those paths overfill the mailbox instead. A
    /// `Threads` channel keeps its normal send: the dedicated consumer
    /// thread drains independently of the guards.
    pub fn force_send(&self, msg: WorkerMsg) -> Result<(), SendClosed> {
        match self {
            MailboxSender::Thread(tx) => tx.send(msg).map_err(|_| SendClosed),
            MailboxSender::Pool(tx) => tx.force_send(msg),
        }
    }

    /// Messages queued at the destination (join-shortest-queue dispatch,
    /// drain barriers, queue-depth gauges).
    pub fn len(&self) -> usize {
        match self {
            MailboxSender::Thread(tx) => tx.len(),
            MailboxSender::Pool(tx) => tx.len(),
        }
    }

    /// Whether the destination queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a stalled heartbeat epoch can mean a *hung* instance here.
    ///
    /// A dedicated thread owns its loop, so a stalled epoch with queued
    /// input is always suspicious. A pool actor's epoch also stalls while
    /// it is parked `Idle`/`Scheduled` behind busy pool workers or
    /// `Suspended` awaiting send credit — only `Running` means it holds a
    /// pool thread and should be making progress.
    pub(crate) fn hang_candidate(&self) -> bool {
        match self {
            MailboxSender::Thread(_) => true,
            MailboxSender::Pool(tx) => tx.is_running(),
        }
    }
}

/// Key of one upstream output buffer: `(edge, producer replica, consumer
/// replica)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferKey {
    /// Dataflow edge (or ingest lane edge).
    pub edge: EdgeId,
    /// Producer replica.
    pub src: u32,
    /// Consumer replica the item was sent to.
    pub dst: u32,
}

/// A shared handle to one upstream output buffer.
type BufferHandle = Arc<Mutex<OutputBuffer>>;

/// Both registry maps live under one lock so they can never disagree.
#[derive(Debug, Default)]
struct RegistryMaps {
    by_key: HashMap<BufferKey, BufferHandle>,
    /// Secondary index: the buffers feeding each `(edge, consumer replica)`,
    /// as `(src, buffer)` pairs in creation order. Keeps the recovery and
    /// trim paths O(producers of one consumer) instead of a linear scan
    /// over every buffer in the deployment.
    by_consumer: HashMap<(EdgeId, u32), Vec<(u32, BufferHandle)>>,
}

/// Registry of all upstream output buffers in a deployment.
#[derive(Debug, Default)]
pub struct BufferRegistry {
    maps: Mutex<RegistryMaps>,
    /// Aggregate bytes across all buffers, maintained incrementally by the
    /// buffers themselves (see [`OutputBuffer::with_shared`]): the
    /// backpressure gauge reads one atomic instead of locking every buffer.
    bytes: Arc<AtomicUsize>,
    /// Maximum items kept per buffer for consumers that never checkpoint
    /// (stateless tasks); bounds the upstream-backup horizon.
    pub stateless_cap: usize,
}

impl BufferRegistry {
    /// Creates a registry with the given stateless-consumer cap.
    pub fn new(stateless_cap: usize) -> Self {
        BufferRegistry {
            maps: Mutex::new(RegistryMaps::default()),
            bytes: Arc::new(AtomicUsize::new(0)),
            stateless_cap,
        }
    }

    /// Returns (creating on demand) the buffer for `key`.
    pub fn get(&self, key: BufferKey) -> Arc<Mutex<OutputBuffer>> {
        let mut maps = self.maps.lock();
        if let Some(buf) = maps.by_key.get(&key) {
            return Arc::clone(buf);
        }
        let buf = Arc::new(Mutex::new(OutputBuffer::with_shared(Arc::clone(
            &self.bytes,
        ))));
        maps.by_key.insert(key, Arc::clone(&buf));
        maps.by_consumer
            .entry((key.edge, key.dst))
            .or_default()
            .push((key.src, Arc::clone(&buf)));
        buf
    }

    /// Returns all buffers feeding consumer replica `dst` on `edge`.
    pub fn buffers_into(&self, edge: EdgeId, dst: u32) -> Vec<(u32, Arc<Mutex<OutputBuffer>>)> {
        self.maps
            .lock()
            .by_consumer
            .get(&(edge, dst))
            .cloned()
            .unwrap_or_default()
    }

    /// Trims the buffer feeding `(edge, src → dst)` below `watermark`.
    pub fn trim(&self, key: BufferKey, watermark: u64) {
        let buf = self.maps.lock().by_key.get(&key).cloned();
        if let Some(buf) = buf {
            buf.lock().trim(watermark);
        }
    }

    /// Total buffered bytes across all buffers. O(1): the buffers mirror
    /// every accounting change into one shared atomic, so the periodic
    /// gauge refresh never contends on per-buffer locks.
    pub fn total_bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }
}

/// One outgoing edge of a worker, with its dispatch machinery.
///
/// When micro-batching is on (`batch.max_items > 1`), items are assigned
/// their timestamp at enqueue time and parked in a per-destination pending
/// list; a destination's batch flushes as one channel message and one
/// output-buffer lock when it reaches `max_items`, when the linger timer
/// expires (driven by the owning worker's loop), or at shutdown. Pending
/// items are counted in the deployment's `in_flight` gauge so drain
/// barriers ([`crate::Deployment::quiesce`]) observe them.
pub struct OutEdge {
    /// Edge id.
    pub edge: EdgeId,
    /// Dispatch semantics.
    pub dispatch: Dispatch,
    /// Live variables to project onto the edge.
    pub live_vars: Vec<String>,
    /// Consumer instance senders (shared; scaling mutates it).
    pub targets: Targets,
    /// Timestamp generator per `(this producer instance, edge)`.
    pub ts: TsGen,
    /// Round-robin cursor for one-to-any dispatch.
    pub rr: usize,
    /// Buffer registry for upstream backup.
    pub buffers: Arc<BufferRegistry>,
    /// Whether to record items in output buffers (fault tolerance on).
    pub buffered: bool,
    /// Deferred encoding: log sent items as refcounted `Live` payloads
    /// (wire encode happens at checkpoint-persist time). `false` is the
    /// eager baseline that serialises on the dispatch path.
    pub defer_encode: bool,
    /// Micro-batching knobs (`max_items = 1` sends eagerly).
    batch: BatchConfig,
    /// Pending (unsent) items per destination replica.
    pending: Vec<Vec<Item>>,
    /// Enqueue time of the oldest pending item since the last full flush.
    pending_since: Option<Instant>,
    /// Deployment-wide in-flight gauge; pending items are counted here.
    in_flight: Arc<AtomicU64>,
    /// Reused encode buffer for output-buffer appends.
    enc_scratch: BytesMut,
    /// Cached buffer handles per destination (the registry hands out one
    /// `Arc` per key for the deployment's lifetime, so caching is safe and
    /// removes the registry lock from the steady-state send path).
    buf_cache: Vec<Option<Arc<Mutex<OutputBuffer>>>>,
    /// Cached projection: positions of `live_vars` within the last payload
    /// shape seen, revalidated per item by name.
    proj_idx: Option<Vec<usize>>,
}

impl OutEdge {
    /// Builds an edge dispatcher.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        edge: EdgeId,
        dispatch: Dispatch,
        live_vars: Vec<String>,
        targets: Targets,
        ts: TsGen,
        rr: usize,
        buffers: Arc<BufferRegistry>,
        buffered: bool,
        defer_encode: bool,
        batch: BatchConfig,
        in_flight: Arc<AtomicU64>,
    ) -> Self {
        OutEdge {
            edge,
            dispatch,
            live_vars,
            targets,
            ts,
            rr,
            buffers,
            buffered,
            defer_encode,
            batch,
            pending: Vec::new(),
            pending_since: None,
            in_flight,
            enc_scratch: BytesMut::new(),
            buf_cache: Vec::new(),
            proj_idx: None,
        }
    }

    /// Projects `payload` onto the edge's live set.
    ///
    /// Fast paths: an empty live set forwards everything, and a payload
    /// whose fields already equal the live set (the common case for
    /// compiled TEs, which build outputs from the sorted live-variable
    /// list) is *shared* — a refcount bump, no per-field work at all.
    /// Otherwise a narrowed record is built copy-on-write: field positions
    /// are cached from the previous item and revalidated by name, falling
    /// back to a scanning projection when the shape changed or a live
    /// variable is absent.
    fn project(&mut self, payload: &Arc<Record>) -> Arc<Record> {
        if self.live_vars.is_empty() || payload.fields_match(&self.live_vars) {
            return Arc::clone(payload);
        }
        if let Some(idx) = &self.proj_idx {
            if idx.len() == self.live_vars.len() {
                let mut out = Record::with_capacity(idx.len());
                let mut valid = true;
                for (want, &pos) in self.live_vars.iter().zip(idx) {
                    match payload.at(pos) {
                        Some((name, value)) if &**name == want.as_str() => {
                            out.push_unchecked(Arc::clone(name), value.clone());
                        }
                        _ => {
                            valid = false;
                            break;
                        }
                    }
                }
                if valid {
                    return Arc::new(out);
                }
            }
        }
        let mut idx = Vec::with_capacity(self.live_vars.len());
        for name in &self.live_vars {
            match payload.position(name) {
                Some(pos) => idx.push(pos),
                None => {
                    // A live variable is absent (e.g. gather fragments):
                    // don't cache partial shapes.
                    self.proj_idx = None;
                    return Arc::new(payload.project(&self.live_vars));
                }
            }
        }
        let mut out = Record::with_capacity(idx.len());
        for &pos in &idx {
            let (name, value) = payload
                .at(pos)
                .expect("position() returned in-bounds index");
            out.push_unchecked(Arc::clone(name), value.clone());
        }
        self.proj_idx = Some(idx);
        Arc::new(out)
    }

    /// Dispatches `payload` according to the edge semantics.
    pub fn send(
        &mut self,
        src_replica: u32,
        payload: &Arc<Record>,
        corr: u64,
        upstream_expect: u32,
        submitted_at: Option<Instant>,
    ) -> SdgResult<()> {
        let projected = self.project(payload);
        let targets_arc = Arc::clone(&self.targets);
        let targets = targets_arc.read();
        let n = targets.len();
        if n == 0 {
            return Err(SdgError::Runtime(format!(
                "edge {} has no consumer instances",
                self.edge
            )));
        }
        match &self.dispatch {
            Dispatch::Partitioned { key } => {
                let key_value = projected.require(key)?.to_key()?;
                let idx = (key_value.stable_hash() % n as u64) as usize;
                self.send_one(&targets, idx, src_replica, projected, corr, 1, submitted_at)
            }
            Dispatch::OneToAny => {
                // Join-shortest-queue: slow (straggler) instances naturally
                // receive less work; ties fall back to round-robin.
                let start = self.rr % n;
                self.rr = self.rr.wrapping_add(1);
                let mut idx = start;
                let mut best = usize::MAX;
                for off in 0..n {
                    let candidate = (start + off) % n;
                    let depth = targets[candidate].len();
                    if depth < best {
                        best = depth;
                        idx = candidate;
                    }
                    if depth == 0 {
                        break;
                    }
                }
                self.send_one(&targets, idx, src_replica, projected, corr, 1, submitted_at)
            }
            Dispatch::AllToOne { .. } => {
                // The gather consumer is a single instance. The fragment
                // count equals the fan-out of the broadcast that fed this
                // producer, which travelled on the input item.
                self.send_one(
                    &targets,
                    0,
                    src_replica,
                    projected,
                    corr,
                    upstream_expect,
                    submitted_at,
                )
            }
            Dispatch::OneToAll => {
                let ts = self.ts.tick();
                let expect = n as u32;
                for idx in 0..n {
                    // Broadcast shares one allocation: every destination's
                    // item (and its output-buffer log entry) is a refcount
                    // bump on the same record.
                    let item = Item {
                        edge: self.edge,
                        src_replica,
                        ts,
                        corr,
                        expect,
                        payload: Arc::clone(&projected),
                        submitted_at,
                    };
                    self.enqueue(&targets, idx, item)?;
                }
                Ok(())
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn send_one(
        &mut self,
        targets: &[MailboxSender],
        idx: usize,
        src_replica: u32,
        payload: Arc<Record>,
        corr: u64,
        expect: u32,
        submitted_at: Option<Instant>,
    ) -> SdgResult<()> {
        let ts = self.ts.tick();
        let item = Item {
            edge: self.edge,
            src_replica,
            ts,
            corr,
            expect,
            payload,
            submitted_at,
        };
        self.enqueue(targets, idx, item)
    }

    /// Hands one timestamped item to destination `idx`: eagerly when
    /// batching is off, otherwise parked until a flush condition.
    fn enqueue(&mut self, targets: &[MailboxSender], idx: usize, item: Item) -> SdgResult<()> {
        if self.batch.max_items <= 1 {
            if self.buffered {
                let buf = self.buffer_for(item.src_replica, idx);
                if self.defer_encode {
                    // Deferred: the log entry shares the item's allocation;
                    // the wire encode happens at checkpoint-persist time.
                    buf.lock().push_live(
                        item.ts,
                        item.corr,
                        item.expect,
                        Arc::clone(&item.payload),
                    );
                } else {
                    let bytes = item.encode_payload_into(&mut self.enc_scratch);
                    buf.lock().push_encoded(item.ts, bytes);
                }
            }
            return targets[idx]
                .send(WorkerMsg::Item(item))
                .map_err(|_| SdgError::Runtime("consumer channel closed".into()));
        }
        if self.pending.len() <= idx {
            self.pending.resize_with(idx + 1, Vec::new);
        }
        // Count the parked item as in-flight *before* it leaves the
        // channel-visible world, so drain barriers never observe a gap.
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        self.pending[idx].push(item);
        if self.pending_since.is_none() {
            self.pending_since = Some(Instant::now());
        }
        if self.pending[idx].len() >= self.batch.max_items {
            self.flush_dst(targets, idx)?;
        }
        Ok(())
    }

    /// Flushes destination `idx`'s pending batch: one output-buffer lock
    /// for all appends, one channel message for all items.
    fn flush_dst(&mut self, targets: &[MailboxSender], idx: usize) -> SdgResult<()> {
        let Some(slot) = self.pending.get_mut(idx) else {
            return Ok(());
        };
        if slot.is_empty() {
            return Ok(());
        }
        let batch = std::mem::take(slot);
        let n = batch.len();
        if self.buffered {
            let buf = self.buffer_for(batch[0].src_replica, idx);
            if self.defer_encode {
                buf.lock().push_all(
                    batch.iter().map(|i| {
                        BufferedItem::live(i.ts, i.corr, i.expect, Arc::clone(&i.payload))
                    }),
                );
            } else {
                let enc = &mut self.enc_scratch;
                buf.lock().push_all(
                    batch
                        .iter()
                        .map(|i| BufferedItem::encoded(i.ts, i.encode_payload_into(enc))),
                );
            }
        }
        let result = if n == 1 {
            let item = batch.into_iter().next().expect("len checked");
            targets[idx].send(WorkerMsg::Item(item))
        } else {
            targets[idx].send(WorkerMsg::Batch(batch))
        };
        // Items are now visible in the channel (or lost with it): hand the
        // accounting back either way.
        self.in_flight.fetch_sub(n as u64, Ordering::AcqRel);
        result.map_err(|_| SdgError::Runtime("consumer channel closed".into()))
    }

    /// Flushes every destination's pending batch and clears the linger
    /// deadline.
    pub fn flush_all(&mut self) -> SdgResult<()> {
        self.pending_since = None;
        if !self.has_pending() {
            return Ok(());
        }
        let targets_arc = Arc::clone(&self.targets);
        let targets = targets_arc.read();
        for idx in 0..self.pending.len() {
            self.flush_dst(&targets, idx)?;
        }
        Ok(())
    }

    /// Drops every pending item without sending or buffering it, modelling
    /// the loss of in-flight data when the hosting node dies. The dropped
    /// timestamps were never buffered, so a respawned producer resuming
    /// from the buffered high-water mark stays monotone.
    pub fn discard_pending(&mut self) {
        let n: usize = self.pending.iter().map(Vec::len).sum();
        if n > 0 {
            for slot in &mut self.pending {
                slot.clear();
            }
            self.in_flight.fetch_sub(n as u64, Ordering::AcqRel);
        }
        self.pending_since = None;
    }

    /// Whether any destination has parked items.
    pub fn has_pending(&self) -> bool {
        self.pending.iter().any(|p| !p.is_empty())
    }

    /// When the oldest pending item must be flushed (absent when nothing
    /// has been parked since the last flush).
    pub fn linger_deadline(&self) -> Option<Instant> {
        self.pending_since.map(|t| t + self.batch.linger)
    }

    fn buffer_for(&mut self, src: u32, dst: usize) -> Arc<Mutex<OutputBuffer>> {
        if self.buf_cache.len() <= dst {
            self.buf_cache.resize(dst + 1, None);
        }
        if let Some(buf) = &self.buf_cache[dst] {
            return Arc::clone(buf);
        }
        let buf = self.buffers.get(BufferKey {
            edge: self.edge,
            src,
            dst: dst as u32,
        });
        self.buf_cache[dst] = Some(Arc::clone(&buf));
        buf
    }
}

impl Drop for OutEdge {
    /// Repays the in-flight gauge for items still parked for batching.
    ///
    /// Graceful paths resolve pending batches before the edge drops, so
    /// this is a no-op there — but a worker consumed by a panic unwind
    /// drops its edges with whatever was parked, and without repayment
    /// the deployment's quiesce barrier would wait on those ghosts
    /// forever.
    fn drop(&mut self) {
        self.discard_pending();
    }
}

/// An event on the SDG's external output.
#[derive(Debug, Clone)]
pub struct OutputEvent {
    /// Correlation id of the originating request.
    pub corr: u64,
    /// Emitted value.
    pub value: Value,
    /// Client-visible latency (absent for replayed duplicates).
    pub latency: Option<Duration>,
}

/// A task's executable payload after deploy-time preparation.
///
/// Translated (StateLang) code is lowered once per task into slot-addressed
/// form and shared by every instance via `Arc` — the engine analogue of the
/// paper's per-TE bytecode generation. The reference interpreter remains
/// selectable ([`ExecEngine::Reference`]) as the semantic baseline.
#[derive(Clone)]
pub enum PreparedCode {
    /// Forward the input unchanged.
    Passthrough,
    /// Tree-walking reference interpreter over the translated AST.
    Reference(sdg_ir::te::TeProgram),
    /// Slot-compiled TE, executed against a reused register file.
    Compiled(Arc<CompiledTe>),
    /// Handwritten native task.
    Native(Arc<dyn NativeTask>),
}

impl PreparedCode {
    /// Prepares `code` for execution under `engine`.
    ///
    /// `compile` resolves a task's compiled form; deployments pass a
    /// memoising closure so all replicas of a task share one
    /// [`CompiledTe`].
    pub fn prepare(
        code: &TaskCode,
        engine: ExecEngine,
        compile: impl FnOnce(&sdg_ir::te::TeProgram) -> Arc<CompiledTe>,
    ) -> PreparedCode {
        match code {
            TaskCode::Passthrough => PreparedCode::Passthrough,
            TaskCode::Native(task) => PreparedCode::Native(Arc::clone(task)),
            TaskCode::Interpreted(te) => match engine {
                ExecEngine::Reference => PreparedCode::Reference(te.clone()),
                ExecEngine::Compiled => PreparedCode::Compiled(compile(te)),
            },
        }
    }
}

/// Everything one worker thread needs.
pub struct Worker {
    /// Task name (diagnostics).
    pub name: String,
    /// Replica index of this instance.
    pub replica: u32,
    /// Executable payload, prepared at deploy time.
    pub code: PreparedCode,
    /// Reused register file + helper-frame pool for the compiled engine.
    pub scratch: Scratch,
    /// Local SE instance, when the task has an access edge.
    pub cell: Option<Arc<StateCell>>,
    /// Record field carrying the state access key, for keyed (partitioned)
    /// access. Used to route each item to the lock stripe owning its key
    /// when the cell is striped.
    pub route_key: Option<String>,
    /// Outgoing edges.
    pub outs: Vec<OutEdge>,
    /// External output sink.
    pub sink: Sender<OutputEvent>,
    /// Gather state for all-to-one input edges: `corr → fragments by
    /// producer replica`.
    pub pending_gathers: HashMap<u64, HashMap<u32, Item>>,
    /// Collect variable of the inbound gather edge, if any.
    pub gather_var: Option<String>,
    /// Synthetic per-item CPU cost in nanoseconds (scaled by node speed).
    pub work_ns: u64,
    /// Hosting node's speed factor.
    pub speed: f64,
    /// Cleared when the hosting node "fails": the worker then discards
    /// items, simulating loss of in-flight data.
    pub alive: Arc<AtomicBool>,
    /// Per-task instruments, shared with the deployment's registry: items
    /// in/out, processed, errors, gather waits, service time, latency.
    pub obs: Arc<TaskInstruments>,
    /// Deployment-wide end-to-end latency histogram.
    pub e2e: Arc<Histogram>,
    /// Dedupe switch: duplicate filtering needs a cell; stateless tasks
    /// pass everything through.
    pub dedupe: bool,
    /// Global count of in-flight items, used by scale/drain barriers.
    pub in_flight: Arc<AtomicU64>,
    /// Accumulated service-time debt not yet slept (see `busy_work`).
    pub work_debt: Duration,
    /// Owning task id (failure reports name the instance precisely).
    pub task: TaskId,
    /// Heartbeat epoch, bumped once per step and scanned by the
    /// supervisor for hang detection.
    pub heartbeat: Arc<AtomicU64>,
    /// Armed injection point from the deployment's fault plan, if any.
    pub fault: Option<Arc<FaultTrigger>>,
    /// Where scheduler boundaries report caught panics. Absent only for
    /// bare workers built by unit tests.
    pub hub: Option<Arc<FailureHub>>,
}

impl Worker {
    /// Runs the worker loop until `Stop` or channel disconnect.
    ///
    /// With micro-batching enabled the loop waits with a timeout while any
    /// outgoing edge holds pending items, so a batch never lingers past its
    /// deadline even when no further input arrives. `Stop` flushes pending
    /// batches (graceful shutdown); a dead node discards them instead,
    /// modelling loss of in-flight data.
    pub fn run(mut self, rx: Receiver<WorkerMsg>) {
        loop {
            let msg = if self.has_pending() {
                let deadline = self
                    .earliest_deadline()
                    .unwrap_or_else(|| Instant::now() + Duration::from_millis(1));
                let wait = deadline.saturating_duration_since(Instant::now());
                match rx.recv_timeout(wait) {
                    Ok(msg) => Some(msg),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => {
                        self.flush_or_discard();
                        break;
                    }
                }
            } else {
                match rx.recv() {
                    Ok(msg) => Some(msg),
                    Err(_) => {
                        self.flush_or_discard();
                        break;
                    }
                }
            };
            match msg {
                None => self.flush_or_discard(), // Linger expired.
                Some(msg) => {
                    if self.step(msg) {
                        break;
                    }
                    // `recv_timeout` hands back queued messages before it
                    // checks the clock, so a steady arrival stream would
                    // otherwise starve linger deadlines indefinitely:
                    // honour an expired deadline after every message too.
                    self.flush_expired();
                }
            }
        }
    }

    /// Processes one message; returns `true` when the instance must stop.
    ///
    /// This is the scheduler-independent core of the instance loop, shared
    /// by the dedicated-thread runner above and the pool actor
    /// ([`crate::sched`]). `Stop` resolves pending micro-batches exactly
    /// once — flush on a live node, discard on a dead one — so a linger
    /// deadline racing shutdown behaves deterministically under both
    /// schedulers.
    pub(crate) fn step(&mut self, msg: WorkerMsg) -> bool {
        self.heartbeat.fetch_add(1, Ordering::Release);
        match msg {
            WorkerMsg::Stop => {
                self.flush_or_discard();
                true
            }
            WorkerMsg::Item(item) => {
                if !self.alive.load(Ordering::Acquire) {
                    // Simulated dead node: in-flight items are lost,
                    // including anything parked for batching.
                    self.discard_all_pending();
                } else {
                    self.handle(item);
                }
                false
            }
            WorkerMsg::Batch(items) => {
                if !self.alive.load(Ordering::Acquire) {
                    self.discard_all_pending();
                } else {
                    for item in items {
                        self.handle(item);
                    }
                }
                false
            }
        }
    }

    pub(crate) fn has_pending(&self) -> bool {
        self.outs.iter().any(OutEdge::has_pending)
    }

    pub(crate) fn earliest_deadline(&self) -> Option<Instant> {
        self.outs.iter().filter_map(OutEdge::linger_deadline).min()
    }

    /// Resolves pending micro-batches: flush on a live node, discard on a
    /// dead one (its in-flight data is lost with it).
    pub(crate) fn flush_or_discard(&mut self) {
        if self.alive.load(Ordering::Acquire) {
            for out in &mut self.outs {
                // Send failures here mean consumers already shut down.
                let _ = out.flush_all();
            }
        } else {
            self.discard_all_pending();
        }
    }

    /// Applies [`Worker::flush_or_discard`] when the earliest linger
    /// deadline has passed.
    pub(crate) fn flush_expired(&mut self) {
        if let Some(deadline) = self.earliest_deadline() {
            if deadline <= Instant::now() {
                self.flush_or_discard();
            }
        }
    }

    fn discard_all_pending(&mut self) {
        for out in &mut self.outs {
            out.discard_pending();
        }
    }

    /// Everything a scheduler boundary needs to report this worker's
    /// death after the unwind consumed it.
    pub(crate) fn panic_probe(&self) -> PanicProbe {
        PanicProbe {
            task: self.task,
            replica: self.replica,
            label: format!("{}#{}", self.name, self.replica),
            hub: self.hub.clone(),
        }
    }

    fn handle(&mut self, item: Item) {
        // Injected faults fire before the item is touched: nothing is
        // half-processed, no gauge is incremented, and the item itself is
        // already in its upstream output buffer, so recovery replays it
        // to the replacement instance.
        if let Some(action) = self.fault.as_ref().and_then(|t| t.poll()) {
            match action {
                FaultAction::Panic => panic!(
                    "injected fault: {}#{} fails on this item",
                    self.name, self.replica
                ),
                FaultAction::Stall(dur) => {
                    std::thread::sleep(dur);
                    if !self.alive.load(Ordering::Acquire) {
                        // The supervisor declared us hung and recovered
                        // around us while we slept; the item replays to
                        // the replacement, so touching it here would
                        // double-apply it.
                        return;
                    }
                }
            }
        }
        self.obs.items_in.inc();
        // Gather barriers assemble one logical item from `expect` fragments.
        let item = if let Some(var) = self.gather_var.clone() {
            match self.assemble(item, &var) {
                Some(merged) => merged,
                None => {
                    // Barrier still waiting on sibling fragments.
                    self.obs.gather_waits.inc();
                    return;
                }
            }
        } else {
            item
        };
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        let t0 = Instant::now();
        let r = self.process(&item);
        self.obs.service.record(t0.elapsed().as_nanos() as u64);
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
        if r.is_err() {
            self.obs.errors.inc();
        }
    }

    /// Collects fragments; returns the merged item once all arrived.
    fn assemble(&mut self, item: Item, collect_var: &str) -> Option<Item> {
        let corr = item.corr;
        let expect = item.expect.max(1) as usize;
        let slot = self.pending_gathers.entry(corr).or_default();
        slot.insert(item.src_replica, item);
        if slot.len() < expect {
            return None;
        }
        let mut fragments = self.pending_gathers.remove(&corr)?;
        // Deterministic order: by producer replica.
        let mut replicas: Vec<u32> = fragments.keys().copied().collect();
        replicas.sort_unstable();
        let first = replicas[0];
        let base = fragments.remove(&first)?;
        let mut collected: Vec<Value> = Vec::with_capacity(replicas.len());
        collected.push(
            base.payload
                .get(collect_var)
                .cloned()
                .unwrap_or(Value::Null),
        );
        let mut submitted_at = base.submitted_at;
        for r in &replicas[1..] {
            let frag = fragments.remove(r)?;
            collected.push(
                frag.payload
                    .get(collect_var)
                    .cloned()
                    .unwrap_or(Value::Null),
            );
            submitted_at = submitted_at.or(frag.submitted_at);
        }
        // Copy-on-write: the base fragment's record is usually uniquely
        // owned here (its producer already dropped it), so `make_mut`
        // mutates in place; a shared record is cloned once.
        let mut payload = base.payload;
        Arc::make_mut(&mut payload).set(collect_var, Value::List(collected));
        Some(Item {
            edge: base.edge,
            src_replica: first,
            ts: base.ts,
            corr: base.corr,
            expect: 1,
            payload,
            submitted_at,
        })
    }

    fn process(&mut self, item: &Item) -> SdgResult<()> {
        if self.work_ns > 0 {
            // Accumulate service time and sleep it in ≥1 ms slices: short
            // sleeps overshoot badly (timer slack), which would distort the
            // modelled service rate.
            self.work_debt +=
                Duration::from_nanos((self.work_ns as f64 / self.speed.max(0.01)) as u64);
            if self.work_debt >= Duration::from_millis(1) {
                busy_work(self.work_debt);
                self.work_debt = Duration::ZERO;
            }
        }
        // Stateless passthrough: no state to read, no duplicates to filter —
        // forward the input record by refcount instead of deep-cloning it
        // through the execution engine.
        if self.cell.is_none() && matches!(self.code, PreparedCode::Passthrough) {
            self.obs.processed.inc();
            self.obs.items_out.add(self.outs.len() as u64);
            for out in &mut self.outs {
                out.send(
                    self.replica,
                    &item.payload,
                    item.corr,
                    item.expect,
                    item.submitted_at,
                )?;
            }
            return Ok(());
        }
        // Striped cells route each item to the stripe owning its access
        // key; the route hash equals the key's partition hash, so an item
        // lands on the stripe holding exactly the keys it may touch.
        let route = match (&self.cell, &self.route_key) {
            (Some(cell), Some(key)) if cell.stripe_count() > 1 => item
                .payload
                .get(key)
                .and_then(|v| v.to_key().ok())
                .map(|k| k.stable_hash()),
            _ => None,
        };
        // Split the borrows up front: the state-cell closures need the code
        // (shared) and the scratch (exclusive) while `self.cell` is held.
        let code = &self.code;
        let scratch = &mut self.scratch;
        let replica = self.replica;
        let effects = match (&self.cell, self.dedupe) {
            (Some(cell), true) => {
                let lane = lane(item.edge, item.src_replica);
                match cell.apply_routed(lane, item.ts, route, |store| {
                    execute_prepared(code, &item.payload, Some(store), replica, scratch)
                }) {
                    None => {
                        // Duplicate from a replay: already applied.
                        self.obs.processed.inc();
                        return Ok(());
                    }
                    Some(r) => r?,
                }
            }
            (Some(cell), false) => cell.with_routed(route, |inner| {
                execute_prepared(
                    code,
                    &item.payload,
                    Some(&mut inner.store),
                    replica,
                    scratch,
                )
            })?,
            (None, _) => execute_prepared(code, &item.payload, None, replica, scratch)?,
        };
        self.obs.processed.inc();
        self.obs.emits.add(effects.emits.len() as u64);
        for value in effects.emits {
            let latency = item.submitted_at.map(|t| t.elapsed());
            if let Some(l) = latency {
                let ns = l.as_nanos() as u64;
                self.obs.latency.record(ns);
                self.e2e.record(ns);
            }
            let event = OutputEvent {
                corr: item.corr,
                value,
                latency,
            };
            let _ = self.sink.send(event);
        }
        self.obs
            .items_out
            .add((effects.forwards.len() * self.outs.len()) as u64);
        for record in effects.forwards {
            // One refcounted allocation per forwarded record, shared by
            // every outgoing edge (and its output-buffer log entry).
            let payload = Arc::new(record);
            for out in &mut self.outs {
                out.send(
                    self.replica,
                    &payload,
                    item.corr,
                    item.expect,
                    item.submitted_at,
                )?;
            }
        }
        Ok(())
    }
}

/// Executes a task's code against one input (reference path; translated
/// code runs through the tree-walking interpreter).
pub fn execute(
    code: &TaskCode,
    input: &Record,
    state: Option<&mut sdg_state::store::StateStore>,
    replica: u32,
) -> SdgResult<Effects> {
    match code {
        TaskCode::Passthrough => Ok(Effects {
            forwards: vec![input.clone()],
            emits: Vec::new(),
        }),
        TaskCode::Interpreted(te) => run_te(te, input, state),
        TaskCode::Native(task) => run_native(task.as_ref(), input, state, replica),
    }
}

/// Executes prepared code against one input, reusing `scratch` on the
/// compiled path.
pub fn execute_prepared(
    code: &PreparedCode,
    input: &Record,
    state: Option<&mut sdg_state::store::StateStore>,
    replica: u32,
    scratch: &mut Scratch,
) -> SdgResult<Effects> {
    match code {
        PreparedCode::Passthrough => Ok(Effects {
            forwards: vec![input.clone()],
            emits: Vec::new(),
        }),
        PreparedCode::Reference(te) => run_te(te, input, state),
        PreparedCode::Compiled(te) => run_compiled(te, input, state, scratch),
        PreparedCode::Native(task) => run_native(task.as_ref(), input, state, replica),
    }
}

fn run_native(
    task: &dyn NativeTask,
    input: &Record,
    state: Option<&mut sdg_state::store::StateStore>,
    replica: u32,
) -> SdgResult<Effects> {
    let mut ctx = NativeCtx {
        state,
        effects: Effects::default(),
        replica,
    };
    task.process(input.clone(), &mut ctx)?;
    Ok(ctx.effects)
}

struct NativeCtx<'a> {
    state: Option<&'a mut sdg_state::store::StateStore>,
    effects: Effects,
    replica: u32,
}

impl TaskContext for NativeCtx<'_> {
    fn state(&mut self) -> Option<&mut sdg_state::store::StateStore> {
        self.state.as_deref_mut()
    }

    fn emit(&mut self, record: Record) {
        // Native emissions carry the record's `value` field, or the whole
        // record as a list when absent.
        let value = record
            .get("value")
            .cloned()
            .unwrap_or_else(|| Value::List(record.iter().map(|(_, v)| v.clone()).collect()));
        self.effects.emits.push(value);
    }

    fn forward(&mut self, record: Record) {
        self.effects.forwards.push(record);
    }

    fn replica(&self) -> u32 {
        self.replica
    }
}

/// Sleeps for `d`, simulating the per-item service time of a TE.
///
/// Sleeping (not spinning) is deliberate: each simulated node is a thread,
/// and on a host with fewer cores than simulated nodes, spinning would
/// serialise the whole cluster. Sleeping lets node service times overlap
/// the way independent machines do, so scaling experiments behave like the
/// cluster they model regardless of the host's core count.
pub fn busy_work(d: Duration) {
    if d.is_zero() {
        return;
    }
    std::thread::sleep(d);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdg_common::record;

    #[test]
    fn buffer_registry_creates_and_trims() {
        let reg = BufferRegistry::new(1000);
        let key = BufferKey {
            edge: EdgeId(1),
            src: 0,
            dst: 2,
        };
        reg.get(key).lock().push_encoded(1, vec![1, 2, 3]);
        reg.get(key).lock().push_encoded(2, vec![4]);
        assert_eq!(reg.total_bytes(), 4);
        let into = reg.buffers_into(EdgeId(1), 2);
        assert_eq!(into.len(), 1);
        assert_eq!(into[0].0, 0);
        reg.trim(key, 1);
        assert_eq!(reg.total_bytes(), 1);
        assert!(reg.buffers_into(EdgeId(1), 9).is_empty());
    }

    #[test]
    fn registry_total_bytes_matches_per_buffer_walk() {
        // The O(1) aggregate must agree with a from-scratch walk over
        // every buffer after a mix of pushes, trims, caps and restores.
        let reg = BufferRegistry::new(1000);
        let keys: Vec<BufferKey> = (0..4)
            .map(|i| BufferKey {
                edge: EdgeId(1),
                src: i,
                dst: i % 2,
            })
            .collect();
        for (n, key) in keys.iter().enumerate() {
            let buf = reg.get(*key);
            for t in 1..=(n as u64 + 3) {
                buf.lock().push_encoded(t, vec![0; (t as usize) * (n + 1)]);
            }
        }
        reg.get(keys[0]).lock().trim(2);
        reg.get(keys[1]).lock().cap(1);
        reg.get(keys[2])
            .lock()
            .restore(vec![sdg_checkpoint::buffer::BufferedItem::encoded(
                9,
                vec![0; 13],
            )]);
        let walk: usize = keys
            .iter()
            .map(|k| reg.get(*k).lock().buffered_bytes())
            .sum();
        assert_eq!(reg.total_bytes(), walk);
        for key in &keys {
            reg.get(*key).lock().trim(u64::MAX);
        }
        assert_eq!(reg.total_bytes(), 0);
    }

    #[test]
    fn passthrough_execute_forwards_input() {
        let rec = record! {"a" => Value::Int(1)};
        let fx = execute(&TaskCode::Passthrough, &rec, None, 0).unwrap();
        assert_eq!(fx.forwards, vec![rec]);
        assert!(fx.emits.is_empty());
    }

    #[test]
    fn busy_work_spins_approximately() {
        let t0 = Instant::now();
        busy_work(Duration::from_micros(50));
        assert!(t0.elapsed() >= Duration::from_micros(45));
        let t0 = Instant::now();
        busy_work(Duration::from_millis(2));
        assert!(t0.elapsed() >= Duration::from_millis(2));
        busy_work(Duration::ZERO); // Must not panic or sleep.
    }

    #[test]
    fn native_ctx_emit_prefers_value_field() {
        struct Echo;
        impl sdg_graph::model::NativeTask for Echo {
            fn process(&self, input: Record, ctx: &mut dyn TaskContext) -> SdgResult<()> {
                ctx.emit(input.clone());
                ctx.forward(input);
                assert_eq!(ctx.replica(), 3);
                Ok(())
            }
        }
        let code = TaskCode::Native(Arc::new(Echo));
        let rec = record! {"value" => Value::Int(42), "other" => Value::Int(1)};
        let fx = execute(&code, &rec, None, 3).unwrap();
        assert_eq!(fx.emits, vec![Value::Int(42)]);
        assert_eq!(fx.forwards.len(), 1);
    }
}

//! Pipelined data-parallel execution engine for stateful dataflow graphs.
//!
//! The engine materialises an [`sdg_graph::Sdg`] onto a simulated cluster
//! (§3.3): every TE instance is a worker thread with a bounded input
//! channel (pipelining and backpressure, never scheduling), SE instances
//! are [`sdg_checkpoint::StateCell`]s colocated with the TE instances that
//! access them, and dataflow edges are implemented by dispatchers on the
//! producer side (hash-partitioned, round-robin, broadcast, or all-to-one
//! gather with a synchronisation barrier).
//!
//! Runtime features:
//!
//! - **deploy-time slot compilation** of translated StateLang TE code
//!   ([`compile`], the default engine): variable names are interned into
//!   per-TE symbol tables at deploy time and the per-item environment is a
//!   reused flat register file — the analogue of the paper's Javassist
//!   bytecode generation step (§4.2 step 6);
//! - a **reference tree-walking interpreter** ([`interp`]) kept as the
//!   semantic baseline and debug engine
//!   (select with [`config::ExecEngine::Reference`] or `SDG_ENGINE=reference`);
//! - a **work-stealing cooperative scheduler** ([`sched`]): every TE
//!   instance becomes an actor with a serial mailbox multiplexed onto a
//!   fixed pool of workers, so replica counts can exceed core counts
//!   without one OS thread each (select with [`config::SchedulerMode::Pool`]
//!   or `SDG_SCHED=pool`; thread-per-replica remains the reference);
//! - **edge micro-batching** ([`config::BatchConfig`]): producers coalesce
//!   items per (edge, destination) and flush on a size bound, linger
//!   timeout, or shutdown, amortising channel and output-buffer locking;
//! - **reactive scaling** (§3.3): a monitor watches queue depths and adds
//!   TE instances (and partial/partitioned SE instances) when a task
//!   becomes a bottleneck or a node straggles, and removes them again —
//!   live-migrating their state into the survivors — when the queues stay
//!   idle ([`scaling`]);
//! - a **typed reconfiguration control plane** ([`reconfig`]):
//!   [`deploy::Deployment::reconfigure`] executes scale-out, scale-in,
//!   checkpoint and failure-injection requests and returns a uniform
//!   report with timings, migrated bytes and resulting instance counts;
//! - **failure recovery** (§5): periodic asynchronous checkpoints, output
//!   buffers with trimming, node-failure injection, parallel restore and
//!   replay with timestamp-based duplicate filtering ([`deploy`]);
//! - a **self-healing supervisor** ([`fault`]): deterministic seeded
//!   fault injection (worker panics/stalls, backup-store I/O errors and
//!   torn writes), panic capture at both scheduler boundaries plus
//!   heartbeat-epoch hang detection, and automatic fail-and-recover with
//!   exponential backoff, jitter, a recovery storm guard and escalation
//!   to a terminal `Degraded` health state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod config;
pub mod deploy;
pub mod fault;
pub mod interp;
pub mod item;
pub mod reconfig;
pub mod scaling;
pub mod sched;
pub mod worker;

pub use compile::{run_compiled, Scratch};
pub use config::{
    BatchConfig, ClusterSpec, ExecEngine, NodeSpec, RuntimeConfig, ScalingConfig, SchedulerMode,
    SupervisorConfig,
};
pub use deploy::{Deployment, OutputEvent};
pub use fault::{FaultAction, FaultPlan, Health, WorkerFault};
pub use item::Item;
pub use reconfig::{ReconfigReport, ReconfigRequest};
pub use scaling::{ScaleDirection, ScaleEvent};

//! Interpreter for translated TE code.
//!
//! The paper's `java2sdg` generates JVM bytecode per TE (§4.2 step 6); here
//! each TE carries a [`TeProgram`] that this interpreter executes once per
//! input item. State accesses (`field.method(...)`) are served by the TE
//! instance's local [`StateStore`]; `@Global` access needs no special
//! handling at this level because the broadcast dispatch already delivered
//! the item to every partial instance.

use std::collections::HashMap;

use sdg_common::error::{SdgError, SdgResult};
use sdg_common::value::{compare_values, Record, Value};
use sdg_ir::ast::{BinOp, Expr, ExprKind, Method, Stmt, StmtKind, UnOp};
use sdg_ir::builtins::eval_builtin;
use sdg_ir::te::TeProgram;
use sdg_state::store::StateStore;

/// Upper bound on interpreter steps per item, guarding against unbounded
/// `while` loops in user programs.
pub(crate) const STEP_BUDGET: u64 = 50_000_000;

/// The observable effects of running a TE block on one item.
#[derive(Debug, Default, PartialEq)]
pub struct Effects {
    /// Records forwarded on the outgoing dataflow edge.
    pub forwards: Vec<Record>,
    /// Values emitted to the SDG output sink.
    pub emits: Vec<Value>,
}

/// Runs `te` on `input` against the instance's local state.
pub fn run_te(
    te: &TeProgram,
    input: &Record,
    state: Option<&mut StateStore>,
) -> SdgResult<Effects> {
    let mut interp = Interp {
        state,
        helpers: &te.helpers,
        emits: Vec::new(),
        steps: 0,
    };
    let mut env: Env = input
        .iter()
        .map(|(n, v)| (n.to_owned(), v.clone()))
        .collect();
    let flow = interp.exec_block(&te.stmts, &mut env)?;
    let mut effects = Effects {
        forwards: Vec::new(),
        emits: interp.emits,
    };
    // An early `return` suppresses downstream forwarding (the block chose
    // not to continue the pipeline for this item).
    if te.is_sink() || matches!(flow, Flow::Returned(_)) {
        return Ok(effects);
    }
    let mut out = Record::with_capacity(te.output_vars.len());
    for var in &te.output_vars {
        let value = env.get(var).cloned().ok_or_else(|| {
            SdgError::Eval(format!(
                "live variable `{var}` is unbound at the end of TE `{}`",
                te.name
            ))
        })?;
        out.set(var, value);
    }
    effects.forwards.push(out);
    Ok(effects)
}

type Env = HashMap<String, Value>;

enum Flow {
    Normal,
    Returned(Value),
}

struct Interp<'a> {
    state: Option<&'a mut StateStore>,
    helpers: &'a HashMap<String, Method>,
    emits: Vec<Value>,
    steps: u64,
}

impl<'a> Interp<'a> {
    fn tick(&mut self) -> SdgResult<()> {
        self.steps += 1;
        if self.steps > STEP_BUDGET {
            return Err(SdgError::Eval(
                "step budget exceeded (runaway loop?)".into(),
            ));
        }
        Ok(())
    }

    fn exec_block(&mut self, stmts: &[Stmt], env: &mut Env) -> SdgResult<Flow> {
        for stmt in stmts {
            match self.exec_stmt(stmt, env)? {
                Flow::Normal => {}
                returned => return Ok(returned),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt, env: &mut Env) -> SdgResult<Flow> {
        self.tick()?;
        match &stmt.kind {
            StmtKind::Let { name, expr, .. } | StmtKind::Assign { name, expr } => {
                let value = self.eval(expr, env)?;
                env.insert(name.clone(), value);
                Ok(Flow::Normal)
            }
            StmtKind::Expr(expr) => {
                self.eval(expr, env)?;
                Ok(Flow::Normal)
            }
            StmtKind::If {
                cond,
                then_block,
                else_block,
            } => {
                if self.eval(cond, env)?.truthy()? {
                    self.exec_block(then_block, env)
                } else {
                    self.exec_block(else_block, env)
                }
            }
            StmtKind::While { cond, body } => {
                while self.eval(cond, env)?.truthy()? {
                    self.tick()?;
                    match self.exec_block(body, env)? {
                        Flow::Normal => {}
                        returned => return Ok(returned),
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Foreach { var, iter, body } => {
                let list = self.eval(iter, env)?;
                let items = list.as_list()?.to_vec();
                for item in items {
                    self.tick()?;
                    env.insert(var.clone(), item);
                    match self.exec_block(body, env)? {
                        Flow::Normal => {}
                        returned => return Ok(returned),
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Return(expr) => {
                let value = match expr {
                    Some(e) => self.eval(e, env)?,
                    None => Value::Null,
                };
                Ok(Flow::Returned(value))
            }
            StmtKind::Emit(expr) => {
                let value = self.eval(expr, env)?;
                self.emits.push(value);
                Ok(Flow::Normal)
            }
        }
    }

    fn eval(&mut self, expr: &Expr, env: &mut Env) -> SdgResult<Value> {
        self.tick()?;
        match &expr.kind {
            ExprKind::Int(v) => Ok(Value::Int(*v)),
            ExprKind::Float(v) => Ok(Value::Float(*v)),
            ExprKind::Str(s) => Ok(Value::Str(s.clone())),
            ExprKind::Bool(b) => Ok(Value::Bool(*b)),
            ExprKind::Null => Ok(Value::Null),
            ExprKind::Var(name) | ExprKind::Collection(name) => env
                .get(name)
                .cloned()
                .ok_or_else(|| SdgError::Eval(format!("unbound variable `{name}`"))),
            ExprKind::Binary { op, lhs, rhs } => {
                // Short-circuit boolean operators.
                match op {
                    BinOp::And => {
                        return if self.eval(lhs, env)?.truthy()? {
                            self.eval(rhs, env)
                        } else {
                            Ok(Value::Bool(false))
                        }
                    }
                    BinOp::Or => {
                        return if self.eval(lhs, env)?.truthy()? {
                            Ok(Value::Bool(true))
                        } else {
                            self.eval(rhs, env)
                        }
                    }
                    _ => {}
                }
                let l = self.eval(lhs, env)?;
                let r = self.eval(rhs, env)?;
                eval_binop(*op, &l, &r)
            }
            ExprKind::Unary { op, operand } => {
                let v = self.eval(operand, env)?;
                match op {
                    UnOp::Neg => match v {
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(x) => Ok(Value::Float(-x)),
                        other => Err(SdgError::type_mismatch("Int|Float", other.type_name())),
                    },
                    UnOp::Not => Ok(Value::Bool(!v.truthy()?)),
                }
            }
            ExprKind::Index { base, idx } => {
                let b = self.eval(base, env)?;
                let i = self.eval(idx, env)?.as_int()?;
                let list = b.as_list()?;
                if i < 0 || i as usize >= list.len() {
                    return Err(SdgError::Eval(format!(
                        "index {i} out of bounds for list of length {}",
                        list.len()
                    )));
                }
                Ok(list[i as usize].clone())
            }
            ExprKind::ListLit(items) => {
                let vals = items
                    .iter()
                    .map(|e| self.eval(e, env))
                    .collect::<SdgResult<_>>()?;
                Ok(Value::List(vals))
            }
            ExprKind::Call { callee, args } => {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|e| self.eval(e, env))
                    .collect::<SdgResult<_>>()?;
                if let Some(method) = self.helpers.get(callee) {
                    self.call_helper(&method.clone(), vals)
                } else {
                    eval_builtin(callee, &vals)
                }
            }
            ExprKind::StateCall {
                field,
                method,
                args,
                ..
            } => {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|e| self.eval(e, env))
                    .collect::<SdgResult<_>>()?;
                self.state_call(field, method, vals)
            }
        }
    }

    fn call_helper(&mut self, method: &Method, args: Vec<Value>) -> SdgResult<Value> {
        if method.params.len() != args.len() {
            return Err(SdgError::Eval(format!(
                "`{}` expects {} arguments, got {}",
                method.name,
                method.params.len(),
                args.len()
            )));
        }
        let mut frame: Env = method
            .params
            .iter()
            .zip(args)
            .map(|(p, v)| (p.name.clone(), v))
            .collect();
        match self.exec_block(&method.body, &mut frame)? {
            Flow::Returned(v) => Ok(v),
            Flow::Normal => Ok(Value::Null),
        }
    }

    fn state_call(&mut self, field: &str, method: &str, args: Vec<Value>) -> SdgResult<Value> {
        let store = self
            .state
            .as_deref_mut()
            .ok_or_else(|| missing_state(field))?;
        eval_state_call(store, field, method, args)
    }
}

/// The error for a state access in a TE with no state element.
pub(crate) fn missing_state(field: &str) -> SdgError {
    SdgError::Eval(format!(
        "state access to `{field}` in a TE without a state element \
         (translation bug or mis-wired native graph)"
    ))
}

/// Applies one state accessor to a store. Shared by the reference
/// interpreter and the slot-compiled engine so accessor semantics can
/// never diverge between them.
pub(crate) fn eval_state_call(
    store: &mut StateStore,
    field: &str,
    method: &str,
    args: Vec<Value>,
) -> SdgResult<Value> {
    match store {
        StateStore::Table(table) => match method {
            "get" => Ok(table.get(&args[0].to_key()?).unwrap_or(Value::Null)),
            "contains" => Ok(Value::Bool(table.contains(&args[0].to_key()?))),
            "put" => {
                table.put(args[0].to_key()?, args[1].clone());
                Ok(Value::Null)
            }
            "remove" => Ok(table.remove(&args[0].to_key()?).unwrap_or(Value::Null)),
            "inc" => {
                let key = args[0].to_key()?;
                let delta = args[1].clone();
                let current = table.get(&key);
                let next = match (current, &delta) {
                    (None, Value::Int(d)) => Value::Int(*d),
                    (None, d) => Value::Float(d.as_float()?),
                    (Some(Value::Int(c)), Value::Int(d)) => Value::Int(c + d),
                    (Some(c), d) => Value::Float(c.as_float()? + d.as_float()?),
                };
                table.put(key, next.clone());
                Ok(next)
            }
            "size" => Ok(Value::Int(table.len() as i64)),
            _ => Err(unknown_accessor(field, method)),
        },
        StateStore::Matrix(matrix) => match method {
            "get" => Ok(Value::Float(
                matrix.get(args[0].as_int()?, args[1].as_int()?),
            )),
            "set" => {
                matrix.set(args[0].as_int()?, args[1].as_int()?, args[2].as_float()?);
                Ok(Value::Null)
            }
            "add" => {
                matrix.add(args[0].as_int()?, args[1].as_int()?, args[2].as_float()?);
                Ok(Value::Null)
            }
            "row" => Ok(pairs_to_value(matrix.row(args[0].as_int()?))),
            "multiply" => {
                let x = value_to_pairs(&args[0])?;
                Ok(pairs_to_value(matrix.multiply(&x)))
            }
            "nnz" => Ok(Value::Int(matrix.nnz() as i64)),
            _ => Err(unknown_accessor(field, method)),
        },
        StateStore::Vector(vector) => match method {
            "get" => Ok(Value::Float(vector.get(index_arg(&args[0])?))),
            "set" => {
                vector.set(index_arg(&args[0])?, args[1].as_float()?);
                Ok(Value::Null)
            }
            "add" => {
                vector.add(index_arg(&args[0])?, args[1].as_float()?);
                Ok(Value::Null)
            }
            "axpy" => {
                let alpha = args[0].as_float()?;
                let xs: Vec<f64> = args[1]
                    .as_list()?
                    .iter()
                    .map(Value::as_float)
                    .collect::<SdgResult<_>>()?;
                vector.axpy(alpha, &xs);
                Ok(Value::Null)
            }
            "dot" => {
                let xs: Vec<f64> = args[0]
                    .as_list()?
                    .iter()
                    .map(Value::as_float)
                    .collect::<SdgResult<_>>()?;
                Ok(Value::Float(vector.dot(&xs)))
            }
            "size" => Ok(Value::Int(vector.len() as i64)),
            "toList" => Ok(Value::List(
                vector.to_vec().into_iter().map(Value::Float).collect(),
            )),
            _ => Err(unknown_accessor(field, method)),
        },
    }
}

fn unknown_accessor(field: &str, method: &str) -> SdgError {
    SdgError::Eval(format!("unknown state accessor `{field}.{method}`"))
}

fn index_arg(v: &Value) -> SdgResult<usize> {
    let i = v.as_int()?;
    usize::try_from(i).map_err(|_| SdgError::Eval(format!("negative index {i}")))
}

/// Converts a sparse `(index, value)` list into a Value pairs list.
fn pairs_to_value(pairs: Vec<(i64, f64)>) -> Value {
    Value::List(
        pairs
            .into_iter()
            .map(|(i, v)| Value::List(vec![Value::Int(i), Value::Float(v)]))
            .collect(),
    )
}

/// Parses a pairs list back into sparse `(index, value)` form.
fn value_to_pairs(v: &Value) -> SdgResult<Vec<(i64, f64)>> {
    v.as_list()?
        .iter()
        .map(|cell| {
            let pair = cell.as_list()?;
            if pair.len() != 2 {
                return Err(SdgError::Eval("expected [index, value] pair".into()));
            }
            Ok((pair[0].as_int()?, pair[1].as_float()?))
        })
        .collect()
}

/// Applies a binary operator; `And`/`Or` are short-circuited by callers.
/// Shared with the slot-compiled engine.
pub(crate) fn eval_binop(op: BinOp, l: &Value, r: &Value) -> SdgResult<Value> {
    use BinOp::*;
    match op {
        Add => match (l, r) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_add(*b))),
            (Value::Str(a), Value::Str(b)) => Ok(Value::str(format!("{a}{b}"))),
            _ => Ok(Value::Float(l.as_float()? + r.as_float()?)),
        },
        Sub => match (l, r) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_sub(*b))),
            _ => Ok(Value::Float(l.as_float()? - r.as_float()?)),
        },
        Mul => match (l, r) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_mul(*b))),
            _ => Ok(Value::Float(l.as_float()? * r.as_float()?)),
        },
        Div => match (l, r) {
            (Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    Err(SdgError::Eval("integer division by zero".into()))
                } else {
                    Ok(Value::Int(a / b))
                }
            }
            _ => Ok(Value::Float(l.as_float()? / r.as_float()?)),
        },
        Rem => match (l, r) {
            (Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    Err(SdgError::Eval("integer remainder by zero".into()))
                } else {
                    Ok(Value::Int(a % b))
                }
            }
            _ => Err(SdgError::Eval("`%` requires integers".into())),
        },
        Eq => Ok(Value::Bool(values_equal(l, r))),
        Ne => Ok(Value::Bool(!values_equal(l, r))),
        Lt | Le | Gt | Ge => {
            let ord = compare_values(l, r).ok_or_else(|| {
                SdgError::Eval(format!(
                    "cannot compare {} with {}",
                    l.type_name(),
                    r.type_name()
                ))
            })?;
            let b = match op {
                Lt => ord.is_lt(),
                Le => ord.is_le(),
                Gt => ord.is_gt(),
                Ge => ord.is_ge(),
                _ => unreachable!("filtered above"),
            };
            Ok(Value::Bool(b))
        }
        And | Or => unreachable!("short-circuited by the caller"),
    }
}

fn values_equal(l: &Value, r: &Value) -> bool {
    match compare_values(l, r) {
        Some(ord) => ord.is_eq(),
        None => l == r,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdg_common::record;
    use sdg_ir::parser::parse_program;
    use sdg_state::store::{StateStore, StateType};
    use std::collections::HashMap as Map;
    use std::sync::Arc;

    /// Parses a single-method program and wraps its body as one TE.
    fn te_of(src: &str, out_vars: &[&str]) -> TeProgram {
        let prog = parse_program(src).unwrap();
        let entry = prog.entry_points()[0].clone();
        let helpers: Map<String, Method> = prog
            .methods
            .iter()
            .filter(|m| m.name != entry.name)
            .map(|m| (m.name.clone(), m.clone()))
            .collect();
        TeProgram::new(
            entry.name.clone(),
            entry.body.clone(),
            Arc::new(helpers),
            out_vars.iter().map(|s| s.to_string()).collect(),
        )
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let te = te_of(
            "void f(int n) {\n\
               let acc = 0;\n\
               let i = 0;\n\
               while (i < n) { acc = acc + i; i = i + 1; }\n\
               if (acc >= 10) { emit acc; } else { emit 0 - acc; }\n\
             }",
            &[],
        );
        let fx = run_te(&te, &record! {"n" => Value::Int(5)}, None).unwrap();
        assert_eq!(fx.emits, vec![Value::Int(10)]);
        let fx = run_te(&te, &record! {"n" => Value::Int(3)}, None).unwrap();
        assert_eq!(fx.emits, vec![Value::Int(-3)]);
    }

    #[test]
    fn forwards_project_live_variables() {
        let te = te_of(
            "void f(int a, int b) { let x = a * 10; let unused = b; }",
            &["x"],
        );
        let fx = run_te(
            &te,
            &record! {"a" => Value::Int(3), "b" => Value::Int(1)},
            None,
        )
        .unwrap();
        assert_eq!(fx.forwards.len(), 1);
        assert_eq!(fx.forwards[0].get("x"), Some(&Value::Int(30)));
        assert_eq!(fx.forwards[0].len(), 1);
    }

    #[test]
    fn early_return_suppresses_forwarding() {
        let te = te_of(
            "void f(int a) { if (a < 0) { return; } let x = a; }",
            &["x"],
        );
        let fx = run_te(&te, &record! {"a" => Value::Int(-1)}, None).unwrap();
        assert!(fx.forwards.is_empty());
        let fx = run_te(&te, &record! {"a" => Value::Int(1)}, None).unwrap();
        assert_eq!(fx.forwards.len(), 1);
    }

    #[test]
    fn helper_calls_with_return() {
        let te = te_of(
            "int sq(int x) { return x * x; }\n\
             void f(int a) { emit sq(a) + sq(2); }",
            &[],
        );
        let fx = run_te(&te, &record! {"a" => Value::Int(3)}, None).unwrap();
        assert_eq!(fx.emits, vec![Value::Int(13)]);
    }

    #[test]
    fn table_state_calls() {
        let te = te_of(
            "Table t;\n\
             void f(int k) {\n\
               t.put(k, 10);\n\
               t.inc(k, 5);\n\
               emit t.get(k);\n\
               emit t.get(999);\n\
               emit t.size();\n\
             }",
            &[],
        );
        let mut store = StateStore::new(StateType::Table);
        let fx = run_te(&te, &record! {"k" => Value::Int(1)}, Some(&mut store)).unwrap();
        assert_eq!(fx.emits, vec![Value::Int(15), Value::Null, Value::Int(1)]);
    }

    #[test]
    fn matrix_state_calls_and_cf_inner_loop() {
        let te = te_of(
            "@Partial Matrix coOcc;\n\
             void f(int item, list userRow) {\n\
               foreach (p : userRow) {\n\
                 if (p[1] > 0.0) {\n\
                   coOcc.add(item, p[0], 1.0);\n\
                   coOcc.add(p[0], item, 1.0);\n\
                 }\n\
               }\n\
             }",
            &[],
        );
        let mut store = StateStore::new(StateType::Matrix);
        let user_row = Value::List(vec![
            Value::List(vec![Value::Int(2), Value::Float(5.0)]),
            Value::List(vec![Value::Int(3), Value::Float(0.0)]),
        ]);
        run_te(
            &te,
            &record! {"item" => Value::Int(7), "userRow" => user_row},
            Some(&mut store),
        )
        .unwrap();
        let m = store.as_matrix().unwrap();
        assert_eq!(m.get(7, 2), 1.0);
        assert_eq!(m.get(2, 7), 1.0);
        assert_eq!(m.get(7, 3), 0.0);
    }

    #[test]
    fn vector_state_calls() {
        let te = te_of(
            "Vector w;\n\
             void f(list g) {\n\
               w.axpy(0.5, g);\n\
               emit w.dot(g);\n\
               emit w.size();\n\
             }",
            &[],
        );
        let mut store = StateStore::new(StateType::Vector);
        let g = Value::List(vec![Value::Float(2.0), Value::Float(4.0)]);
        let fx = run_te(&te, &record! {"g" => g}, Some(&mut store)).unwrap();
        assert_eq!(fx.emits[0], Value::Float(1.0 * 2.0 + 2.0 * 4.0));
        assert_eq!(fx.emits[1], Value::Int(2));
    }

    #[test]
    fn state_access_without_store_is_an_error() {
        let te = te_of("Table t;\nvoid f(int k) { t.put(k, 1); }", &[]);
        let err = run_te(&te, &record! {"k" => Value::Int(1)}, None).unwrap_err();
        assert!(err.to_string().contains("without a state element"), "{err}");
    }

    #[test]
    fn runtime_errors_are_reported() {
        let te = te_of("void f(int a) { emit a / 0; }", &[]);
        assert!(run_te(&te, &record! {"a" => Value::Int(1)}, None).is_err());

        let te = te_of("void f(list xs) { emit xs[5]; }", &[]);
        let err = run_te(
            &te,
            &record! {"xs" => Value::List(vec![Value::Int(1)])},
            None,
        )
        .unwrap_err();
        assert!(err.to_string().contains("out of bounds"), "{err}");
    }

    #[test]
    fn missing_input_variable_is_an_error() {
        let te = te_of("void f(int a) { emit a; }", &[]);
        assert!(run_te(&te, &Record::new(), None).is_err());
    }

    #[test]
    fn runaway_loop_hits_step_budget() {
        let te = te_of("void f(int a) { while (true) { a = a + 1; } }", &[]);
        let err = run_te(&te, &record! {"a" => Value::Int(0)}, None).unwrap_err();
        assert!(err.to_string().contains("step budget"), "{err}");
    }

    #[test]
    fn short_circuit_avoids_rhs_evaluation() {
        // `false && (1/0 == 0)` must not evaluate the division.
        let te = te_of("void f(int z) { emit false && (1 / z == 0); }", &[]);
        let fx = run_te(&te, &record! {"z" => Value::Int(0)}, None).unwrap();
        assert_eq!(fx.emits, vec![Value::Bool(false)]);
    }

    #[test]
    fn string_concatenation_and_equality() {
        let te = te_of(
            "void f(string a) { emit a + \"!\"; emit a == \"hi\"; }",
            &[],
        );
        let fx = run_te(&te, &record! {"a" => Value::str("hi")}, None).unwrap();
        assert_eq!(fx.emits, vec![Value::str("hi!"), Value::Bool(true)]);
    }

    #[test]
    fn multiply_pipeline_matches_manual_computation() {
        let te = te_of(
            "@Partial Matrix m;\n\
             void f(list row) { emit m.multiply(row); }",
            &[],
        );
        let mut store = StateStore::new(StateType::Matrix);
        {
            let m = store.as_matrix().unwrap();
            m.set(0, 1, 2.0);
            m.set(5, 1, 3.0);
        }
        let row = Value::List(vec![Value::List(vec![Value::Int(1), Value::Float(10.0)])]);
        let fx = run_te(&te, &record! {"row" => row}, Some(&mut store)).unwrap();
        let expected = Value::List(vec![
            Value::List(vec![Value::Int(0), Value::Float(20.0)]),
            Value::List(vec![Value::Int(5), Value::Float(30.0)]),
        ]);
        assert_eq!(fx.emits, vec![expected]);
    }
}

//! Deterministic fault injection and the self-healing supervisor.
//!
//! Failure handling in this runtime is split into three layers:
//!
//! 1. **Injection** — a seedable [`FaultPlan`] arms per-instance
//!    [`FaultTrigger`]s (panic or stall on the Nth handled item) and a
//!    [`StoreFaultSpec`] on the backup stores, so chaos runs are exactly
//!    reproducible: the same plan over the same input fails at the same
//!    item on every run.
//! 2. **Detection** — worker/actor run loops are wrapped in
//!    `catch_unwind`; a caught panic is reported to the deployment's
//!    [`FailureHub`]. Independently, every worker bumps a heartbeat epoch
//!    per step, and [`run_supervisor`] scans the epochs to flag instances
//!    that sit on a non-empty mailbox without making progress.
//! 3. **Recovery** — the supervisor drives the existing §5
//!    fail-and-recover path (restore from the backup chain, replay
//!    upstream buffers past the watermark) with bounded exponential
//!    backoff and jitter, a storm guard bounding concurrent recoveries,
//!    and escalation to the terminal [`Health::Degraded`] state when
//!    attempts are exhausted.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use sdg_checkpoint::backup::StoreFaultSpec;
use sdg_common::error::{SdgError, SdgResult};
use sdg_common::ids::{StateId, TaskId};
use sdg_common::obs::{EventKind, MetricsRegistry};
use sdg_graph::model::Sdg;

use crate::config::SupervisorConfig;
use crate::deploy::Inner;

/// What an armed injection point does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic the worker mid-loop; caught at the scheduler boundary and
    /// reported to the [`FailureHub`].
    Panic,
    /// Stall the worker for the given duration *before* it touches the
    /// item — long enough for heartbeat detection to declare it hung. The
    /// stalled worker re-checks its kill flag on waking and drops the item
    /// if it was recovered around; replay delivers the item to the
    /// replacement instance.
    Stall(Duration),
}

/// One injection point: the instance `task#replica` fails on the `nth`
/// item it handles (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerFault {
    /// Task name as it appears in the SDG (translated segments are named
    /// `{method}_{k}`, e.g. `bump_0`).
    pub task: String,
    /// Replica index within the task.
    pub replica: u32,
    /// Fire on the Nth handled item, 1-based (clamped to ≥ 1).
    pub nth: u64,
    /// What happens when the trigger fires.
    pub action: FaultAction,
}

/// A deterministic, seedable fault plan for one deployment.
///
/// The plan is pure data: resolving it against a graph happens at deploy
/// time ([`FaultInjector::resolve`]) and fails fast on unknown task names.
/// The seed feeds [`FaultPlan::draw`] (for scattering injection points in
/// tests without a rand dependency) and the supervisor's backoff jitter.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for [`FaultPlan::draw`] and supervisor backoff jitter.
    pub seed: u64,
    /// Per-instance worker faults.
    pub worker_faults: Vec<WorkerFault>,
    /// Faults injected into every backup store of the deployment.
    pub store_faults: StoreFaultSpec,
}

impl FaultPlan {
    /// An empty plan carrying only a seed.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Default::default()
        }
    }

    /// Arms a panic on the `nth` item handled by `task#replica`.
    pub fn with_worker_panic(mut self, task: &str, replica: u32, nth: u64) -> Self {
        self.worker_faults.push(WorkerFault {
            task: task.into(),
            replica,
            nth,
            action: FaultAction::Panic,
        });
        self
    }

    /// Arms a stall of `stall` before the `nth` item handled by
    /// `task#replica`.
    pub fn with_worker_stall(
        mut self,
        task: &str,
        replica: u32,
        nth: u64,
        stall: Duration,
    ) -> Self {
        self.worker_faults.push(WorkerFault {
            task: task.into(),
            replica,
            nth,
            action: FaultAction::Stall(stall),
        });
        self
    }

    /// Injects `spec` into every backup store of the deployment.
    pub fn with_store_faults(mut self, spec: StoreFaultSpec) -> Self {
        self.store_faults = spec;
        self
    }

    /// `true` when the plan injects nothing.
    pub fn is_noop(&self) -> bool {
        self.worker_faults.is_empty() && self.store_faults.is_noop()
    }

    /// Deterministic draw in `[lo, hi]` derived from the seed and a label,
    /// so tests can scatter injection points reproducibly.
    pub fn draw(&self, label: &str, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let mut h = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        for b in label.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
        let span = hi - lo + 1;
        lo + XorShift64::new(h | 1).next() % span
    }
}

/// An armed, fire-once injection point shared with one worker.
#[derive(Debug)]
pub struct FaultTrigger {
    action: FaultAction,
    /// Items remaining until the trigger fires; `0` means spent.
    remaining: AtomicU64,
}

impl FaultTrigger {
    fn new(spec: &WorkerFault) -> Self {
        FaultTrigger {
            action: spec.action,
            remaining: AtomicU64::new(spec.nth.max(1)),
        }
    }

    /// Counts down one handled item; returns the action exactly once, on
    /// the item the trigger was armed for.
    pub fn poll(&self) -> Option<FaultAction> {
        match self
            .remaining
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| v.checked_sub(1))
        {
            Ok(1) => Some(self.action),
            _ => None,
        }
    }

    /// `true` once the trigger has fired.
    pub fn spent(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }
}

/// A [`FaultPlan`] resolved against a deployed graph: task names became
/// ids, each worker fault became a shared [`FaultTrigger`].
#[derive(Debug, Default)]
pub(crate) struct FaultInjector {
    triggers: HashMap<(TaskId, u32), Arc<FaultTrigger>>,
}

impl FaultInjector {
    /// Resolves `plan` against `sdg`; unknown task names are a
    /// configuration error (failing fast beats silently arming nothing).
    pub(crate) fn resolve(plan: Option<&FaultPlan>, sdg: &Sdg) -> SdgResult<FaultInjector> {
        let mut triggers = HashMap::new();
        if let Some(plan) = plan {
            for spec in &plan.worker_faults {
                let task = sdg.task_by_name(&spec.task).ok_or_else(|| {
                    SdgError::Config(format!(
                        "fault plan names unknown task {:?} (translated segments are \
                         named `method_k`, e.g. `bump_0`)",
                        spec.task
                    ))
                })?;
                triggers.insert((task.id, spec.replica), Arc::new(FaultTrigger::new(spec)));
            }
        }
        Ok(FaultInjector { triggers })
    }

    /// The trigger armed for `task#replica`, if any. Respawned replacement
    /// instances get the same (already spent) trigger, so a recovered
    /// worker does not re-fail on the replayed item.
    pub(crate) fn trigger_for(&self, task: TaskId, replica: u32) -> Option<Arc<FaultTrigger>> {
        self.triggers.get(&(task, replica)).cloned()
    }
}

/// One caught worker/actor panic.
#[derive(Debug, Clone)]
pub(crate) struct FailureReport {
    pub task: TaskId,
    pub replica: u32,
    /// TE instance label, e.g. `bump_0#1`.
    pub label: String,
    /// Best-effort rendering of the panic payload.
    pub message: String,
    /// When the panic was caught — the supervisor's detection latency is
    /// measured from here.
    pub at: Instant,
}

/// Collects [`FailureReport`]s from scheduler boundaries for the
/// supervisor to drain. Reporting also logs the `worker_panicked` event
/// and bumps the panic counter, so failures are visible even when the
/// supervisor is disabled.
#[derive(Debug)]
pub struct FailureHub {
    reports: Mutex<Vec<FailureReport>>,
    obs: Arc<MetricsRegistry>,
}

impl FailureHub {
    pub(crate) fn new(obs: Arc<MetricsRegistry>) -> Self {
        FailureHub {
            reports: Mutex::new(Vec::new()),
            obs,
        }
    }

    pub(crate) fn report(&self, report: FailureReport) {
        self.obs.faults().worker_panics.inc();
        self.obs.record_event(EventKind::WorkerPanicked {
            instance: report.label.clone(),
            message: report.message.clone(),
        });
        self.reports.lock().push(report);
    }

    pub(crate) fn drain(&self) -> Vec<FailureReport> {
        std::mem::take(&mut *self.reports.lock())
    }
}

/// Renders a panic payload (the argument of `panic!`) for reporting.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".into()
    }
}

/// Everything a scheduler boundary needs to report a panic after the
/// worker itself was consumed by the unwind.
#[derive(Debug, Clone)]
pub(crate) struct PanicProbe {
    pub task: TaskId,
    pub replica: u32,
    pub label: String,
    pub hub: Option<Arc<FailureHub>>,
}

impl PanicProbe {
    /// Reports a caught panic to the hub (no-op without one, e.g. for
    /// bare workers built by scheduler unit tests).
    pub(crate) fn report(&self, payload: &(dyn std::any::Any + Send)) {
        if let Some(hub) = &self.hub {
            hub.report(FailureReport {
                task: self.task,
                replica: self.replica,
                label: self.label.clone(),
                message: panic_message(payload),
                at: Instant::now(),
            });
        }
    }
}

/// Deployment health as driven by the supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// No failure outstanding.
    Healthy,
    /// At least one recovery is pending or in flight.
    Recovering,
    /// A recovery exhausted its attempts; manual intervention (or
    /// redeployment) is required. Terminal.
    Degraded,
}

impl Health {
    pub(crate) fn as_u8(self) -> u8 {
        match self {
            Health::Healthy => 0,
            Health::Recovering => 1,
            Health::Degraded => 2,
        }
    }

    pub(crate) fn from_u8(v: u8) -> Health {
        match v {
            1 => Health::Recovering,
            2 => Health::Degraded,
            _ => Health::Healthy,
        }
    }
}

/// What the supervisor recovers: stateful instances go through the §5
/// fail-and-recover path keyed by state element; stateless instances are
/// simply respawned (their in-flight items are covered by upstream
/// buffers only when checkpointing is on — otherwise respawn restores
/// liveness, not the lost items).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum RecoveryUnit {
    /// `(state, replica)` — restore + replay.
    State(StateId, u32),
    /// `(task, replica)` — respawn only.
    Task(TaskId, u32),
}

/// One instance's heartbeat as sampled by the supervisor.
#[derive(Debug)]
pub(crate) struct HeartbeatView {
    pub task: TaskId,
    pub replica: u32,
    /// Monotonic epoch bumped once per worker step.
    pub epoch: u64,
    /// Kill flag state; dead instances are never flagged (they are either
    /// being recovered already or were retired on purpose).
    pub alive: bool,
    /// Items waiting in the instance's mailbox.
    pub queued: usize,
    /// `false` when the instance is provably not hung (pool actors that
    /// are idle, waiting for credit, or queued behind busy pool workers).
    /// Dedicated threads are always candidates.
    pub hang_candidate: bool,
    /// TE instance label for events.
    pub label: String,
}

/// xorshift64* — tiny deterministic generator for backoff jitter and
/// [`FaultPlan::draw`]; good enough for scattering, not for statistics.
#[derive(Debug)]
pub(crate) struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    pub(crate) fn new(seed: u64) -> Self {
        XorShift64 { state: seed.max(1) }
    }

    pub(crate) fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// Exponential backoff for `attempt` (1-based) with deterministic jitter:
/// `base · 2^(attempt-1)` capped at `cap`, then scaled into `[½, 1]` of
/// itself so retry storms decorrelate.
pub(crate) fn backoff_for(cfg: &SupervisorConfig, attempt: u32, rng: &mut XorShift64) -> Duration {
    let exp = cfg
        .backoff_base
        .saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
    let capped = exp.min(cfg.backoff_cap);
    let jitter_pct = 50 + (rng.next() % 51) as u32; // 50..=100
    capped * jitter_pct / 100
}

struct PendingRecovery {
    unit: RecoveryUnit,
    label: String,
    attempts: u32,
    detected_at: Instant,
    eligible_at: Instant,
}

struct HeartbeatTrack {
    epoch: u64,
    stale: u32,
}

/// The supervisor loop: parked on the deployment's stop-aware condvar at
/// `heartbeat_interval`, it (1) drains caught panics, (2) scans heartbeat
/// epochs for hung instances, and (3) drives pending recoveries with
/// backoff, the storm guard and Degraded escalation.
pub(crate) fn run_supervisor(inner: Arc<Inner>, cfg: SupervisorConfig) {
    let obs = Arc::clone(inner.metrics_registry());
    let mut rng = XorShift64::new(inner.fault_seed() ^ 0x5de7_ec7e_d5ba_dbed);
    let mut tracks: HashMap<(TaskId, u32), HeartbeatTrack> = HashMap::new();
    let mut pending: VecDeque<PendingRecovery> = VecDeque::new();
    let mut queued: HashSet<RecoveryUnit> = HashSet::new();

    loop {
        if inner
            .stop_wait()
            .wait(inner.stop_flag(), cfg.heartbeat_interval)
        {
            break;
        }

        // 1. Caught panics: precise detection timestamps.
        for report in inner.failure_hub().drain() {
            obs.faults()
                .detection_ns
                .record_duration(report.at.elapsed());
            enqueue(
                &inner,
                &mut pending,
                &mut queued,
                report.task,
                report.replica,
            );
        }

        // 2. Heartbeat scan: flag instances whose epoch stalls across
        // `miss_threshold` scans while work is queued. Dead instances and
        // ones already queued for recovery are skipped.
        if cfg.hang_detection {
            for view in inner.heartbeat_view() {
                let key = (view.task, view.replica);
                let unit = inner.recovery_unit(view.task, view.replica);
                let track = tracks.entry(key).or_insert(HeartbeatTrack {
                    epoch: view.epoch,
                    stale: 0,
                });
                let stalled = view.epoch == track.epoch
                    && view.alive
                    && view.queued > 0
                    && view.hang_candidate
                    && !queued.contains(&unit);
                if !stalled {
                    track.epoch = view.epoch;
                    track.stale = 0;
                    continue;
                }
                track.stale += 1;
                if track.stale >= cfg.miss_threshold {
                    obs.faults().heartbeats_missed.inc();
                    obs.record_event(EventKind::HeartbeatMissed {
                        instance: view.label.clone(),
                        missed: track.stale,
                    });
                    // Detection latency is bounded by the scans it took.
                    obs.faults()
                        .detection_ns
                        .record_duration(cfg.heartbeat_interval * track.stale);
                    track.stale = 0;
                    enqueue(&inner, &mut pending, &mut queued, view.task, view.replica);
                }
            }
        }

        // 3. Drive recoveries: at most `max_concurrent_recoveries` per
        // scan (the storm guard), skipping entries still backing off.
        let now = Instant::now();
        let mut driven = 0usize;
        while driven < cfg.max_concurrent_recoveries {
            let Some(pos) = pending.iter().position(|p| p.eligible_at <= now) else {
                break;
            };
            let mut p = pending.remove(pos).expect("position is in bounds");
            driven += 1;
            p.attempts += 1;
            inner.mark_recovering();
            obs.recovery().started.inc();
            obs.recovery().in_flight.set(1);
            obs.record_event(EventKind::RecoveryStarted {
                instance: p.label.clone(),
                attempt: p.attempts,
            });
            let result = inner.recover(p.unit);
            obs.recovery().in_flight.set(0);
            match result {
                Ok(()) => {
                    obs.recovery().succeeded.inc();
                    obs.recovery()
                        .mttr_ns
                        .record_duration(p.detected_at.elapsed());
                    obs.record_event(EventKind::RecoverySucceeded {
                        instance: p.label.clone(),
                        attempt: p.attempts,
                    });
                    queued.remove(&p.unit);
                }
                Err(e) => {
                    obs.recovery().failed.inc();
                    obs.record_event(EventKind::RecoveryFailed {
                        instance: p.label.clone(),
                        attempt: p.attempts,
                        error: e.to_string(),
                    });
                    if p.attempts >= cfg.max_attempts {
                        // Exhausted: escalate and stop retrying this unit.
                        inner.mark_degraded();
                        queued.remove(&p.unit);
                    } else {
                        p.eligible_at = now + backoff_for(&cfg, p.attempts, &mut rng);
                        pending.push_back(p);
                    }
                }
            }
        }

        if pending.is_empty() {
            inner.mark_stable();
        }
    }
}

fn enqueue(
    inner: &Arc<Inner>,
    pending: &mut VecDeque<PendingRecovery>,
    queued: &mut HashSet<RecoveryUnit>,
    task: TaskId,
    replica: u32,
) {
    let unit = inner.recovery_unit(task, replica);
    if !queued.insert(unit) {
        return; // already queued or backing off
    }
    let label = inner.unit_label(unit);
    let now = Instant::now();
    pending.push_back(PendingRecovery {
        unit,
        label,
        attempts: 0,
        detected_at: now,
        eligible_at: now,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_fires_exactly_once_on_the_nth_item() {
        let spec = WorkerFault {
            task: "t".into(),
            replica: 0,
            nth: 3,
            action: FaultAction::Panic,
        };
        let t = FaultTrigger::new(&spec);
        assert_eq!(t.poll(), None);
        assert_eq!(t.poll(), None);
        assert!(!t.spent());
        assert_eq!(t.poll(), Some(FaultAction::Panic));
        assert!(t.spent());
        for _ in 0..10 {
            assert_eq!(t.poll(), None);
        }
    }

    #[test]
    fn zero_nth_is_clamped_to_first_item() {
        let spec = WorkerFault {
            task: "t".into(),
            replica: 0,
            nth: 0,
            action: FaultAction::Stall(Duration::from_millis(1)),
        };
        let t = FaultTrigger::new(&spec);
        assert_eq!(t.poll(), Some(FaultAction::Stall(Duration::from_millis(1))));
        assert_eq!(t.poll(), None);
    }

    #[test]
    fn plan_builder_and_noop() {
        assert!(FaultPlan::seeded(7).is_noop());
        let plan = FaultPlan::seeded(7)
            .with_worker_panic("bump_0", 1, 40)
            .with_worker_stall("bump_0", 0, 10, Duration::from_millis(200))
            .with_store_faults(StoreFaultSpec {
                write_error_every: 5,
                ..Default::default()
            });
        assert!(!plan.is_noop());
        assert_eq!(plan.worker_faults.len(), 2);
        assert_eq!(plan.worker_faults[0].action, FaultAction::Panic);
        assert_eq!(plan.store_faults.write_error_every, 5);
        // A plan with only store faults is not a no-op either.
        assert!(!FaultPlan::seeded(0)
            .with_store_faults(StoreFaultSpec {
                read_error_every: 2,
                ..Default::default()
            })
            .is_noop());
    }

    #[test]
    fn draws_are_deterministic_and_in_range() {
        let plan = FaultPlan::seeded(42);
        let a = plan.draw("panic-site", 10, 50);
        let b = plan.draw("panic-site", 10, 50);
        assert_eq!(a, b, "same seed + label must draw the same value");
        assert!((10..=50).contains(&a));
        // Different labels and different seeds decorrelate.
        let c = plan.draw("other-site", 10, 50);
        let d = FaultPlan::seeded(43).draw("panic-site", 10, 50);
        assert!((10..=50).contains(&c) && (10..=50).contains(&d));
        assert_eq!(plan.draw("x", 7, 7), 7, "degenerate range");
    }

    #[test]
    fn backoff_grows_exponentially_and_respects_the_cap() {
        let cfg = SupervisorConfig {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(200),
            ..Default::default()
        };
        let mut rng = XorShift64::new(9);
        for attempt in 1..=10u32 {
            let exp = Duration::from_millis(10)
                .saturating_mul(1 << (attempt - 1).min(16))
                .min(Duration::from_millis(200));
            let b = backoff_for(&cfg, attempt, &mut rng);
            // Jitter scales into [50%, 100%] of the capped exponential.
            assert!(b <= exp, "attempt {attempt}: {b:?} > {exp:?}");
            assert!(b >= exp / 2, "attempt {attempt}: {b:?} < half of {exp:?}");
        }
    }

    #[test]
    fn panic_payloads_render() {
        let a: Box<dyn std::any::Any + Send> = Box::new("static str");
        let b: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        let c: Box<dyn std::any::Any + Send> = Box::new(17u32);
        assert_eq!(panic_message(a.as_ref()), "static str");
        assert_eq!(panic_message(b.as_ref()), "owned");
        assert_eq!(panic_message(c.as_ref()), "panic payload of unknown type");
    }

    #[test]
    fn health_round_trips_through_u8() {
        for h in [Health::Healthy, Health::Recovering, Health::Degraded] {
            assert_eq!(Health::from_u8(h.as_u8()), h);
        }
        assert_eq!(Health::from_u8(99), Health::Healthy);
    }

    #[test]
    fn injector_rejects_unknown_task_names() {
        let sdg = Sdg::default();
        let plan = FaultPlan::seeded(1).with_worker_panic("nope_0", 0, 5);
        let err = FaultInjector::resolve(Some(&plan), &sdg).unwrap_err();
        assert!(err.to_string().contains("nope_0"), "got: {err}");
        // An absent or empty plan resolves to an empty injector.
        assert!(FaultInjector::resolve(None, &sdg)
            .unwrap()
            .trigger_for(TaskId(0), 0)
            .is_none());
    }
}

//! The reconfiguration control plane: one typed entry point for every
//! runtime topology change.
//!
//! [`crate::deploy::Deployment::reconfigure`] accepts a [`ReconfigRequest`]
//! — scale-out, scale-in, checkpoint, or failure injection — and returns a
//! uniform [`ReconfigReport`] carrying timings, migrated bytes and the
//! resulting instance counts.
//!
//! Scale-in is the elastic counterpart of §3.3's scale-out: the victim
//! replica's input lanes are paused behind the same drain barrier used for
//! repartitioning, its state shard is split by the partitioner's key hash
//! and merged into the surviving replicas' stripes (partitioned SEs), or
//! additively folded into a survivor (partial SEs — gated on the
//! `sdg-verify` merge-soundness certificate), and the removed instance's
//! workers are stopped. Both directions invalidate the affected state's
//! checkpoint chains so `restore_chain` never composes deltas across a
//! repartition boundary.

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use sdg_common::codec::decode_from_slice;
use sdg_common::error::{SdgError, SdgResult};
use sdg_common::ids::{StateId, TaskId};
use sdg_common::obs::EventKind;
use sdg_common::time::VectorTs;
use sdg_common::value::Key;
use sdg_graph::model::Distribution;
use sdg_state::entry::StateEntry;
use sdg_state::partition::{owner_changes, PartitionDim};
use sdg_state::store::{StateStore, StateType};

use crate::deploy::Inner;
use crate::scaling::ScaleDirection;
use crate::worker::{MailboxSender, WorkerMsg};

/// A topology-change request for [`crate::deploy::Deployment::reconfigure`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigRequest {
    /// Add one instance to `task` (and to its SE group when stateful).
    ScaleOut {
        /// The task to grow.
        task: TaskId,
    },
    /// Remove one instance from `task` (and from its SE group when
    /// stateful), live-migrating the victim's state into the survivors.
    ScaleIn {
        /// The task to shrink.
        task: TaskId,
    },
    /// Checkpoint every SE instance now.
    Checkpoint,
    /// Simulate the failure of the node hosting SE instance
    /// `(state, replica)` and recover it from the latest checkpoint chain
    /// plus upstream replay.
    FailAndRecover {
        /// The state whose instance fails.
        state: StateId,
        /// The failing replica.
        replica: u32,
    },
}

impl ReconfigRequest {
    /// Stable lowercase identifier of the request kind.
    pub fn kind(&self) -> &'static str {
        match self {
            ReconfigRequest::ScaleOut { .. } => "scale_out",
            ReconfigRequest::ScaleIn { .. } => "scale_in",
            ReconfigRequest::Checkpoint => "checkpoint",
            ReconfigRequest::FailAndRecover { .. } => "fail_and_recover",
        }
    }
}

/// Uniform outcome of one [`ReconfigRequest`].
///
/// Fields that do not apply to a given request kind are zero: a
/// `Checkpoint` moves no state, a `ScaleOut` restores nothing, and so on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconfigReport {
    /// The request this report answers.
    pub request: ReconfigRequest,
    /// End-to-end time of the whole reconfiguration.
    pub total: Duration,
    /// Time the drain barrier was held (scale operations on stateful
    /// groups).
    pub drain: Duration,
    /// Time to fetch chunks and reconstitute state (`FailAndRecover`).
    pub restore: Duration,
    /// Bytes that changed owner between SE instances.
    pub moved_bytes: u64,
    /// Items replayed from upstream buffers (`FailAndRecover`).
    pub replayed: usize,
    /// Instance count of the affected task after the operation (for
    /// `Checkpoint`: total TE instances across all tasks).
    pub task_instances: u32,
    /// SE instances of the affected state after the operation (for
    /// `Checkpoint`: total SE instances; zero for stateless tasks).
    pub se_instances: u32,
}

/// Timings and migrated-byte counts of one scale operation, threaded from
/// the executing function back to the report.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct MigrationStats {
    pub(crate) drain: Duration,
    pub(crate) moved_bytes: u64,
}

/// Executes `request` against a running deployment.
pub(crate) fn execute(inner: &Inner, request: ReconfigRequest) -> SdgResult<ReconfigReport> {
    let t0 = Instant::now();
    match request {
        ReconfigRequest::ScaleOut { task } => {
            let stats = scale_out(inner, task)?;
            Ok(scale_report(inner, request, task, t0, stats))
        }
        ReconfigRequest::ScaleIn { task } => {
            let stats = scale_in(inner, task)?;
            Ok(scale_report(inner, request, task, t0, stats))
        }
        ReconfigRequest::Checkpoint => {
            inner.checkpoint_all()?;
            let task_instances = inner.targets.values().map(|t| t.read().len() as u32).sum();
            let se_instances = inner.cells.read().values().map(|g| g.len() as u32).sum();
            Ok(ReconfigReport {
                request,
                total: t0.elapsed(),
                drain: Duration::ZERO,
                restore: Duration::ZERO,
                moved_bytes: 0,
                replayed: 0,
                task_instances,
                se_instances,
            })
        }
        ReconfigRequest::FailAndRecover { state, replica } => {
            let recovery = inner.fail_and_recover(state, replica)?;
            let task_instances = inner
                .sdg
                .tasks_accessing(state)
                .iter()
                .map(|t| inner.targets[&t.id].read().len() as u32)
                .sum();
            let se_instances = inner
                .cells
                .read()
                .get(&state)
                .map(|g| g.len() as u32)
                .unwrap_or(0);
            Ok(ReconfigReport {
                request,
                total: t0.elapsed(),
                drain: Duration::ZERO,
                restore: recovery.restore,
                moved_bytes: 0,
                replayed: recovery.replayed,
                task_instances,
                se_instances,
            })
        }
    }
}

fn scale_report(
    inner: &Inner,
    request: ReconfigRequest,
    task: TaskId,
    t0: Instant,
    stats: MigrationStats,
) -> ReconfigReport {
    let task_instances = inner
        .targets
        .get(&task)
        .map(|t| t.read().len() as u32)
        .unwrap_or(0);
    let se_instances = inner
        .sdg
        .task(task)
        .ok()
        .and_then(|t| t.access.as_ref().map(|a| a.state))
        .and_then(|s| inner.cells.read().get(&s).map(|g| g.len() as u32))
        .unwrap_or(0);
    ReconfigReport {
        request,
        total: t0.elapsed(),
        drain: stats.drain,
        restore: Duration::ZERO,
        moved_bytes: stats.moved_bytes,
        replayed: 0,
        task_instances,
        se_instances,
    }
}

/// Adds one instance to `task`, repartitioning or replicating its SE group
/// as its distribution requires.
pub(crate) fn scale_out(inner: &Inner, task_id: TaskId) -> SdgResult<MigrationStats> {
    let task = inner.sdg.task(task_id)?.clone();
    match &task.access {
        None => {
            let replica = inner.targets[&task_id].read().len() as u32;
            let node = inner.next_node();
            inner.spawn_instance(task_id, replica, node)?;
            inner.record_scale(task_id, node, ScaleDirection::Out);
            Ok(MigrationStats::default())
        }
        Some(access) => {
            let state = access.state;
            let dist = inner.sdg.state(state)?.dist;
            match dist {
                Distribution::Local => Err(SdgError::Runtime(format!(
                    "task `{}` accesses local state and cannot scale out",
                    task.name
                ))),
                Distribution::Partial => scale_out_partial(inner, state, task_id),
                Distribution::Partitioned { dim } => {
                    scale_out_partitioned(inner, state, dim, task_id)
                }
            }
        }
    }
}

/// Removes one instance from `task`, live-migrating the victim replica's
/// state into the survivors.
pub(crate) fn scale_in(inner: &Inner, task_id: TaskId) -> SdgResult<MigrationStats> {
    let task = inner.sdg.task(task_id)?.clone();
    match &task.access {
        None => {
            let mut guard = inner.targets[&task_id].write();
            if guard.len() <= 1 {
                return Err(SdgError::Runtime(format!(
                    "task `{}` is already at one instance",
                    task.name
                )));
            }
            let victim = guard.len() as u32 - 1;
            let sender = guard.pop().expect("len > 1");
            // `force_send`: the victim's mailbox may be full, and under the
            // pool scheduler a blocking send from the control plane while
            // producers hold this write guard could never get credit.
            let _ = sender.force_send(WorkerMsg::Stop);
            inner.alive.write().remove(&(task_id, victim));
            let node = inner
                .node_of_instance
                .write()
                .remove(&(task_id, victim))
                .unwrap_or(0);
            drop(guard);
            inner.record_scale(task_id, node, ScaleDirection::In);
            Ok(MigrationStats::default())
        }
        Some(access) => {
            let state = access.state;
            let dist = inner.sdg.state(state)?.dist;
            match dist {
                Distribution::Local => Err(SdgError::Runtime(format!(
                    "task `{}` accesses local state and cannot scale in",
                    task.name
                ))),
                Distribution::Partial => scale_in_partial(inner, state, task_id),
                Distribution::Partitioned { dim } => {
                    scale_in_partitioned(inner, state, dim, task_id)
                }
            }
        }
    }
}

/// Adds one replica to a partial SE group: a fresh (empty) partial
/// instance plus one new instance of every accessing task.
fn scale_out_partial(inner: &Inner, state: StateId, trigger: TaskId) -> SdgResult<MigrationStats> {
    let new_replica = {
        let mut cells = inner.cells.write();
        let group = cells
            .get_mut(&state)
            .ok_or_else(|| SdgError::NotFound(format!("state {state}")))?;
        let decl = inner.sdg.state(state)?;
        let (stripes, dim, delta) = inner.layout_of(decl);
        let cell = std::sync::Arc::new(sdg_checkpoint::cell::StateCell::new_striped(
            decl.ty, stripes, dim, delta,
        ));
        group.push(cell);
        group.len() as u32 - 1
    };
    let node = inner.next_node();
    for task in accessing_sorted(inner, state) {
        inner.spawn_instance(task, new_replica, node)?;
    }
    inner.record_scale(trigger, node, ScaleDirection::Out);
    Ok(MigrationStats::default())
}

/// Folds the last partial replica into replica 0 and removes it, together
/// with the victim instance of every accessing task.
///
/// Refused when the SE's `@Partial` merge is not certified sound by the
/// attached `sdg-verify` report (unless `trust_annotations` is set): the
/// fold applies the merge function outside its usual read-all barrier, so
/// an unsound merge could corrupt the surviving aggregate.
fn scale_in_partial(inner: &Inner, state: StateId, trigger: TaskId) -> SdgResult<MigrationStats> {
    let decl = inner.sdg.state(state)?.clone();
    if !inner.cfg.trust_annotations {
        if let Some(cert) = inner.sdg.verify.as_deref().and_then(|r| r.se(&decl.name)) {
            if !cert.merge_sound {
                return Err(SdgError::Runtime(format!(
                    "scale-in of `{}` refused: its @Partial merge is not certified sound \
                     ({}); folding the removed replica into a survivor could corrupt the \
                     aggregate. Fix the merge, or set trust_annotations to override.",
                    decl.name,
                    if cert.violations.is_empty() {
                        "certificate withheld".to_string()
                    } else {
                        cert.violations.join(", ")
                    }
                )));
            }
        }
    }

    let tasks = accessing_sorted(inner, state);
    let mut guards: Vec<_> = tasks.iter().map(|t| inner.targets[t].write()).collect();
    let p = inner.cells.read().get(&state).map(|g| g.len()).unwrap_or(0);
    if p <= 1 {
        return Err(SdgError::Runtime(format!(
            "state `{}` is already at one replica",
            decl.name
        )));
    }
    let drain = drain_barrier(inner, &guards);
    record_drain(inner, trigger, drain);

    // Fold the victim's partial aggregate (and its dedupe watermarks) into
    // replica 0 — pointwise addition preserves the element-wise-sum
    // invariant of partial groups.
    let migrate_t0 = Instant::now();
    let moved_bytes = {
        let mut cells = inner.cells.write();
        let group = cells.get_mut(&state).expect("checked above");
        let victim = group.pop().expect("p > 1");
        let (entries, vector) = victim.export_merged();
        let moved: u64 = entries.iter().map(|e| e.size() as u64).sum();
        group[0].merge_additive(&entries, &vector)?;
        moved
    };
    inner.invalidate_chains(state);

    let victim = p as u32 - 1;
    let node = stop_victims(inner, &tasks, &mut guards, victim);
    drop(guards);
    inner.record_migration(state, moved_bytes, migrate_t0.elapsed());
    inner.record_scale(trigger, node, ScaleDirection::In);
    Ok(MigrationStats { drain, moved_bytes })
}

/// Repartitions a partitioned SE group from `p` to `p + 1` instances.
fn scale_out_partitioned(
    inner: &Inner,
    state: StateId,
    dim: PartitionDim,
    trigger: TaskId,
) -> SdgResult<MigrationStats> {
    let tasks = accessing_sorted(inner, state);

    // Pause producers and wait for in-flight items to drain so the
    // repartitioning sees a consistent key population. The guards stay
    // held until the new instances are swapped in: releasing earlier
    // would let producers route by the old partition count against the
    // already-repartitioned state.
    let mut guards: Vec<_> = tasks.iter().map(|t| inner.targets[t].write()).collect();
    let drain = drain_barrier(inner, &guards);
    record_drain(inner, trigger, drain);

    // Export all partitions (merging each cell's stripes), merge,
    // re-split to p + 1. Assigning the merged (max) vector to every new
    // partition is exact here: the group was drained, so fresh items
    // always carry higher timestamps than anything merged.
    let migrate_t0 = Instant::now();
    let decl = inner.sdg.state(state)?.clone();
    let (stripes, _, delta) = inner.layout_of(&decl);
    let (all_entries, merged_vector, _) = export_group(inner, state)?;
    let (splits, p) = {
        let cells = inner.cells.read();
        let group = &cells[&state];
        let mut all = StateStore::new(decl.ty);
        all.import_entries(&all_entries)?;
        (all.split_by_hash(group.len() + 1, dim)?, group.len())
    };
    let moved_bytes = {
        // Bytes that change owner under the p → p + 1 resplit; entries not
        // keyed by the partition axis fall back to the new shard's size.
        let new_shard: u64 = splits
            .last()
            .map(|s| s.export_entries().iter().map(|e| e.size() as u64).sum())
            .unwrap_or(0);
        migrated_bytes(&all_entries, decl.ty, dim, p, p + 1, new_shard)
    };

    // Swap the new partitions into the existing cells in place (workers
    // hold Arcs to them) and append the new instance's cell.
    let new_replica = {
        let mut cells = inner.cells.write();
        let group = cells.get_mut(&state).expect("exported above");
        let mut splits = splits.into_iter();
        for cell in group.iter() {
            let store = splits.next().expect("split count = p + 1");
            cell.replace(store, merged_vector.clone())?;
        }
        let cell = std::sync::Arc::new(sdg_checkpoint::cell::StateCell::from_store_striped(
            splits.next().expect("last split"),
            merged_vector,
            stripes,
            dim,
            delta,
        )?);
        group.push(cell);
        group.len() as u32 - 1
    };
    inner.invalidate_chains(state);

    let node = inner.next_node();
    for (i, &task) in tasks.iter().enumerate() {
        inner.spawn_instance_in(task, new_replica, node, Some(&mut guards[i]))?;
    }
    drop(guards);
    inner.record_migration(state, moved_bytes, migrate_t0.elapsed());
    inner.record_scale(trigger, node, ScaleDirection::Out);
    Ok(MigrationStats { drain, moved_bytes })
}

/// Repartitions a partitioned SE group from `p` to `p − 1` instances,
/// splitting the victim's shard by key hash into the survivors.
fn scale_in_partitioned(
    inner: &Inner,
    state: StateId,
    dim: PartitionDim,
    trigger: TaskId,
) -> SdgResult<MigrationStats> {
    let tasks = accessing_sorted(inner, state);
    let mut guards: Vec<_> = tasks.iter().map(|t| inner.targets[t].write()).collect();
    let p = inner.cells.read().get(&state).map(|g| g.len()).unwrap_or(0);
    if p <= 1 {
        let decl = inner.sdg.state(state)?;
        return Err(SdgError::Runtime(format!(
            "state `{}` is already at one partition",
            decl.name
        )));
    }
    let drain = drain_barrier(inner, &guards);
    record_drain(inner, trigger, drain);

    // Merge every partition (the victim's shard included), re-split to
    // p − 1 by the same key hash the dispatchers use, and swap the pieces
    // into the survivors. The merged-max dedupe vector is exact after the
    // drain, mirroring scale-out.
    let migrate_t0 = Instant::now();
    let decl = inner.sdg.state(state)?.clone();
    let (all_entries, merged_vector, victim_bytes) = export_group(inner, state)?;
    let moved_bytes = migrated_bytes(&all_entries, decl.ty, dim, p, p - 1, victim_bytes);
    {
        let mut cells = inner.cells.write();
        let group = cells.get_mut(&state).expect("exported above");
        let mut all = StateStore::new(decl.ty);
        all.import_entries(&all_entries)?;
        let splits = all.split_by_hash(p - 1, dim)?;
        group.pop().expect("p > 1");
        for (cell, store) in group.iter().zip(splits) {
            cell.replace(store, merged_vector.clone())?;
        }
    }
    inner.invalidate_chains(state);

    let victim = p as u32 - 1;
    let node = stop_victims(inner, &tasks, &mut guards, victim);
    drop(guards);
    inner.record_migration(state, moved_bytes, migrate_t0.elapsed());
    inner.record_scale(trigger, node, ScaleDirection::In);
    Ok(MigrationStats { drain, moved_bytes })
}

/// The accessing tasks of `state`, sorted by id so nested target locks are
/// always taken in a consistent order.
fn accessing_sorted(inner: &Inner, state: StateId) -> Vec<TaskId> {
    let mut tasks: Vec<TaskId> = inner
        .sdg
        .tasks_accessing(state)
        .iter()
        .map(|t| t.id)
        .collect();
    tasks.sort();
    tasks
}

/// Waits (up to 5 s) until the held queues are empty and nothing is
/// mid-processing, so a migration sees a consistent key population.
fn drain_barrier<G>(inner: &Inner, guards: &[G]) -> Duration
where
    G: std::ops::Deref<Target = Vec<MailboxSender>>,
{
    let drain_t0 = Instant::now();
    let deadline = drain_t0 + Duration::from_secs(5);
    loop {
        let queued: usize = guards.iter().flat_map(|g| g.iter()).map(|s| s.len()).sum();
        if queued == 0 && inner.in_flight.load(Ordering::Acquire) == 0 {
            break;
        }
        if Instant::now() >= deadline {
            break; // Proceed; duplicate filtering keeps this safe.
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    drain_t0.elapsed()
}

fn record_drain(inner: &Inner, trigger: TaskId, waited: Duration) {
    if let Ok(task) = inner.sdg.task(trigger) {
        inner.obs.record_event(EventKind::RepartitionDrain {
            task: task.name.clone(),
            waited,
        });
    }
}

/// Exports every cell of `state` (merging stripes), returning all entries,
/// the pointwise-max dedupe vector, and the byte size of the last
/// (victim-candidate) replica's shard.
fn export_group(inner: &Inner, state: StateId) -> SdgResult<(Vec<StateEntry>, VectorTs, u64)> {
    let cells = inner.cells.read();
    let group = cells
        .get(&state)
        .ok_or_else(|| SdgError::NotFound(format!("state {state}")))?;
    let mut all_entries = Vec::new();
    let mut merged_vector = VectorTs::new();
    let mut last_bytes = 0u64;
    for cell in group.iter() {
        let (entries, vector) = cell.export_merged();
        last_bytes = entries.iter().map(|e| e.size() as u64).sum();
        all_entries.extend(entries);
        merged_vector.merge_max(&vector);
    }
    Ok((all_entries, merged_vector, last_bytes))
}

/// Stops the `victim` replica of every task (through the held guards) and
/// unregisters it, returning the node it ran on.
fn stop_victims<G>(inner: &Inner, tasks: &[TaskId], guards: &mut [G], victim: u32) -> u32
where
    G: std::ops::DerefMut<Target = Vec<MailboxSender>>,
{
    let mut node = 0;
    for (i, &task) in tasks.iter().enumerate() {
        if let Some(sender) = guards[i].pop() {
            // See `scale_in`: Stop must bypass the mailbox cap while the
            // target write guards are held.
            let _ = sender.force_send(WorkerMsg::Stop);
        }
        inner.alive.write().remove(&(task, victim));
        if let Some(n) = inner.node_of_instance.write().remove(&(task, victim)) {
            node = n;
        }
    }
    node
}

/// Bytes whose mod-N owner changes when the group resizes from `from` to
/// `to` partitions. Tables and row-partitioned matrices are keyed by the
/// partition axis, so ownership is computed per entry; everything else
/// (column-partitioned matrices, vectors) falls back to `fallback` — the
/// size of the shard that demonstrably moves.
fn migrated_bytes(
    entries: &[StateEntry],
    ty: StateType,
    dim: PartitionDim,
    from: usize,
    to: usize,
    fallback: u64,
) -> u64 {
    let keyed_by_entry =
        ty == StateType::Table || (ty == StateType::Matrix && dim == PartitionDim::Row);
    if !keyed_by_entry || from == 0 || to == 0 {
        return fallback;
    }
    entries
        .iter()
        .map(|e| match decode_from_slice::<Key>(&e.key) {
            Ok(k) if !owner_changes(k.stable_hash(), from, to) => 0,
            // Undecodable keys are counted as moved (conservative).
            _ => e.size() as u64,
        })
        .sum()
}

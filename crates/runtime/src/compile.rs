//! Executor for slot-compiled TEs (deploy-time compilation, step 2).
//!
//! [`sdg_ir::te_compiled`] lowers a `TeProgram` into a slot-addressed form
//! at deploy time; this module executes it. The interpreter environment is
//! a flat register file (`Vec<Option<Value>>`) indexed by `u32` slots, so
//! variable reads and writes are O(1) array accesses instead of string
//! hash lookups, and the per-item `HashMap` allocation of the reference
//! interpreter disappears entirely: each worker owns one [`Scratch`] whose
//! register file (and helper-frame pool) is reused across items.
//!
//! Semantics are defined by the reference interpreter
//! ([`crate::interp::run_te`]); the property harness in
//! `tests/engine_equiv.rs` asserts effect-for-effect equivalence across
//! generated StateLang programs, and the shared accessor/operator kernels
//! (`eval_state_call`, `eval_binop`) make divergence structurally hard.

use sdg_common::error::{SdgError, SdgResult};
use sdg_common::value::{Record, Value};
use sdg_ir::ast::{BinOp, UnOp};
use sdg_ir::builtins::eval_builtin;
use sdg_ir::te_compiled::{CExpr, CStmt, CompiledTe};
use sdg_state::store::StateStore;

use crate::interp::{eval_binop, eval_state_call, missing_state, Effects, STEP_BUDGET};

/// A register file: one `Option<Value>` per interned name. `None` means
/// the variable is unbound (distinct from a bound `Value::Null`).
type Regs = Vec<Option<Value>>;

/// Per-worker reusable execution state: the main register file and a pool
/// of helper activation frames. Reusing these across items removes every
/// per-item environment allocation from the hot path.
#[derive(Debug, Default)]
pub struct Scratch {
    regs: Regs,
    frame_pool: Vec<Regs>,
}

impl Scratch {
    /// Creates an empty scratch pad.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Runs a compiled TE on `input` against the instance's local state,
/// reusing `scratch` for the register file.
pub fn run_compiled(
    te: &CompiledTe,
    input: &Record,
    state: Option<&mut StateStore>,
    scratch: &mut Scratch,
) -> SdgResult<Effects> {
    let Scratch { regs, frame_pool } = scratch;
    regs.clear();
    regs.resize(te.symbols.len(), None);
    // Bind input fields: one symbol lookup per field, ignoring fields the
    // program never references (they cannot appear in `output_slots`
    // because output variables are interned at compile time).
    for (name, value) in input.iter() {
        if let Some(slot) = te.symbols.lookup(name) {
            regs[slot as usize] = Some(value.clone());
        }
    }
    let mut exec = Exec {
        te,
        state,
        frame_pool,
        emits: Vec::new(),
        steps: 0,
    };
    let flow = exec.exec_block(&te.body, regs)?;
    let mut effects = Effects {
        forwards: Vec::new(),
        emits: exec.emits,
    };
    if te.is_sink || matches!(flow, Flow::Returned(_)) {
        return Ok(effects);
    }
    let mut out = Record::with_capacity(te.output_slots.len());
    for &slot in &te.output_slots {
        // The block is over: move values out of the registers instead of
        // cloning them. Output slots are distinct (live sets are sorted,
        // deduplicated variable names).
        let value = regs[slot as usize].take().ok_or_else(|| {
            SdgError::Eval(format!(
                "live variable `{}` is unbound at the end of TE `{}`",
                te.symbols.name(slot),
                te.name
            ))
        })?;
        out.push_unchecked(te.symbols.name(slot).clone(), value);
    }
    effects.forwards.push(out);
    Ok(effects)
}

enum Flow {
    Normal,
    Returned(Value),
}

struct Exec<'a> {
    te: &'a CompiledTe,
    state: Option<&'a mut StateStore>,
    frame_pool: &'a mut Vec<Regs>,
    emits: Vec<Value>,
    steps: u64,
}

impl<'a> Exec<'a> {
    #[inline]
    fn tick(&mut self) -> SdgResult<()> {
        self.steps += 1;
        if self.steps > STEP_BUDGET {
            return Err(SdgError::Eval(
                "step budget exceeded (runaway loop?)".into(),
            ));
        }
        Ok(())
    }

    fn exec_block(&mut self, stmts: &[CStmt], regs: &mut Regs) -> SdgResult<Flow> {
        for stmt in stmts {
            match self.exec_stmt(stmt, regs)? {
                Flow::Normal => {}
                returned => return Ok(returned),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &CStmt, regs: &mut Regs) -> SdgResult<Flow> {
        self.tick()?;
        match stmt {
            CStmt::Assign { slot, expr } => {
                let value = self.eval(expr, regs)?;
                regs[*slot as usize] = Some(value);
                Ok(Flow::Normal)
            }
            CStmt::Expr(expr) => {
                self.eval(expr, regs)?;
                Ok(Flow::Normal)
            }
            CStmt::If {
                cond,
                then_block,
                else_block,
            } => {
                if self.eval(cond, regs)?.truthy()? {
                    self.exec_block(then_block, regs)
                } else {
                    self.exec_block(else_block, regs)
                }
            }
            CStmt::While { cond, body } => {
                while self.eval(cond, regs)?.truthy()? {
                    self.tick()?;
                    match self.exec_block(body, regs)? {
                        Flow::Normal => {}
                        returned => return Ok(returned),
                    }
                }
                Ok(Flow::Normal)
            }
            CStmt::Foreach { slot, iter, body } => {
                let list = self.eval(iter, regs)?;
                let items = list.as_list()?.to_vec();
                for item in items {
                    self.tick()?;
                    regs[*slot as usize] = Some(item);
                    match self.exec_block(body, regs)? {
                        Flow::Normal => {}
                        returned => return Ok(returned),
                    }
                }
                Ok(Flow::Normal)
            }
            CStmt::Return(expr) => {
                let value = match expr {
                    Some(e) => self.eval(e, regs)?,
                    None => Value::Null,
                };
                Ok(Flow::Returned(value))
            }
            CStmt::Emit(expr) => {
                let value = self.eval(expr, regs)?;
                self.emits.push(value);
                Ok(Flow::Normal)
            }
        }
    }

    fn eval(&mut self, expr: &CExpr, regs: &mut Regs) -> SdgResult<Value> {
        self.tick()?;
        match expr {
            CExpr::Const(v) => Ok(v.clone()),
            CExpr::Slot(slot) => regs[*slot as usize].clone().ok_or_else(|| {
                SdgError::Eval(format!(
                    "unbound variable `{}`",
                    self.te.symbols.name(*slot)
                ))
            }),
            CExpr::Binary { op, lhs, rhs } => {
                match op {
                    BinOp::And => {
                        return if self.eval(lhs, regs)?.truthy()? {
                            self.eval(rhs, regs)
                        } else {
                            Ok(Value::Bool(false))
                        }
                    }
                    BinOp::Or => {
                        return if self.eval(lhs, regs)?.truthy()? {
                            Ok(Value::Bool(true))
                        } else {
                            self.eval(rhs, regs)
                        }
                    }
                    _ => {}
                }
                let l = self.eval(lhs, regs)?;
                let r = self.eval(rhs, regs)?;
                eval_binop(*op, &l, &r)
            }
            CExpr::Unary { op, operand } => {
                let v = self.eval(operand, regs)?;
                match op {
                    UnOp::Neg => match v {
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(x) => Ok(Value::Float(-x)),
                        other => Err(SdgError::type_mismatch("Int|Float", other.type_name())),
                    },
                    UnOp::Not => Ok(Value::Bool(!v.truthy()?)),
                }
            }
            CExpr::Index { base, idx } => {
                let b = self.eval(base, regs)?;
                let i = self.eval(idx, regs)?.as_int()?;
                let list = b.as_list()?;
                if i < 0 || i as usize >= list.len() {
                    return Err(SdgError::Eval(format!(
                        "index {i} out of bounds for list of length {}",
                        list.len()
                    )));
                }
                Ok(list[i as usize].clone())
            }
            CExpr::ListLit(items) => {
                let vals = items
                    .iter()
                    .map(|e| self.eval(e, regs))
                    .collect::<SdgResult<_>>()?;
                Ok(Value::List(vals))
            }
            CExpr::CallBuiltin { name, args } => {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|e| self.eval(e, regs))
                    .collect::<SdgResult<_>>()?;
                eval_builtin(name, &vals)
            }
            CExpr::CallHelper { helper, args } => {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|e| self.eval(e, regs))
                    .collect::<SdgResult<_>>()?;
                self.call_helper(*helper, vals)
            }
            CExpr::StateCall {
                field,
                method,
                args,
            } => {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|e| self.eval(e, regs))
                    .collect::<SdgResult<_>>()?;
                let store = self
                    .state
                    .as_deref_mut()
                    .ok_or_else(|| missing_state(field))?;
                eval_state_call(store, field, method, vals)
            }
        }
    }

    fn call_helper(&mut self, helper: u32, args: Vec<Value>) -> SdgResult<Value> {
        let decl = &self.te.helpers[helper as usize];
        if decl.params as usize != args.len() {
            return Err(SdgError::Eval(format!(
                "`{}` expects {} arguments, got {}",
                decl.name,
                decl.params,
                args.len()
            )));
        }
        // Activation frames come from a reusable pool: helper calls on the
        // hot path allocate only until the pool matches the call depth.
        let mut frame = self.frame_pool.pop().unwrap_or_default();
        frame.clear();
        frame.resize(decl.frame_len as usize, None);
        for (slot, value) in args.into_iter().enumerate() {
            frame[slot] = Some(value);
        }
        let result = self.exec_block(&decl.body, &mut frame);
        self.frame_pool.push(frame);
        match result? {
            Flow::Returned(v) => Ok(v),
            Flow::Normal => Ok(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdg_common::record;
    use sdg_ir::parser::parse_program;
    use sdg_ir::te::TeProgram;
    use sdg_state::store::{StateStore, StateType};
    use std::collections::HashMap;
    use std::sync::Arc;

    fn compile_of(src: &str, out_vars: &[&str]) -> CompiledTe {
        let prog = parse_program(src).unwrap();
        let entry = prog.entry_points()[0].clone();
        let helpers: HashMap<String, sdg_ir::ast::Method> = prog
            .methods
            .iter()
            .filter(|m| m.name != entry.name)
            .map(|m| (m.name.clone(), m.clone()))
            .collect();
        CompiledTe::compile(&TeProgram::new(
            entry.name.clone(),
            entry.body.clone(),
            Arc::new(helpers),
            out_vars.iter().map(|s| s.to_string()).collect(),
        ))
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let te = compile_of(
            "void f(int n) {\n\
               let acc = 0;\n\
               let i = 0;\n\
               while (i < n) { acc = acc + i; i = i + 1; }\n\
               if (acc >= 10) { emit acc; } else { emit 0 - acc; }\n\
             }",
            &[],
        );
        let mut scratch = Scratch::new();
        let fx = run_compiled(&te, &record! {"n" => Value::Int(5)}, None, &mut scratch).unwrap();
        assert_eq!(fx.emits, vec![Value::Int(10)]);
        // The same scratch serves the next item (register reuse).
        let fx = run_compiled(&te, &record! {"n" => Value::Int(3)}, None, &mut scratch).unwrap();
        assert_eq!(fx.emits, vec![Value::Int(-3)]);
    }

    #[test]
    fn forwards_project_live_variables() {
        let te = compile_of(
            "void f(int a, int b) { let x = a * 10; let unused = b; }",
            &["x"],
        );
        let mut scratch = Scratch::new();
        let fx = run_compiled(
            &te,
            &record! {"a" => Value::Int(3), "b" => Value::Int(1)},
            None,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(fx.forwards.len(), 1);
        assert_eq!(fx.forwards[0].get("x"), Some(&Value::Int(30)));
        assert_eq!(fx.forwards[0].len(), 1);
    }

    #[test]
    fn early_return_suppresses_forwarding() {
        let te = compile_of(
            "void f(int a) { if (a < 0) { return; } let x = a; }",
            &["x"],
        );
        let mut scratch = Scratch::new();
        let fx = run_compiled(&te, &record! {"a" => Value::Int(-1)}, None, &mut scratch).unwrap();
        assert!(fx.forwards.is_empty());
        let fx = run_compiled(&te, &record! {"a" => Value::Int(1)}, None, &mut scratch).unwrap();
        assert_eq!(fx.forwards.len(), 1);
    }

    #[test]
    fn helper_calls_and_recursion() {
        let te = compile_of(
            "int fac(int x) { if (x <= 1) { return 1; } return x * fac(x - 1); }\n\
             void f(int a) { emit fac(a); }",
            &[],
        );
        let mut scratch = Scratch::new();
        let fx = run_compiled(&te, &record! {"a" => Value::Int(5)}, None, &mut scratch).unwrap();
        assert_eq!(fx.emits, vec![Value::Int(120)]);
        // The frame pool holds the recursion depth's frames for reuse.
        assert!(!scratch.frame_pool.is_empty());
        let fx = run_compiled(&te, &record! {"a" => Value::Int(3)}, None, &mut scratch).unwrap();
        assert_eq!(fx.emits, vec![Value::Int(6)]);
    }

    #[test]
    fn table_state_calls() {
        let te = compile_of(
            "Table t;\n\
             void f(int k) {\n\
               t.put(k, 10);\n\
               t.inc(k, 5);\n\
               emit t.get(k);\n\
               emit t.get(999);\n\
               emit t.size();\n\
             }",
            &[],
        );
        let mut store = StateStore::new(StateType::Table);
        let mut scratch = Scratch::new();
        let fx = run_compiled(
            &te,
            &record! {"k" => Value::Int(1)},
            Some(&mut store),
            &mut scratch,
        )
        .unwrap();
        assert_eq!(fx.emits, vec![Value::Int(15), Value::Null, Value::Int(1)]);
    }

    #[test]
    fn unbound_variable_and_missing_live_var_errors_match_reference() {
        let te = compile_of("void f(int a) { emit a; }", &[]);
        let err = run_compiled(&te, &Record::new(), None, &mut Scratch::new()).unwrap_err();
        assert!(err.to_string().contains("unbound variable `a`"), "{err}");

        let te = compile_of("void f(int a) { if (a < 0) { let x = a; } }", &["x"]);
        let err = run_compiled(
            &te,
            &record! {"a" => Value::Int(1)},
            None,
            &mut Scratch::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("live variable `x`"), "{err}");
    }

    #[test]
    fn runaway_loop_hits_step_budget() {
        let te = compile_of("void f(int a) { while (true) { a = a + 1; } }", &[]);
        let err = run_compiled(
            &te,
            &record! {"a" => Value::Int(0)},
            None,
            &mut Scratch::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("step budget"), "{err}");
    }

    #[test]
    fn state_access_without_store_is_an_error() {
        let te = compile_of("Table t;\nvoid f(int k) { t.put(k, 1); }", &[]);
        let err = run_compiled(
            &te,
            &record! {"k" => Value::Int(1)},
            None,
            &mut Scratch::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("without a state element"), "{err}");
    }

    #[test]
    fn unreferenced_input_fields_are_dropped_like_the_reference() {
        // Reference semantics: unreferenced inputs sit in the env but are
        // only forwarded when listed as output vars; here `extra` is
        // neither referenced nor live, so both engines drop it.
        let te = compile_of("void f(int a) { let x = a; }", &["x"]);
        let fx = run_compiled(
            &te,
            &record! {"a" => Value::Int(1), "extra" => Value::Int(9)},
            None,
            &mut Scratch::new(),
        )
        .unwrap();
        assert_eq!(fx.forwards[0].len(), 1);
        assert_eq!(fx.forwards[0].get("extra"), None);
    }
}

//! A scheduled stateless batch engine for iterative jobs (Fig. 9).
//!
//! Models Spark's execution of batch logistic regression: every iteration
//! schedules one task per partition (paying a task-launch cost each time,
//! because tasks are not materialised across iterations), tasks are
//! stateless (the weight vector is broadcast and gradients come back as
//! fresh immutable arrays), and a reduce step folds the partial gradients.
//!
//! The SDG counterpart keeps its TEs materialised and pipelined, so it
//! skips the per-iteration re-instantiation — the gap Fig. 9 shows.

use std::sync::Arc;
use std::time::{Duration, Instant};

use sdg_common::obs::{MetricsRegistry, MetricsSnapshot, TaskInstruments};

/// One labelled example.
#[derive(Debug, Clone)]
pub struct Example {
    /// Feature vector.
    pub features: Vec<f64>,
    /// Label in `{-1.0, +1.0}`.
    pub label: f64,
}

/// Configuration of the Spark-like engine.
#[derive(Debug, Clone)]
pub struct SparkLikeConfig {
    /// Simulated nodes (worker threads).
    pub nodes: usize,
    /// Task-launch overhead paid per task per iteration.
    pub task_launch: Duration,
    /// Modelled per-example processing cost on a node (zero = only the
    /// real gradient math). Lets comparisons against other engines use the
    /// same record service time.
    pub per_example: Duration,
    /// Learning rate.
    pub learning_rate: f64,
}

impl Default for SparkLikeConfig {
    fn default() -> Self {
        SparkLikeConfig {
            nodes: 4,
            task_launch: Duration::from_micros(500),
            per_example: Duration::ZERO,
            learning_rate: 0.1,
        }
    }
}

/// Result of a logistic regression run.
#[derive(Debug, Clone)]
pub struct LrRunStats {
    /// Final weights.
    pub weights: Vec<f64>,
    /// Wall-clock time for all iterations.
    pub elapsed: Duration,
    /// Bytes of training data touched per iteration.
    pub bytes_per_iteration: usize,
    /// Throughput in bytes/second across the whole run.
    pub throughput_bps: f64,
}

/// Batch logistic regression on the scheduled stateless engine.
#[derive(Debug)]
pub struct SparkLikeLogisticRegression {
    cfg: SparkLikeConfig,
    obs: MetricsRegistry,
    iter_task: Arc<TaskInstruments>,
}

impl SparkLikeLogisticRegression {
    /// Creates an engine.
    pub fn new(cfg: SparkLikeConfig) -> Self {
        let obs = MetricsRegistry::new();
        let iter_task = obs.task("iteration");
        iter_task.instances.set(cfg.nodes as u64);
        // The broadcast weight vector is the engine's only "state"; it is
        // rebuilt (not mutated) every iteration, which is the point of the
        // comparison.
        obs.state("weights").instances.set(1);
        SparkLikeLogisticRegression {
            cfg,
            obs,
            iter_task,
        }
    }

    /// Freezes the engine's instruments into the shared snapshot schema.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.obs.snapshot()
    }

    /// Runs `iterations` of gradient descent over `partitions` of examples.
    ///
    /// # Panics
    ///
    /// Panics if there are no partitions or all partitions are empty.
    pub fn run(&self, partitions: &[Vec<Example>], iterations: usize) -> LrRunStats {
        let dims = partitions
            .iter()
            .flat_map(|p| p.first())
            .map(|e| e.features.len())
            .max()
            .expect("non-empty dataset");
        let total_examples: usize = partitions.iter().map(Vec::len).sum();
        assert!(total_examples > 0, "non-empty dataset");
        let bytes_per_iteration = total_examples * dims * 8;

        let mut weights = vec![0.0f64; dims];
        self.obs.state("weights").bytes.set((dims * 8) as u64);
        let start = Instant::now();
        for _ in 0..iterations {
            let iter_start = Instant::now();
            // Schedule: one fresh task per partition per node slot; each
            // launch pays the fixed cost (tasks are not reused).
            let gradients: Vec<Vec<f64>> = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for chunk in partitions.chunks(partitions.len().div_ceil(self.cfg.nodes)) {
                    let weights = weights.clone(); // Broadcast.
                    let task_launch = self.cfg.task_launch;
                    let per_example = self.cfg.per_example;
                    handles.push(scope.spawn(move || {
                        let mut grad = vec![0.0f64; weights.len()];
                        for partition in chunk {
                            // Per-task launch cost, once per partition.
                            spin_sleep(task_launch);
                            // Modelled record service time, paid per record
                            // exactly as the SDG runtime pays it, so both
                            // engines share the same service-time model.
                            if !per_example.is_zero() {
                                for _ in 0..partition.len() {
                                    std::thread::sleep(per_example);
                                }
                            }
                            // Stateless gradient task: reads the broadcast
                            // weights, emits a fresh gradient array.
                            accumulate_gradient(&weights, partition, &mut grad);
                        }
                        grad
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("task"))
                    .collect()
            });
            // Reduce: fold the partial gradients into new weights (a new
            // immutable vector each iteration).
            let mut next = weights.clone();
            for grad in gradients {
                for (w, g) in next.iter_mut().zip(grad) {
                    *w += self.cfg.learning_rate * g / total_examples as f64;
                }
            }
            weights = next;
            self.iter_task.items_in.add(total_examples as u64);
            self.iter_task.processed.add(total_examples as u64);
            self.iter_task.service.record_duration(iter_start.elapsed());
            // Each iteration replaces the broadcast state wholesale — the
            // stateless engine's analogue of a checkpointed version.
            self.obs.state("weights").checkpoints.inc();
        }
        let elapsed = start.elapsed();
        LrRunStats {
            weights,
            elapsed,
            bytes_per_iteration,
            throughput_bps: (bytes_per_iteration * iterations) as f64 / elapsed.as_secs_f64(),
        }
    }
}

/// Adds the logistic-loss gradient of `examples` at `weights` into `grad`.
pub fn accumulate_gradient(weights: &[f64], examples: &[Example], grad: &mut [f64]) {
    for ex in examples {
        let margin: f64 = weights
            .iter()
            .zip(&ex.features)
            .map(|(w, x)| w * x)
            .sum::<f64>()
            * ex.label;
        let coeff = ex.label * (1.0 / (1.0 + margin.exp()));
        for (g, x) in grad.iter_mut().zip(&ex.features) {
            *g += coeff * x;
        }
    }
}

/// Generates a deterministic synthetic dataset with a known separating
/// direction, split into `partitions` parts.
pub fn synthetic_dataset(
    examples: usize,
    dims: usize,
    partitions: usize,
    seed: u64,
) -> Vec<Vec<Example>> {
    let mut out: Vec<Vec<Example>> = (0..partitions).map(|_| Vec::new()).collect();
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        // xorshift64*; deterministic and dependency-free.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    for i in 0..examples {
        let features: Vec<f64> = (0..dims)
            .map(|_| (next() % 2_000) as f64 / 1_000.0 - 1.0)
            .collect();
        // True separator: sum of features.
        let label = if features.iter().sum::<f64>() >= 0.0 {
            1.0
        } else {
            -1.0
        };
        out[i % partitions].push(Example { features, label });
    }
    out
}

fn spin_sleep(d: Duration) {
    if d > Duration::from_micros(200) {
        std::thread::sleep(d);
    } else {
        let end = Instant::now() + d;
        while Instant::now() < end {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_descent_learns_the_separator() {
        let data = synthetic_dataset(2_000, 8, 4, 7);
        let engine = SparkLikeLogisticRegression::new(SparkLikeConfig {
            nodes: 2,
            task_launch: Duration::from_micros(10),
            per_example: Duration::ZERO,
            learning_rate: 1.0,
        });
        let stats = engine.run(&data, 30);
        // The learned weights must classify most of the training set.
        let correct: usize = data
            .iter()
            .flatten()
            .filter(|ex| {
                let score: f64 = stats
                    .weights
                    .iter()
                    .zip(&ex.features)
                    .map(|(w, x)| w * x)
                    .sum();
                (score >= 0.0) == (ex.label > 0.0)
            })
            .count();
        let total: usize = data.iter().map(Vec::len).sum();
        assert!(
            correct as f64 / total as f64 > 0.9,
            "accuracy {}/{total}",
            correct
        );
        assert!(stats.throughput_bps > 0.0);
        let snap = engine.metrics();
        let iter = snap.task("iteration").expect("iteration task stats");
        assert_eq!(iter.processed, 2_000 * 30);
        assert_eq!(iter.service.count, 30);
        let weights = snap.state("weights").expect("weights state stats");
        assert_eq!(weights.checkpoints, 30, "one broadcast per iteration");
        assert_eq!(weights.bytes, 8 * 8);
    }

    #[test]
    fn task_launch_overhead_slows_iterations() {
        let data = synthetic_dataset(200, 4, 8, 3);
        let fast = SparkLikeLogisticRegression::new(SparkLikeConfig {
            nodes: 2,
            task_launch: Duration::from_micros(1),
            per_example: Duration::ZERO,
            learning_rate: 0.1,
        })
        .run(&data, 10);
        let slow = SparkLikeLogisticRegression::new(SparkLikeConfig {
            nodes: 2,
            task_launch: Duration::from_millis(2),
            per_example: Duration::ZERO,
            learning_rate: 0.1,
        })
        .run(&data, 10);
        assert!(slow.elapsed > fast.elapsed);
        assert!(slow.throughput_bps < fast.throughput_bps);
    }

    #[test]
    fn dataset_is_deterministic_and_partitioned() {
        let a = synthetic_dataset(100, 4, 3, 42);
        let b = synthetic_dataset(100, 4, 3, 42);
        assert_eq!(a.len(), 3);
        assert_eq!(a.iter().map(Vec::len).sum::<usize>(), 100);
        for (pa, pb) in a.iter().zip(&b) {
            for (ea, eb) in pa.iter().zip(pb) {
                assert_eq!(ea.features, eb.features);
                assert_eq!(ea.label, eb.label);
            }
        }
        let c = synthetic_dataset(100, 4, 3, 43);
        assert_ne!(
            a[0][0].features, c[0][0].features,
            "different seeds must differ"
        );
    }

    #[test]
    fn more_nodes_speed_up_the_run() {
        let data = synthetic_dataset(6_000, 16, 8, 5);
        let one = SparkLikeLogisticRegression::new(SparkLikeConfig {
            nodes: 1,
            task_launch: Duration::from_micros(50),
            per_example: Duration::from_micros(5),
            learning_rate: 0.1,
        })
        .run(&data, 5);
        let four = SparkLikeLogisticRegression::new(SparkLikeConfig {
            nodes: 4,
            task_launch: Duration::from_micros(50),
            per_example: Duration::from_micros(5),
            learning_rate: 0.1,
        })
        .run(&data, 5);
        assert!(
            four.elapsed < one.elapsed,
            "parallel run must be faster: {:?} vs {:?}",
            four.elapsed,
            one.elapsed
        );
    }
}

//! Comparison engines for the paper's evaluation (Table 1, Figs 6, 8, 9, 12).
//!
//! Three miniature engines reproduce the *architectural* behaviour of the
//! systems the paper compares against — enough to regenerate the shape of
//! each figure, with the same workload code paths as the SDG runtime:
//!
//! - [`microbatch`] — a Streaming-Spark-like discretised-stream engine:
//!   input is cut into window-sized batches, every batch is *scheduled*
//!   (per-batch task-launch overhead) and state is immutable, so each batch
//!   produces a new state version by copy-on-write. Below a minimum window
//!   the scheduling overhead exceeds the window and throughput collapses
//!   (Fig. 8).
//! - [`naiadlike`] — an engine with explicit per-task mutable state and
//!   configurable batch sizes, but **synchronous global checkpointing**:
//!   processing stops while the entire state is serialised and written out
//!   (Figs 6 and 12), either to a bandwidth-limited disk or to memory.
//! - [`sparklike`] — a scheduled stateless batch engine for iterative jobs:
//!   tasks are re-instantiated every iteration (launch overhead per task
//!   per iteration) and data structures are immutable (fresh allocations
//!   per iteration), the behaviour Fig. 9 contrasts with SDG pipelining.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod microbatch;
pub mod naiadlike;
pub mod sparklike;

pub use microbatch::MicroBatchWordCount;
pub use naiadlike::{NaiadCheckpointTarget, NaiadKvStore, NaiadWordCount};
pub use sparklike::SparkLikeLogisticRegression;

//! A discretised-stream (Streaming-Spark-like) wordcount engine.
//!
//! Input is divided into batches of one window's worth of items; each batch
//! is scheduled as a job (fixed task-launch overhead) and applied to an
//! **immutable** state: updating the word counts produces a new state
//! version by cloning the previous map (RDD semantics — "any modification
//! to state must be implemented as the creation of new immutable data",
//! §2.2). The trade-off of §6.1 follows: larger windows amortise overhead
//! and copying (higher throughput), but the smallest sustainable window is
//! bounded below by the per-batch cost.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sdg_common::obs::{MetricsRegistry, MetricsSnapshot, TaskInstruments};

/// Configuration of the micro-batch engine.
#[derive(Debug, Clone)]
pub struct MicroBatchConfig {
    /// Fixed scheduling cost per batch (driver planning + task launch).
    pub scheduling_overhead: Duration,
    /// Number of parallel tasks the batch is split into (each adds launch
    /// cost to the overhead but shares the per-item work).
    pub tasks_per_batch: usize,
    /// Modelled per-item processing cost (applied batched).
    pub per_item: Duration,
}

impl Default for MicroBatchConfig {
    fn default() -> Self {
        MicroBatchConfig {
            // The paper's Streaming Spark could not sustain windows below
            // 250 ms on a cluster; scaled to an in-process simulator we use
            // a few milliseconds of per-batch fixed cost.
            scheduling_overhead: Duration::from_millis(2),
            tasks_per_batch: 4,
            per_item: Duration::ZERO,
        }
    }
}

/// Result of processing one batch.
#[derive(Debug, Clone, Copy)]
pub struct BatchStats {
    /// Items in the batch.
    pub items: usize,
    /// Wall-clock processing time including scheduling overhead.
    pub elapsed: Duration,
}

/// The micro-batch wordcount engine.
#[derive(Debug)]
pub struct MicroBatchWordCount {
    cfg: MicroBatchConfig,
    /// Immutable state version; every batch replaces it wholesale.
    state: Arc<HashMap<String, u64>>,
    versions: u64,
    obs: MetricsRegistry,
    batch_task: Arc<TaskInstruments>,
}

impl MicroBatchWordCount {
    /// Creates an engine with the given configuration.
    pub fn new(cfg: MicroBatchConfig) -> Self {
        let obs = MetricsRegistry::new();
        let batch_task = obs.task("batch");
        batch_task.instances.set(cfg.tasks_per_batch as u64);
        obs.state("counts").instances.set(1);
        MicroBatchWordCount {
            cfg,
            state: Arc::new(HashMap::new()),
            versions: 0,
            obs,
            batch_task,
        }
    }

    /// Returns the current count of `word`.
    pub fn count(&self, word: &str) -> u64 {
        self.state.get(word).copied().unwrap_or(0)
    }

    /// Total distinct words tracked.
    pub fn distinct_words(&self) -> usize {
        self.state.len()
    }

    /// Number of state versions created (one per batch).
    pub fn versions(&self) -> u64 {
        self.versions
    }

    /// Freezes the engine's instruments into the shared snapshot schema.
    ///
    /// Every state version is a wholesale clone, so the `counts` SE's
    /// `checkpoints` counter doubles as the version count.
    pub fn metrics(&self) -> MetricsSnapshot {
        let s = self.obs.state("counts");
        s.instances.set(1);
        let bytes: usize = self.state.keys().map(|k| k.len() + 8).sum();
        s.bytes.set(bytes as u64);
        self.obs.snapshot()
    }

    /// Processes one batch of words, producing a new state version.
    pub fn process_batch(&mut self, words: &[String]) -> BatchStats {
        let start = Instant::now();
        // Scheduling: the driver plans the batch and launches its tasks.
        let overhead = self.cfg.scheduling_overhead
            + Duration::from_micros(50) * self.cfg.tasks_per_batch as u32;
        spin_sleep(overhead);
        if !self.cfg.per_item.is_zero() && !words.is_empty() {
            spin_sleep(self.cfg.per_item * words.len() as u32);
        }

        // Immutable update: clone the previous version, then apply.
        let mut next: HashMap<String, u64> = (*self.state).clone();
        for word in words {
            *next.entry(word.clone()).or_insert(0) += 1;
        }
        self.state = Arc::new(next);
        self.versions += 1;
        let elapsed = start.elapsed();
        self.batch_task.items_in.add(words.len() as u64);
        self.batch_task.processed.add(words.len() as u64);
        self.batch_task.service.record_duration(elapsed);
        self.obs.state("counts").checkpoints.inc();
        BatchStats {
            items: words.len(),
            elapsed,
        }
    }

    /// Measures the maximum sustainable input rate (items/s) at a given
    /// window size: the highest rate at which a window's batch completes
    /// within the window.
    ///
    /// Returns `None` when even a near-empty batch cannot finish within the
    /// window (the collapse region of Fig. 8).
    pub fn max_sustainable_rate(&mut self, window: Duration, vocab: &[String]) -> Option<f64> {
        // Probe batch sizes by doubling, then refine with bisection.
        let fits = |engine: &mut Self, n: usize| -> bool {
            let words: Vec<String> = (0..n).map(|i| vocab[i % vocab.len()].clone()).collect();
            let stats = engine.process_batch(&words);
            stats.elapsed <= window
        };
        if !fits(self, 1) {
            return None;
        }
        let mut lo = 1usize;
        let mut hi = 2usize;
        while fits(self, hi) {
            lo = hi;
            hi *= 2;
            if hi > 4_000_000 {
                break;
            }
        }
        // Bisect between lo (fits) and hi (does not).
        while hi - lo > lo / 8 + 1 {
            let mid = lo + (hi - lo) / 2;
            if fits(self, mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(lo as f64 / window.as_secs_f64())
    }
}

/// Sleeps (or spins for short waits) to model fixed scheduling cost.
fn spin_sleep(d: Duration) {
    if d > Duration::from_micros(200) {
        std::thread::sleep(d);
    } else {
        let end = Instant::now() + d;
        while Instant::now() < end {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("w{}", i % 10)).collect()
    }

    #[test]
    fn batches_update_counts() {
        let mut e = MicroBatchWordCount::new(MicroBatchConfig {
            scheduling_overhead: Duration::from_micros(10),
            tasks_per_batch: 1,
            per_item: Duration::ZERO,
        });
        e.process_batch(&words(20));
        assert_eq!(e.count("w0"), 2);
        assert_eq!(e.count("w9"), 2);
        assert_eq!(e.count("nope"), 0);
        assert_eq!(e.distinct_words(), 10);
        e.process_batch(&words(10));
        assert_eq!(e.count("w0"), 3);
        assert_eq!(e.versions(), 2);
        let snap = e.metrics();
        let batch = snap.task("batch").expect("batch task stats");
        assert_eq!(batch.processed, 30);
        assert_eq!(batch.service.count, 2);
        let counts = snap.state("counts").expect("counts state stats");
        assert_eq!(counts.checkpoints, 2, "one version clone per batch");
        assert!(counts.bytes > 0);
    }

    #[test]
    fn each_batch_pays_scheduling_overhead() {
        let mut e = MicroBatchWordCount::new(MicroBatchConfig {
            scheduling_overhead: Duration::from_millis(3),
            tasks_per_batch: 1,
            per_item: Duration::ZERO,
        });
        let stats = e.process_batch(&words(1));
        assert!(stats.elapsed >= Duration::from_millis(3));
    }

    #[test]
    fn tiny_windows_are_unsustainable() {
        let mut e = MicroBatchWordCount::new(MicroBatchConfig {
            scheduling_overhead: Duration::from_millis(5),
            tasks_per_batch: 2,
            per_item: Duration::ZERO,
        });
        let vocab = words(10);
        assert!(e
            .max_sustainable_rate(Duration::from_millis(1), &vocab)
            .is_none());
    }

    #[test]
    fn larger_windows_sustain_higher_rates() {
        let mut e = MicroBatchWordCount::new(MicroBatchConfig {
            scheduling_overhead: Duration::from_micros(500),
            tasks_per_batch: 1,
            per_item: Duration::ZERO,
        });
        let vocab = words(10);
        let small = e
            .max_sustainable_rate(Duration::from_millis(2), &vocab)
            .unwrap_or(0.0);
        let mut e2 = MicroBatchWordCount::new(MicroBatchConfig {
            scheduling_overhead: Duration::from_micros(500),
            tasks_per_batch: 1,
            per_item: Duration::ZERO,
        });
        let large = e2
            .max_sustainable_rate(Duration::from_millis(50), &vocab)
            .unwrap_or(0.0);
        assert!(
            large > small,
            "throughput must grow with window size: {small} vs {large}"
        );
    }
}

//! An engine with explicit task state but synchronous global checkpoints.
//!
//! Models the open-source Naiad v0.2 configuration the paper compares
//! against (§6.1): state is mutable and per-task (no copy-on-write cost),
//! input is processed in fixed-size batches with a small per-batch
//! coordination cost, and fault tolerance is **stop-the-world**: at every
//! checkpoint interval, processing halts while the *entire* state is
//! serialised and written to the checkpoint target — a bandwidth-limited
//! disk (`Naiad-Disk`) or memory (`Naiad-NoDisk`).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sdg_common::metrics::Histogram;
use sdg_common::obs::{EventKind, MetricsRegistry, MetricsSnapshot, TaskInstruments};

/// Where synchronous checkpoints are written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NaiadCheckpointTarget {
    /// No fault tolerance at all.
    None,
    /// Checkpoints kept in memory (RAM disk): serialisation cost only.
    Memory,
    /// Checkpoints written through a simulated disk with the given
    /// bandwidth in bytes/second.
    Disk {
        /// Write bandwidth of the simulated disk.
        write_bps: u64,
    },
}

/// Configuration of the Naiad-like engine.
#[derive(Debug, Clone)]
pub struct NaiadConfig {
    /// Items per scheduled batch (1 000 for the paper's low-latency
    /// configuration, 20 000 for high throughput).
    pub batch_size: usize,
    /// Fixed coordination cost per batch.
    pub batch_overhead: Duration,
    /// Interval between synchronous global checkpoints.
    pub checkpoint_interval: Duration,
    /// Checkpoint target.
    pub target: NaiadCheckpointTarget,
    /// Modelled per-request service time (applied batched, so batching
    /// amortises nothing of it — it is the work itself). Zero = raw speed.
    pub per_request: Duration,
}

impl Default for NaiadConfig {
    fn default() -> Self {
        NaiadConfig {
            batch_size: 1_000,
            batch_overhead: Duration::from_micros(300),
            checkpoint_interval: Duration::from_secs(10),
            target: NaiadCheckpointTarget::Memory,
            per_request: Duration::ZERO,
        }
    }
}

/// A key/value store running on the Naiad-like engine (Figs 6 and 12).
#[derive(Debug)]
pub struct NaiadKvStore {
    cfg: NaiadConfig,
    state: HashMap<i64, Vec<u8>>,
    state_bytes: usize,
    last_checkpoint: Instant,
    pending: Vec<(i64, Vec<u8>)>,
    /// Instrument registry; reports through the same snapshot schema as
    /// the SDG runtime and the other baselines.
    obs: MetricsRegistry,
    update_task: Arc<TaskInstruments>,
    get_task: Arc<TaskInstruments>,
}

impl NaiadKvStore {
    /// Creates a store with the given configuration.
    pub fn new(cfg: NaiadConfig) -> Self {
        let obs = MetricsRegistry::new();
        let update_task = obs.task("update");
        let get_task = obs.task("get");
        obs.state("kv").instances.set(1);
        NaiadKvStore {
            cfg,
            state: HashMap::new(),
            state_bytes: 0,
            last_checkpoint: Instant::now(),
            pending: Vec::new(),
            obs,
            update_task,
            get_task,
        }
    }

    /// Approximate state size in bytes.
    pub fn state_bytes(&self) -> usize {
        self.state_bytes
    }

    /// Number of synchronous checkpoints taken so far.
    pub fn checkpoints_taken(&self) -> u64 {
        self.obs.checkpoints().taken.get()
    }

    /// Per-request latencies (batching delay + processing + checkpoint
    /// stalls show up here). The same histogram feeds the snapshot's
    /// `e2e_latency` summary.
    pub fn latencies(&self) -> &Histogram {
        self.obs.e2e_latency()
    }

    /// Resets timing histograms after warm-up, keeping counters.
    pub fn reset_observations(&self) {
        self.obs.reset_observations();
    }

    /// Freezes the engine's instruments into the shared snapshot schema.
    pub fn metrics(&self) -> MetricsSnapshot {
        let s = self.obs.state("kv");
        s.instances.set(1);
        s.bytes.set(self.state_bytes as u64);
        self.update_task.queue_depth.set(self.pending.len() as u64);
        self.obs.snapshot()
    }

    /// Reads a key (served from mutable state, no batching).
    pub fn get(&self, key: i64) -> Option<&[u8]> {
        self.get_task.items_in.inc();
        self.get_task.processed.inc();
        self.state.get(&key).map(Vec::as_slice)
    }

    /// Enqueues an update; the batch executes when full. Returns the batch
    /// stats when a batch was flushed.
    pub fn update(&mut self, key: i64, value: Vec<u8>) -> Option<Duration> {
        self.update_task.items_in.inc();
        self.pending.push((key, value));
        if self.pending.len() >= self.cfg.batch_size {
            Some(self.flush())
        } else {
            None
        }
    }

    /// Flushes any pending batch, returning its processing time.
    pub fn flush(&mut self) -> Duration {
        let start = Instant::now();
        spin_sleep(self.cfg.batch_overhead);
        let batch = std::mem::take(&mut self.pending);
        let n = batch.len();
        if !self.cfg.per_request.is_zero() && n > 0 {
            spin_sleep(self.cfg.per_request * n as u32);
        }
        for (key, value) in batch {
            let old = self.state.insert(key, value);
            if let Some(old) = old {
                self.state_bytes -= old.len();
            } else {
                self.state_bytes += 8;
            }
            self.state_bytes += self.state[&key].len();
        }
        // Stop-the-world checkpoint when due: nothing else runs until the
        // full state has been serialised (and written).
        if self.cfg.target != NaiadCheckpointTarget::None
            && self.last_checkpoint.elapsed() >= self.cfg.checkpoint_interval
        {
            self.synchronous_checkpoint();
        }
        let elapsed = start.elapsed();
        // All requests in the batch observe the batch's full latency.
        self.update_task.service.record_duration(elapsed);
        self.update_task.processed.add(n as u64);
        let per_request = elapsed;
        for _ in 0..n {
            self.update_task.latency.record_duration(per_request);
            self.obs.e2e_latency().record_duration(per_request);
        }
        elapsed
    }

    /// Serialises the entire state and writes it to the target, stopping
    /// the world for the duration. Returns the pause length.
    pub fn synchronous_checkpoint(&mut self) -> Duration {
        let start = Instant::now();
        let seq = self.obs.checkpoints().taken.get();
        self.obs.record_event(EventKind::CheckpointBegin {
            instance: "kv#0".to_string(),
            seq,
        });
        // Serialise everything (real work proportional to state size).
        let mut snapshot = Vec::with_capacity(self.state_bytes + self.state.len() * 16);
        for (k, v) in &self.state {
            snapshot.extend_from_slice(&k.to_le_bytes());
            snapshot.extend_from_slice(&(v.len() as u64).to_le_bytes());
            snapshot.extend_from_slice(v);
        }
        if let NaiadCheckpointTarget::Disk { write_bps } = self.cfg.target {
            if write_bps > 0 {
                let secs = snapshot.len() as f64 / write_bps as f64;
                std::thread::sleep(Duration::from_secs_f64(secs));
            }
        }
        std::hint::black_box(&snapshot);
        self.last_checkpoint = Instant::now();
        let elapsed = start.elapsed();
        let ckpt = self.obs.checkpoints();
        ckpt.taken.inc();
        ckpt.bytes.add(snapshot.len() as u64);
        // A stop-the-world checkpoint is all barrier: the whole pause is
        // spent synchronised, which is what the sync-phase timer captures.
        ckpt.sync_ns.record_duration(elapsed);
        self.obs.state("kv").checkpoints.inc();
        self.obs.record_event(EventKind::CheckpointBackup {
            instance: "kv#0".to_string(),
            seq,
            bytes: snapshot.len() as u64,
        });
        elapsed
    }
}

/// A wordcount on the Naiad-like engine (Fig. 8).
///
/// Batches have a fixed message count; a window is sustainable only when a
/// full batch completes within it.
#[derive(Debug)]
pub struct NaiadWordCount {
    cfg: NaiadConfig,
    counts: HashMap<String, u64>,
    obs: MetricsRegistry,
    count_task: Arc<TaskInstruments>,
}

impl NaiadWordCount {
    /// Creates a wordcount with the given configuration.
    pub fn new(cfg: NaiadConfig) -> Self {
        let obs = MetricsRegistry::new();
        let count_task = obs.task("count");
        obs.state("counts").instances.set(1);
        NaiadWordCount {
            cfg,
            counts: HashMap::new(),
            obs,
            count_task,
        }
    }

    /// Returns the count of `word`.
    pub fn count(&self, word: &str) -> u64 {
        self.counts.get(word).copied().unwrap_or(0)
    }

    /// Freezes the engine's instruments into the shared snapshot schema.
    pub fn metrics(&self) -> MetricsSnapshot {
        let s = self.obs.state("counts");
        s.instances.set(1);
        // Count table footprint: key characters plus an 8-byte counter.
        let bytes: usize = self.counts.keys().map(|k| k.len() + 8).sum();
        s.bytes.set(bytes as u64);
        self.obs.snapshot()
    }

    /// Processes one batch (of the configured size) drawn from `vocab`,
    /// returning the batch latency.
    pub fn process_one_batch(&mut self, vocab: &[String]) -> Duration {
        let start = Instant::now();
        spin_sleep(self.cfg.batch_overhead);
        if !self.cfg.per_request.is_zero() {
            spin_sleep(self.cfg.per_request * self.cfg.batch_size as u32);
        }
        for i in 0..self.cfg.batch_size {
            let word = &vocab[i % vocab.len()];
            *self.counts.entry(word.clone()).or_insert(0) += 1;
        }
        let elapsed = start.elapsed();
        self.count_task.items_in.add(self.cfg.batch_size as u64);
        self.count_task.processed.add(self.cfg.batch_size as u64);
        self.count_task.service.record_duration(elapsed);
        elapsed
    }

    /// Returns the throughput (items/s) when the window admits the batch
    /// latency, or `None` when the window is smaller than one batch's
    /// processing time (unsustainable, as in Fig. 8).
    pub fn sustainable_throughput(&mut self, window: Duration, vocab: &[String]) -> Option<f64> {
        // Take the median of several batches to de-noise.
        let mut samples: Vec<Duration> = (0..5).map(|_| self.process_one_batch(vocab)).collect();
        samples.sort();
        let latency = samples[samples.len() / 2];
        if latency > window {
            return None;
        }
        Some(self.cfg.batch_size as f64 / latency.as_secs_f64())
    }
}

fn spin_sleep(d: Duration) {
    if d > Duration::from_micros(200) {
        std::thread::sleep(d);
    } else {
        let end = Instant::now() + d;
        while Instant::now() < end {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_updates_apply_in_batches() {
        let mut kv = NaiadKvStore::new(NaiadConfig {
            batch_size: 3,
            batch_overhead: Duration::from_micros(10),
            checkpoint_interval: Duration::from_secs(3600),
            target: NaiadCheckpointTarget::None,
            per_request: Duration::ZERO,
        });
        assert!(kv.update(1, vec![1]).is_none());
        assert!(kv.update(2, vec![2]).is_none());
        assert!(kv.get(1).is_none(), "not yet flushed");
        assert!(kv.update(3, vec![3]).is_some());
        assert_eq!(kv.get(1), Some(&[1u8][..]));
        assert_eq!(kv.latencies().count(), 3);
        assert!(kv.state_bytes() > 0);
        let snap = kv.metrics();
        let update = snap.task("update").expect("update task stats");
        assert_eq!(update.items_in, 3);
        assert_eq!(update.processed, 3);
        assert_eq!(snap.task("get").expect("get task stats").items_in, 2);
        assert!(snap.state("kv").expect("kv state stats").bytes > 0);
    }

    #[test]
    fn overwrites_keep_byte_accounting_consistent() {
        let mut kv = NaiadKvStore::new(NaiadConfig {
            batch_size: 1,
            batch_overhead: Duration::ZERO,
            checkpoint_interval: Duration::from_secs(3600),
            target: NaiadCheckpointTarget::None,
            per_request: Duration::ZERO,
        });
        kv.update(1, vec![0; 100]);
        let b1 = kv.state_bytes();
        kv.update(1, vec![0; 10]);
        assert_eq!(kv.state_bytes(), b1 - 90);
    }

    #[test]
    fn checkpoint_pause_grows_with_state() {
        let mut kv = NaiadKvStore::new(NaiadConfig {
            batch_size: 100,
            batch_overhead: Duration::ZERO,
            checkpoint_interval: Duration::from_secs(3600),
            target: NaiadCheckpointTarget::Memory,
            per_request: Duration::ZERO,
        });
        for i in 0..200 {
            kv.update(i, vec![0; 1024]);
        }
        let small = kv.synchronous_checkpoint();
        for i in 0..20_000 {
            kv.update(i, vec![0; 1024]);
        }
        let large = kv.synchronous_checkpoint();
        assert!(large > small, "{small:?} vs {large:?}");
        assert_eq!(kv.checkpoints_taken(), 2);
    }

    #[test]
    fn disk_target_is_slower_than_memory() {
        let make = |target| {
            let mut kv = NaiadKvStore::new(NaiadConfig {
                batch_size: 100,
                batch_overhead: Duration::ZERO,
                checkpoint_interval: Duration::from_secs(3600),
                target,
                per_request: Duration::ZERO,
            });
            for i in 0..1_000 {
                kv.update(i, vec![0; 512]);
            }
            kv.synchronous_checkpoint()
        };
        let memory = make(NaiadCheckpointTarget::Memory);
        let disk = make(NaiadCheckpointTarget::Disk {
            write_bps: 10_000_000,
        });
        assert!(disk > memory, "{memory:?} vs {disk:?}");
    }

    #[test]
    fn wordcount_batches_count_correctly() {
        let vocab: Vec<String> = (0..4).map(|i| format!("w{i}")).collect();
        let mut wc = NaiadWordCount::new(NaiadConfig {
            batch_size: 8,
            batch_overhead: Duration::from_micros(10),
            ..NaiadConfig::default()
        });
        wc.process_one_batch(&vocab);
        assert_eq!(wc.count("w0"), 2);
        assert_eq!(wc.count("w3"), 2);
    }

    #[test]
    fn windows_below_batch_latency_are_unsustainable() {
        let vocab: Vec<String> = (0..4).map(|i| format!("w{i}")).collect();
        let mut wc = NaiadWordCount::new(NaiadConfig {
            batch_size: 20_000,
            batch_overhead: Duration::from_millis(2),
            ..NaiadConfig::default()
        });
        assert!(wc
            .sustainable_throughput(Duration::from_micros(100), &vocab)
            .is_none());
        assert!(wc
            .sustainable_throughput(Duration::from_secs(5), &vocab)
            .is_some());
    }
}

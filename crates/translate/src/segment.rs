//! Cutting a method body into task-element segments (§4.2 step 4).

use std::collections::HashSet;

use sdg_common::error::{SdgError, SdgResult};
use sdg_ir::analysis::access::{analyze_method_accesses, AccessKind, StmtAccesses};
use sdg_ir::ast::{Expr, ExprKind, Method, Program, Stmt, StmtKind};

/// The state context a segment executes in: which SE its TE may access, and
/// how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentCtx {
    /// No state access.
    Stateless,
    /// Access to an unannotated (single-instance) SE.
    Local {
        /// Accessed field.
        field: String,
    },
    /// Keyed access to a partitioned SE.
    Partitioned {
        /// Accessed field.
        field: String,
        /// Resolved access-key variable.
        key: String,
    },
    /// Access to the local instance of a partial SE.
    PartialLocal {
        /// Accessed field.
        field: String,
    },
    /// `@Global` access to all instances of a partial SE.
    Global {
        /// Accessed field.
        field: String,
    },
}

impl SegmentCtx {
    /// Returns the accessed field, if any.
    pub fn field(&self) -> Option<&str> {
        match self {
            SegmentCtx::Stateless => None,
            SegmentCtx::Local { field }
            | SegmentCtx::Partitioned { field, .. }
            | SegmentCtx::PartialLocal { field }
            | SegmentCtx::Global { field } => Some(field),
        }
    }
}

/// One contiguous run of statements assigned to a single task element.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Statement indices (into the method body) in this segment.
    pub stmt_range: std::ops::Range<usize>,
    /// The segment's state context.
    pub ctx: SegmentCtx,
    /// Whether any access in the segment writes state.
    pub writes: bool,
    /// When the segment starts with a `@Collection var` consumption, the
    /// collected partial variable (its input edge is all-to-one).
    pub collects: Option<String>,
    /// Partial variables defined in this segment (by `@Partial let`).
    pub defines_partial: Vec<String>,
}

/// Derives the context demanded by one statement from its accesses.
fn stmt_ctx(stmt_idx: usize, acc: &StmtAccesses, method: &Method) -> SdgResult<SegmentCtx> {
    if acc.accesses.is_empty() {
        return Ok(SegmentCtx::Stateless);
    }
    let fields: HashSet<&str> = acc.accesses.iter().map(|a| a.field.as_str()).collect();
    if fields.len() > 1 {
        let mut names: Vec<&str> = fields.into_iter().collect();
        names.sort_unstable();
        let span = method.body[stmt_idx].span;
        return Err(SdgError::Translate(format!(
            "statement at {span} in `{}` accesses multiple state elements {{{}}}; \
             a task element may access only one — split the statement",
            method.name,
            names.join(", ")
        )));
    }
    // A partitioned access key defined inside the statement itself (e.g. a
    // foreach variable) cannot drive dataflow dispatching: the key does not
    // exist until the statement runs. Such programs must emit one item per
    // key instead (rule 2 requires the key on the edge).
    let inner_defs = vars_defined_inside(&method.body[stmt_idx]);
    for access in &acc.accesses {
        if let AccessKind::Partitioned { key_var } = &access.kind {
            if inner_defs.contains(key_var) {
                return Err(SdgError::Translate(format!(
                    "access key `{key_var}` for `{}` at {} is defined inside the \
                     statement; restructure the program so each dataflow item \
                     carries its partition key",
                    access.field, access.span
                )));
            }
        }
    }
    let first = &acc.accesses[0];
    let mut ctx = match &first.kind {
        AccessKind::Local => SegmentCtx::Local {
            field: first.field.clone(),
        },
        AccessKind::Partitioned { key_var } => SegmentCtx::Partitioned {
            field: first.field.clone(),
            key: key_var.clone(),
        },
        AccessKind::PartialLocal => SegmentCtx::PartialLocal {
            field: first.field.clone(),
        },
        AccessKind::Global => SegmentCtx::Global {
            field: first.field.clone(),
        },
    };
    for access in &acc.accesses[1..] {
        let other = match &access.kind {
            AccessKind::Local => SegmentCtx::Local {
                field: access.field.clone(),
            },
            AccessKind::Partitioned { key_var } => SegmentCtx::Partitioned {
                field: access.field.clone(),
                key: key_var.clone(),
            },
            AccessKind::PartialLocal => SegmentCtx::PartialLocal {
                field: access.field.clone(),
            },
            AccessKind::Global => SegmentCtx::Global {
                field: access.field.clone(),
            },
        };
        if other != ctx {
            let span = method.body[stmt_idx].span;
            return Err(SdgError::Translate(format!(
                "statement at {span} in `{}` accesses `{}` with two different access \
                 patterns ({ctx:?} vs {other:?}); split the statement",
                method.name, first.field
            )));
        }
        ctx = other;
    }
    Ok(ctx)
}

/// Returns the `@Collection` variable consumed by a statement, if any.
fn collection_var(stmt: &Stmt) -> Option<String> {
    let mut found = None;
    let mut on_expr = |e: &Expr| {
        e.walk(&mut |n| {
            if let ExprKind::Collection(var) = &n.kind {
                found = Some(var.clone());
            }
        })
    };
    visit_deep(stmt, &mut on_expr);
    found
}

/// Returns the partial variable defined by a `@Partial let`, if any.
fn partial_def(stmt: &Stmt) -> Option<String> {
    match &stmt.kind {
        StmtKind::Let {
            name,
            is_partial: true,
            ..
        } => Some(name.clone()),
        _ => None,
    }
}

fn contains_emit(stmt: &Stmt) -> bool {
    if matches!(stmt.kind, StmtKind::Emit(_)) {
        return true;
    }
    stmt.child_blocks()
        .iter()
        .any(|b| b.iter().any(contains_emit))
}

/// Returns the set of variables defined by the top-level statements of a
/// segment (lets and assignments).
fn defined_vars(stmts: &[Stmt]) -> HashSet<String> {
    let mut out = HashSet::new();
    for stmt in stmts {
        if let StmtKind::Let { name, .. } | StmtKind::Assign { name, .. } = &stmt.kind {
            out.insert(name.clone());
        }
    }
    out
}

/// Returns every variable defined anywhere inside `stmt`, including loop
/// variables and bindings in nested blocks.
fn vars_defined_inside(stmt: &Stmt) -> HashSet<String> {
    let mut out = HashSet::new();
    fn walk(stmt: &Stmt, out: &mut HashSet<String>) {
        match &stmt.kind {
            StmtKind::Let { name, .. } | StmtKind::Assign { name, .. } => {
                out.insert(name.clone());
            }
            StmtKind::Foreach { var, .. } => {
                out.insert(var.clone());
            }
            _ => {}
        }
        for block in stmt.child_blocks() {
            for inner in block {
                walk(inner, out);
            }
        }
    }
    // Only nested definitions matter for the key check: a top-level `let`
    // defines its variable *after* the initialiser (and its state access)
    // ran, so exclude the statement's own binding but include everything in
    // child blocks.
    for block in stmt.child_blocks() {
        for inner in block {
            walk(inner, &mut out);
        }
    }
    if let StmtKind::Foreach { var, .. } = &stmt.kind {
        out.insert(var.clone());
    }
    out
}

fn visit_deep<'a>(stmt: &'a Stmt, on_expr: &mut impl FnMut(&'a Expr)) {
    stmt.visit_exprs(on_expr);
    for block in stmt.child_blocks() {
        for inner in block {
            visit_deep(inner, on_expr);
        }
    }
}

/// Cuts `method` into task-element segments.
///
/// Returns the segments in pipeline order. The first segment is the entry
/// TE of the method; each later segment is fed by a dataflow edge whose
/// dispatch is derived from the segment context (see `build`).
pub fn segment_method(program: &Program, method: &Method) -> SdgResult<Vec<Segment>> {
    let accesses = analyze_method_accesses(program, method)?;
    let mut segments: Vec<Segment> = Vec::new();
    let mut start = 0usize;
    let mut ctx = SegmentCtx::Stateless;
    let mut writes = false;
    let mut collects: Option<String> = None;
    let mut defines_partial: Vec<String> = Vec::new();

    let flush = |segments: &mut Vec<Segment>,
                 start: usize,
                 end: usize,
                 ctx: &SegmentCtx,
                 writes: bool,
                 collects: &Option<String>,
                 defines_partial: &[String]| {
        if start < end {
            segments.push(Segment {
                stmt_range: start..end,
                ctx: ctx.clone(),
                writes,
                collects: collects.clone(),
                defines_partial: defines_partial.to_vec(),
            });
        }
    };

    for (i, stmt) in method.body.iter().enumerate() {
        let demanded = stmt_ctx(i, &accesses[i], method)?;
        let collect = collection_var(stmt);
        let stmt_writes = accesses[i].accesses.iter().any(|a| a.is_write);

        // A `@Collection` consumption always begins a new segment: its edge
        // is the all-to-one gather barrier (rule 5).
        let mut cut = collect.is_some();

        if !cut {
            cut = match (&ctx, &demanded) {
                // Stateless statements always join the current segment.
                (_, SegmentCtx::Stateless) => false,
                // A segment without state yet may adopt the statement's
                // context, unless the access key is computed inside the
                // segment (then the key cannot drive the input dispatch).
                (SegmentCtx::Stateless, SegmentCtx::Partitioned { key, .. }) => {
                    let defined = defined_vars(&method.body[start..i]);
                    defined.contains(key)
                }
                (SegmentCtx::Stateless, _) => false,
                // Same context: join (same SE, same key).
                (a, b) if a == b => false,
                // Anything else: new SE, new key, or new access type.
                _ => true,
            };
        }

        if cut {
            flush(
                &mut segments,
                start,
                i,
                &ctx,
                writes,
                &collects,
                &defines_partial,
            );
            start = i;
            ctx = SegmentCtx::Stateless;
            writes = false;
            collects = collect;
            defines_partial = Vec::new();
        }

        // Adopt the statement's context.
        if demanded != SegmentCtx::Stateless {
            if ctx == SegmentCtx::Stateless {
                ctx = demanded;
            }
            writes |= stmt_writes;
        }
        if let Some(p) = partial_def(stmt) {
            defines_partial.push(p);
        }
        // Emitting from a broadcast (global) segment would duplicate output
        // once per partial instance.
        if matches!(ctx, SegmentCtx::Global { .. }) && contains_emit(stmt) {
            return Err(SdgError::Translate(format!(
                "`emit` at {} in `{}` would execute once per partial instance; \
                 reconcile with @Collection first",
                stmt.span, method.name
            )));
        }
    }
    flush(
        &mut segments,
        start,
        method.body.len(),
        &ctx,
        writes,
        &collects,
        &defines_partial,
    );

    let segments = fuse_adjacent_stateless(segments);

    // Every @Partial variable must be consumed by a @Collection in a later
    // segment; otherwise the global results are silently dropped.
    for (i, seg) in segments.iter().enumerate() {
        for var in &seg.defines_partial {
            let consumed = segments[i + 1..]
                .iter()
                .any(|s| s.collects.as_deref() == Some(var));
            if !consumed {
                return Err(SdgError::Translate(format!(
                    "partial variable `{var}` in `{}` is never reconciled with \
                     `@Collection {var}`",
                    method.name
                )));
            }
        }
    }
    Ok(segments)
}

/// Fuses adjacent stateless segments into one TE.
///
/// Two stateless segments may only sit next to each other when the later
/// one consumes a `@Collection` (a gather barrier, which must keep its own
/// TE). Any other adjacent stateless pair — as can arise when optimization
/// deletes the state access that originally forced a cut — is merged, so
/// segmentation never emits two consecutive TEs that a single one could
/// run.
fn fuse_adjacent_stateless(segments: Vec<Segment>) -> Vec<Segment> {
    let mut out: Vec<Segment> = Vec::with_capacity(segments.len());
    for seg in segments {
        if let Some(prev) = out.last_mut() {
            if prev.ctx == SegmentCtx::Stateless
                && seg.ctx == SegmentCtx::Stateless
                && seg.collects.is_none()
                && prev.stmt_range.end == seg.stmt_range.start
            {
                prev.stmt_range.end = seg.stmt_range.end;
                prev.writes |= seg.writes;
                prev.defines_partial.extend(seg.defines_partial);
                continue;
            }
        }
        out.push(seg);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdg_ir::parser::parse_program;

    fn segs(src: &str, method: &str) -> SdgResult<Vec<Segment>> {
        let prog = parse_program(src).unwrap();
        sdg_ir::analysis::check::check_program(&prog)?;
        let m = prog.method(method).unwrap().clone();
        segment_method(&prog, &m)
    }

    const CF: &str = r#"
        @Partitioned Matrix userItem;
        @Partial Matrix coOcc;
        void addRating(int user, int item, int rating) {
            userItem.set(user, item, rating);
            let userRow = userItem.row(user);
            foreach (p : userRow) {
                if (p[1] > 0) {
                    coOcc.add(item, p[0], 1);
                    coOcc.add(p[0], item, 1);
                }
            }
        }
        Vector getRec(int user) {
            let userRow = userItem.row(user);
            @Partial let userRec = @Global coOcc.multiply(userRow);
            let rec = merge(@Collection userRec);
            emit rec;
        }
        Vector merge(@Collection Vector allRec) {
            let out = [];
            foreach (cur : allRec) { out = vec_add(out, cur); }
            return out;
        }
    "#;

    #[test]
    fn add_rating_cuts_into_two_tes() {
        let segs = segs(CF, "addRating").unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].stmt_range, 0..2);
        assert_eq!(
            segs[0].ctx,
            SegmentCtx::Partitioned {
                field: "userItem".into(),
                key: "user".into()
            }
        );
        assert!(segs[0].writes);
        assert_eq!(segs[1].stmt_range, 2..3);
        assert_eq!(
            segs[1].ctx,
            SegmentCtx::PartialLocal {
                field: "coOcc".into()
            }
        );
        assert!(segs[1].writes);
        assert_eq!(segs[1].collects, None);
    }

    #[test]
    fn get_rec_cuts_match_figure_1() {
        let segs = segs(CF, "getRec").unwrap();
        assert_eq!(segs.len(), 3);
        // getUserVec: partitioned read of userItem.
        assert_eq!(
            segs[0].ctx,
            SegmentCtx::Partitioned {
                field: "userItem".into(),
                key: "user".into()
            }
        );
        assert!(!segs[0].writes);
        // getRecVec: global access to coOcc, defines partial userRec.
        assert_eq!(
            segs[1].ctx,
            SegmentCtx::Global {
                field: "coOcc".into()
            }
        );
        assert_eq!(segs[1].defines_partial, vec!["userRec".to_string()]);
        // merge: stateless, gathers userRec.
        assert_eq!(segs[2].ctx, SegmentCtx::Stateless);
        assert_eq!(segs[2].collects.as_deref(), Some("userRec"));
        assert_eq!(segs[2].stmt_range, 2..4);
    }

    #[test]
    fn new_access_key_to_same_se_cuts() {
        let segs = segs(
            "@Partitioned Table t;\n\
             void f(int a, int b) {\n\
               let x = t.get(a);\n\
               let y = t.get(b);\n\
               emit x + y;\n\
             }",
            "f",
        )
        .unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(
            segs[0].ctx,
            SegmentCtx::Partitioned {
                field: "t".into(),
                key: "a".into()
            }
        );
        assert_eq!(
            segs[1].ctx,
            SegmentCtx::Partitioned {
                field: "t".into(),
                key: "b".into()
            }
        );
    }

    #[test]
    fn same_key_through_alias_does_not_cut() {
        let segs = segs(
            "@Partitioned Table t;\n\
             void f(int a) {\n\
               let x = t.get(a);\n\
               let a2 = a;\n\
               let y = t.get(a2);\n\
               emit x + y;\n\
             }",
            "f",
        )
        .unwrap();
        assert_eq!(segs.len(), 1);
    }

    #[test]
    fn key_computed_in_segment_forces_cut() {
        let segs = segs(
            "@Partitioned Table t;\n\
             void f(int a) {\n\
               let k = a + 1;\n\
               let x = t.get(k);\n\
               emit x;\n\
             }",
            "f",
        )
        .unwrap();
        // The key `k` is computed by the first statement, so the partitioned
        // access starts a new TE whose input edge partitions on `k`.
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].ctx, SegmentCtx::Stateless);
        assert_eq!(
            segs[1].ctx,
            SegmentCtx::Partitioned {
                field: "t".into(),
                key: "k".into()
            }
        );
    }

    #[test]
    fn key_from_input_allows_adoption() {
        let segs = segs(
            "@Partitioned Table t;\n\
             void f(int k) {\n\
               let limit = 10;\n\
               let x = t.get(k);\n\
               emit x + limit;\n\
             }",
            "f",
        )
        .unwrap();
        // `k` is a parameter, so the stateless prefix joins the keyed TE.
        assert_eq!(segs.len(), 1);
    }

    #[test]
    fn local_then_local_different_fields_cut() {
        let segs = segs(
            "Table a;\nTable b;\n\
             void f(int k) {\n\
               a.put(k, 1);\n\
               b.put(k, 2);\n\
             }",
            "f",
        )
        .unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].ctx, SegmentCtx::Local { field: "a".into() });
        assert_eq!(segs[1].ctx, SegmentCtx::Local { field: "b".into() });
    }

    #[test]
    fn stateless_method_is_one_segment() {
        let segs = segs("void f(int x) { emit x * 2; }", "f").unwrap();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].ctx, SegmentCtx::Stateless);
    }

    #[test]
    fn statement_touching_two_ses_is_rejected() {
        let err = segs(
            "Table a;\nTable b;\n\
             void f(int k) { let x = a.get(k) + b.get(k); }",
            "f",
        )
        .unwrap_err();
        assert!(err.to_string().contains("multiple state elements"), "{err}");
    }

    #[test]
    fn adjacent_stateless_segments_fuse_unless_gathering() {
        let stateless = |range: std::ops::Range<usize>, collects: Option<&str>| Segment {
            stmt_range: range,
            ctx: SegmentCtx::Stateless,
            writes: false,
            collects: collects.map(str::to_owned),
            defines_partial: Vec::new(),
        };
        let fused = fuse_adjacent_stateless(vec![
            stateless(0..1, None),
            stateless(1..3, None),
            stateless(3..4, Some("r")),
            stateless(4..5, None),
        ]);
        // 0..1 and 1..3 merge. The gather at 3..4 starts its own TE (its
        // input edge is the all-to-one barrier), but the stateless tail at
        // 4..5 folds into it: only the *later* segment's collects blocks
        // fusion.
        assert_eq!(fused.len(), 2);
        assert_eq!(fused[0].stmt_range, 0..3);
        assert_eq!(fused[1].stmt_range, 3..5);
        assert_eq!(fused[1].collects.as_deref(), Some("r"));
    }

    #[test]
    fn unreconciled_partial_variable_is_rejected() {
        let err = segs(
            "@Partial Matrix m;\n\
             void f(list v) { @Partial let r = @Global m.multiply(v); }",
            "f",
        )
        .unwrap_err();
        assert!(err.to_string().contains("never reconciled"), "{err}");
    }
}

//! Translation of analysed StateLang programs into SDGs (§4.2).
//!
//! This crate is the analogue of the paper's `java2sdg` tool. Given a
//! checked [`sdg_ir::Program`], it:
//!
//! 1. generates one state element per annotated field (step 2);
//! 2. classifies every state access (step 3, via `sdg_ir::analysis`);
//! 3. cuts each entry method into task elements at state-access boundaries,
//!    following the paper's five rules (step 4):
//!    - a TE per entry point;
//!    - a new TE on partitioned access to a new SE or a new access key,
//!      with the dataflow edge annotated by the key;
//!    - a new TE on global access to a partial SE, with one-to-all
//!      dispatch;
//!    - a new TE on local access to a partial SE, with one-to-any dispatch
//!      (all-to-one with a barrier when it follows global access);
//!    - a new TE for `@Collection` expressions, gathered all-to-one;
//! 4. attaches the live variables to each dataflow edge (step 5); and
//! 5. packages each TE's statements as an interpretable
//!    [`sdg_ir::te::TeProgram`] (steps 6–8; interpretation replaces
//!    bytecode generation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
mod segment;

pub use build::{translate, translate_optimized};
pub use segment::{segment_method, Segment, SegmentCtx};

//! Assembling the SDG from segmented methods.

use std::collections::HashMap;
use std::sync::Arc;

use sdg_common::error::{SdgError, SdgResult};
use sdg_graph::model::{
    AccessMode, Dispatch, Distribution, Sdg, SdgBuilder, StateAccessEdge, TaskCode, TaskKind,
};
use sdg_ir::analysis::check::{check_program_diagnostics, PARTIAL_NEVER_MERGED};
use sdg_ir::analysis::live::live_before_each;
use sdg_ir::analysis::verify::{verify_program, TeCertificate};
use sdg_ir::ast::{Expr, ExprKind, FieldAnn, Method, Program, StateTy, Stmt, StmtKind};
use sdg_ir::diag::Severity;
use sdg_ir::opt::{optimize_program, OptReport};
use sdg_ir::te::TeProgram;
use sdg_state::partition::PartitionDim;
use sdg_state::store::StateType;

use crate::segment::{segment_method, Segment, SegmentCtx};

/// Translates a StateLang program into a validated SDG.
///
/// # Errors
///
/// Returns [`SdgError::Analysis`] for semantic violations and
/// [`SdgError::Translate`] when the program cannot be cut into task
/// elements (see the crate docs for the rules).
pub fn translate(program: &Program) -> SdgResult<Sdg> {
    // Fail fast on semantic violations, but defer unmerged-partial errors
    // (SL0101): when the `@Partial let` also misuses `@Global`, the access
    // analysis below produces the more actionable report for the same
    // statement, so it gets to run first.
    let check_diags = check_program_diagnostics(program);
    if let Some(err) = check_diags
        .iter()
        .find(|d| d.severity == Severity::Error && d.code != PARTIAL_NEVER_MERGED)
    {
        return Err(err.to_analysis_error());
    }
    let mut builder = SdgBuilder::new();

    // Step 2: one SE per annotated field.
    let mut state_ids = HashMap::new();
    for field in &program.fields {
        let ty = match field.ty {
            StateTy::Table => StateType::Table,
            StateTy::Matrix => StateType::Matrix,
            StateTy::Vector => StateType::Vector,
        };
        let dist = match field.ann {
            FieldAnn::Local => Distribution::Local,
            FieldAnn::Partial => Distribution::Partial,
            FieldAnn::Partitioned => {
                if field.ty == StateTy::Vector {
                    return Err(SdgError::Translate(format!(
                        "field `{}`: dense vectors cannot be @Partitioned; use @Partial",
                        field.name
                    )));
                }
                // Keyed accessors index tables by key and matrices by row,
                // so the partitioning dimension is always the row axis.
                Distribution::Partitioned {
                    dim: PartitionDim::Row,
                }
            }
        };
        let id = builder.add_state(field.name.clone(), ty, dist);
        state_ids.insert(field.name.clone(), id);
    }

    // Helper methods are state-free (checked) and shipped with every TE.
    let entry_names: Vec<String> = program
        .entry_points()
        .iter()
        .map(|m| m.name.clone())
        .collect();
    let helpers: Arc<HashMap<String, Method>> = Arc::new(
        program
            .methods
            .iter()
            .filter(|m| !entry_names.contains(&m.name))
            .map(|m| (m.name.clone(), m.clone()))
            .collect(),
    );

    if entry_names.is_empty() {
        return Err(SdgError::Translate(
            "program has no entry-point methods".into(),
        ));
    }

    // Steps 3–5: cut each entry method and wire the pipeline.
    let mut task_methods: Vec<(String, String)> = Vec::new();
    for method in program.entry_points() {
        let segments = segment_method(program, method)?;
        let live = live_before_each(program, method);
        let mut prev = None;
        for (k, seg) in segments.iter().enumerate() {
            let name = format!("{}_{k}", method.name);
            let is_last = k + 1 == segments.len();
            let mut output_vars: Vec<String> = if is_last {
                Vec::new()
            } else {
                live[segments[k + 1].stmt_range.start]
                    .iter()
                    .cloned()
                    .collect()
            };
            output_vars.sort();
            let stmts: Vec<Stmt> = method.body[seg.stmt_range.clone()]
                .iter()
                .map(rewrite_stmt)
                .collect();
            let code = TaskCode::Interpreted(TeProgram::new(
                name.clone(),
                stmts,
                Arc::clone(&helpers),
                output_vars,
            ));
            let kind = if k == 0 {
                TaskKind::Entry {
                    method: method.name.clone(),
                }
            } else {
                TaskKind::Compute
            };
            let access = access_edge(&seg.ctx, seg.writes, &state_ids)?;
            task_methods.push((name.clone(), method.name.clone()));
            let task = builder.add_task(name, kind, code, access);
            if let Some(prev_task) = prev {
                let mut live_vars: Vec<String> =
                    live[seg.stmt_range.start].iter().cloned().collect();
                live_vars.sort();
                let dispatch = edge_dispatch(seg);
                builder.connect(prev_task, task, dispatch, live_vars);
            }
            prev = Some(task);
        }
    }

    // Deferred from the semantic check: every segmentation succeeded, so any
    // remaining error is an unmerged partial value.
    if let Some(err) = check_diags.first_error() {
        return Err(err.to_analysis_error());
    }

    let mut sdg = builder.build()?;

    // Run sdg-verify and attach its certificates: the runtime gates
    // striping, micro-batching and incremental checkpointing on them.
    // Each task element inherits the certificate of its source method —
    // a TE can only be as deterministic as the pipeline it was cut from.
    let mut report = verify_program(program);
    for (task, method) in task_methods {
        if let Some(cert) = report.te_certs.get(&method).cloned() {
            report.te_certs.insert(
                task.clone(),
                TeCertificate {
                    subject: task,
                    ..cert
                },
            );
        }
    }
    sdg.verify = Some(Arc::new(report));
    Ok(sdg)
}

/// Optimizes `program` (constant folding/propagation, branch and dead-code
/// elimination — see [`sdg_ir::opt`]) and translates the result.
///
/// The returned [`OptReport`] counts the rewrites applied; the SDG can have
/// fewer task elements and smaller edge payloads than [`translate`] would
/// produce for the same source, but computes the same results.
///
/// # Errors
///
/// The program is checked *before* optimization, against the user's
/// original source — the rewrites only run on programs with no semantic
/// errors, so they cannot delete or distort offending code.
pub fn translate_optimized(program: &Program) -> SdgResult<(Sdg, OptReport)> {
    let check_diags = check_program_diagnostics(program);
    if let Some(err) = check_diags
        .iter()
        .find(|d| d.severity == Severity::Error && d.code != PARTIAL_NEVER_MERGED)
    {
        return Err(err.to_analysis_error());
    }
    let (optimized, report) = optimize_program(program);
    let sdg = translate(&optimized)?;
    Ok((sdg, report))
}

fn access_edge(
    ctx: &SegmentCtx,
    writes: bool,
    state_ids: &HashMap<String, sdg_common::ids::StateId>,
) -> SdgResult<Option<StateAccessEdge>> {
    let edge = match ctx {
        SegmentCtx::Stateless => None,
        SegmentCtx::Local { field } => Some(StateAccessEdge {
            state: state_ids[field],
            mode: AccessMode::Local,
            writes,
        }),
        SegmentCtx::Partitioned { field, key } => Some(StateAccessEdge {
            state: state_ids[field],
            mode: AccessMode::Partitioned {
                key: key.clone(),
                dim: PartitionDim::Row,
            },
            writes,
        }),
        SegmentCtx::PartialLocal { field } => Some(StateAccessEdge {
            state: state_ids[field],
            mode: AccessMode::PartialLocal,
            writes,
        }),
        SegmentCtx::Global { field } => Some(StateAccessEdge {
            state: state_ids[field],
            mode: AccessMode::PartialGlobal,
            writes,
        }),
    };
    Ok(edge)
}

/// Chooses the dispatch semantics of the edge feeding `seg` (§4.2 step 4).
fn edge_dispatch(seg: &Segment) -> Dispatch {
    if let Some(var) = &seg.collects {
        return Dispatch::AllToOne {
            collect_var: var.clone(),
        };
    }
    match &seg.ctx {
        SegmentCtx::Partitioned { key, .. } => Dispatch::Partitioned { key: key.clone() },
        SegmentCtx::Global { .. } => Dispatch::OneToAll,
        SegmentCtx::PartialLocal { .. } | SegmentCtx::Local { .. } | SegmentCtx::Stateless => {
            Dispatch::OneToAny
        }
    }
}

/// Rewrites a statement for TE execution:
///
/// - `@Collection v` becomes a plain reference to `v` (the gather barrier
///   binds the collected list under that name);
/// - a top-level `return e;` in an entry method becomes `emit e; return;`
///   semantics (the value is the request's result).
fn rewrite_stmt(stmt: &Stmt) -> Stmt {
    let kind = match &stmt.kind {
        StmtKind::Let {
            name,
            expr,
            is_partial,
        } => StmtKind::Let {
            name: name.clone(),
            expr: rewrite_expr(expr),
            is_partial: *is_partial,
        },
        StmtKind::Assign { name, expr } => StmtKind::Assign {
            name: name.clone(),
            expr: rewrite_expr(expr),
        },
        StmtKind::Expr(e) => StmtKind::Expr(rewrite_expr(e)),
        StmtKind::If {
            cond,
            then_block,
            else_block,
        } => StmtKind::If {
            cond: rewrite_expr(cond),
            then_block: then_block.iter().map(rewrite_stmt).collect(),
            else_block: else_block.iter().map(rewrite_stmt).collect(),
        },
        StmtKind::While { cond, body } => StmtKind::While {
            cond: rewrite_expr(cond),
            body: body.iter().map(rewrite_stmt).collect(),
        },
        StmtKind::Foreach { var, iter, body } => StmtKind::Foreach {
            var: var.clone(),
            iter: rewrite_expr(iter),
            body: body.iter().map(rewrite_stmt).collect(),
        },
        StmtKind::Return(Some(e)) => StmtKind::Emit(rewrite_expr(e)),
        StmtKind::Return(None) => StmtKind::Return(None),
        StmtKind::Emit(e) => StmtKind::Emit(rewrite_expr(e)),
    };
    Stmt {
        kind,
        span: stmt.span,
    }
}

fn rewrite_expr(expr: &Expr) -> Expr {
    let kind = match &expr.kind {
        ExprKind::Collection(var) => ExprKind::Var(var.clone()),
        ExprKind::Binary { op, lhs, rhs } => ExprKind::Binary {
            op: *op,
            lhs: Box::new(rewrite_expr(lhs)),
            rhs: Box::new(rewrite_expr(rhs)),
        },
        ExprKind::Unary { op, operand } => ExprKind::Unary {
            op: *op,
            operand: Box::new(rewrite_expr(operand)),
        },
        ExprKind::Index { base, idx } => ExprKind::Index {
            base: Box::new(rewrite_expr(base)),
            idx: Box::new(rewrite_expr(idx)),
        },
        ExprKind::ListLit(items) => ExprKind::ListLit(items.iter().map(rewrite_expr).collect()),
        ExprKind::Call { callee, args } => ExprKind::Call {
            callee: callee.clone(),
            args: args.iter().map(rewrite_expr).collect(),
        },
        ExprKind::StateCall {
            field,
            method,
            args,
            global,
        } => ExprKind::StateCall {
            field: field.clone(),
            method: method.clone(),
            args: args.iter().map(rewrite_expr).collect(),
            global: *global,
        },
        other => other.clone(),
    };
    Expr {
        kind,
        span: expr.span,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdg_ir::parser::parse_program;

    const CF: &str = r#"
        @Partitioned Matrix userItem;
        @Partial Matrix coOcc;
        void addRating(int user, int item, int rating) {
            userItem.set(user, item, rating);
            let userRow = userItem.row(user);
            foreach (p : userRow) {
                if (p[1] > 0) {
                    coOcc.add(item, p[0], 1);
                    coOcc.add(p[0], item, 1);
                }
            }
        }
        Vector getRec(int user) {
            let userRow = userItem.row(user);
            @Partial let userRec = @Global coOcc.multiply(userRow);
            let rec = merge(@Collection userRec);
            emit rec;
        }
        Vector merge(@Collection Vector allRec) {
            let out = [];
            foreach (cur : allRec) { out = vec_add(out, cur); }
            return out;
        }
    "#;

    #[test]
    fn cf_translates_to_figure_1_shape() {
        let prog = parse_program(CF).unwrap();
        let sdg = translate(&prog).unwrap();

        // Five TEs: addRating_{0,1}, getRec_{0,1,2}; two SEs.
        assert_eq!(sdg.tasks.len(), 5);
        assert_eq!(sdg.states.len(), 2);
        assert_eq!(sdg.flows.len(), 3);

        let user_item = sdg.state_by_name("userItem").unwrap();
        assert_eq!(
            user_item.dist,
            Distribution::Partitioned {
                dim: PartitionDim::Row
            }
        );
        let co_occ = sdg.state_by_name("coOcc").unwrap();
        assert_eq!(co_occ.dist, Distribution::Partial);

        // addRating_0 partition-writes userItem; addRating_1 writes coOcc locally.
        let a0 = sdg.task_by_name("addRating_0").unwrap();
        let acc = a0.access.as_ref().unwrap();
        assert_eq!(acc.state, user_item.id);
        assert!(acc.writes);
        assert!(matches!(&acc.mode, AccessMode::Partitioned { key, .. } if key == "user"));
        assert!(matches!(a0.kind, TaskKind::Entry { .. }));

        let a1 = sdg.task_by_name("addRating_1").unwrap();
        assert_eq!(a1.access.as_ref().unwrap().mode, AccessMode::PartialLocal);

        // getRec_1 has global access fed one-to-all; getRec_2 gathers userRec.
        let g1 = sdg.task_by_name("getRec_1").unwrap();
        assert_eq!(g1.access.as_ref().unwrap().mode, AccessMode::PartialGlobal);
        let into_g1 = sdg.flows_to(g1.id);
        assert_eq!(into_g1.len(), 1);
        assert_eq!(into_g1[0].dispatch, Dispatch::OneToAll);
        assert_eq!(into_g1[0].live_vars, vec!["userRow".to_string()]);

        let g2 = sdg.task_by_name("getRec_2").unwrap();
        let into_g2 = sdg.flows_to(g2.id);
        assert_eq!(
            into_g2[0].dispatch,
            Dispatch::AllToOne {
                collect_var: "userRec".into()
            }
        );
        assert_eq!(into_g2[0].live_vars, vec!["userRec".to_string()]);
        assert!(g2.access.is_none());

        // The edge into addRating_1 carries item and userRow.
        let a1_in = sdg.flows_to(a1.id);
        assert_eq!(a1_in[0].dispatch, Dispatch::OneToAny);
        assert_eq!(
            a1_in[0].live_vars,
            vec!["item".to_string(), "userRow".to_string()]
        );
    }

    #[test]
    fn te_programs_carry_rewritten_code() {
        let prog = parse_program(CF).unwrap();
        let sdg = translate(&prog).unwrap();
        let g2 = sdg.task_by_name("getRec_2").unwrap();
        let TaskCode::Interpreted(te) = &g2.code else {
            panic!("expected interpreted code");
        };
        assert_eq!(te.stmts.len(), 2);
        // @Collection userRec was rewritten to a plain variable reference.
        let StmtKind::Let { expr, .. } = &te.stmts[0].kind else {
            panic!("expected let");
        };
        let ExprKind::Call { args, .. } = &expr.kind else {
            panic!("expected call");
        };
        assert!(matches!(&args[0].kind, ExprKind::Var(v) if v == "userRec"));
        // The merge helper travels with the TE.
        assert!(te.helpers.contains_key("merge"));
        assert!(te.is_sink());
    }

    #[test]
    fn entry_return_becomes_emit() {
        let prog = parse_program(
            "@Partitioned Table kv;\n\
             int get(int k) { let v = kv.get(k); return v; }",
        )
        .unwrap();
        let sdg = translate(&prog).unwrap();
        let t = sdg.task_by_name("get_0").unwrap();
        let TaskCode::Interpreted(te) = &t.code else {
            panic!("expected interpreted code");
        };
        assert!(matches!(&te.stmts[1].kind, StmtKind::Emit(_)));
    }

    #[test]
    fn partitioned_vector_fields_are_rejected() {
        let prog = parse_program("@Partitioned Vector w;\nvoid f(int i) { w.add(i, 1.0); }");
        // The access analysis rejects keyless partitioned access first, or
        // translation rejects the field; either way it must fail.
        let prog = prog.unwrap();
        assert!(translate(&prog).is_err());
    }

    #[test]
    fn program_without_entries_is_rejected() {
        // Mutually-calling methods are rejected as recursion; a program with
        // zero methods has no entry points.
        let prog = parse_program("Table t;").unwrap();
        let err = translate(&prog).unwrap_err();
        assert!(err.to_string().contains("no entry-point"), "{err}");
    }

    #[test]
    fn wordcount_translates_to_single_te_pipeline() {
        let prog = parse_program(
            "@Partitioned Table counts;\n\
             void addText(string line) {\n\
               let words = split(lower(line), \"\");\n\
               foreach (w : words) { counts.inc(w, 1); }\n\
             }",
        )
        .unwrap();
        // The `counts.inc` key is the foreach variable, which is defined
        // inside the compound statement, not before it — the statement is a
        // partitioned segment on `w`... but `w` is defined by the loop
        // itself, so the cut rule places the loop in its own TE fed by a
        // partitioned edge. The translator must reject this: the key is not
        // available on the edge.
        let result = translate(&prog);
        // Either outcome is structural: an error mentioning the key, or a
        // validated graph whose edge carries `w`. The current rules cut at
        // the loop and the edge cannot carry `w` (it is loop-local), so the
        // graph validator rejects it.
        assert!(result.is_err());
    }

    #[test]
    fn wordcount_with_emitted_words_translates() {
        // The translatable formulation: the entry splits lines and emits
        // per-word items; a second method counts one word per item.
        let prog = parse_program(
            "@Partitioned Table counts;\n\
             void addWord(string w, int n) {\n\
               counts.inc(w, n);\n\
             }",
        )
        .unwrap();
        let sdg = translate(&prog).unwrap();
        assert_eq!(sdg.tasks.len(), 1);
        let t = sdg.task_by_name("addWord_0").unwrap();
        assert!(
            matches!(&t.access.as_ref().unwrap().mode, AccessMode::Partitioned { key, .. } if key == "w")
        );
    }
}

//! Property-based tests for the program → SDG translation.
//!
//! The central properties:
//!
//! 1. every translatable program produces a *valid* graph (the builder
//!    validates structurally);
//! 2. the TE segments partition the method body: every top-level statement
//!    is assigned to exactly one task element;
//! 3. **partition-count invariance**: executing the same program with 1
//!    and with 3 partitions of every partitioned SE yields the same final
//!    state — cutting, live-variable payloads and key dispatch together
//!    preserve the program's semantics under data parallelism.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

use proptest::prelude::*;
use sdg_common::record;
use sdg_common::value::{Key, Value};
use sdg_graph::model::TaskCode;
use sdg_ir::parser::parse_program;
use sdg_runtime::config::RuntimeConfig;
use sdg_runtime::deploy::Deployment;
use sdg_translate::translate;

/// One generated statement of the random program family.
///
/// Writes are constrained so the final state is deterministic under any
/// dataflow interleaving (§3.1: SDGs provide no cross-pipeline ordering):
/// `put` values depend only on the key (last-writer value is unique) and
/// `inc` commutes. The two key parameters use disjoint value domains so a
/// key never reaches one entry through two differently-ordered routes.
#[derive(Debug, Clone)]
enum Op {
    /// `fieldN.put(kJ, kJ + C);`
    Put { field: usize, key: usize, add: i64 },
    /// `fieldN.inc(kJ, C);`
    Inc { field: usize, key: usize, by: i64 },
    /// `let gN = fieldN.get(kJ);`
    Get { field: usize, key: usize },
    /// `let lN = data * C;` (stateless)
    Local { mul: i64 },
}

fn arb_ops() -> impl Strategy<Value = (usize, Vec<Op>)> {
    // 1..=3 table fields; a mix of partitioned/local is chosen per field
    // index (even = partitioned, odd = local) to keep generation simple.
    (1usize..=3, prop::collection::vec(arb_op(), 1..7)).prop_map(|(fields, mut ops)| {
        // A put and an inc on the same (field, key) do not commute once
        // they land in different TEs: requests may interleave between the
        // two writes, so the final value would depend on scheduling. Keep
        // each (field, key) write-homogeneous by demoting incs to puts
        // wherever both kinds appear.
        let put_targets: std::collections::BTreeSet<(usize, usize)> = ops
            .iter()
            .filter_map(|o| match o {
                Op::Put { field, key, .. } => Some((field % fields, *key)),
                _ => None,
            })
            .collect();
        for op in &mut ops {
            if let Op::Inc { field, key, by } = *op {
                if put_targets.contains(&(field % fields, key)) {
                    *op = Op::Put {
                        field,
                        key,
                        add: by,
                    };
                }
            }
        }
        (fields, ops)
    })
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..3, 0usize..2, -5i64..5).prop_map(|(field, key, add)| Op::Put { field, key, add }),
        (0usize..3, 0usize..2, 1i64..4).prop_map(|(field, key, by)| Op::Inc { field, key, by }),
        (0usize..3, 0usize..2).prop_map(|(field, key)| Op::Get { field, key }),
        (1i64..5).prop_map(|mul| Op::Local { mul }),
    ]
}

/// Renders the generated ops as a StateLang program.
fn render(fields: usize, ops: &[Op]) -> String {
    let mut src = String::new();
    for f in 0..fields {
        if f % 2 == 0 {
            let _ = writeln!(src, "@Partitioned Table t{f};");
        } else {
            let _ = writeln!(src, "Table t{f};");
        }
    }
    let _ = writeln!(src, "void apply(int k0, int k1, int data) {{");
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Put { field, key, add } => {
                let f = field % fields;
                let _ = writeln!(src, "    t{f}.put(k{key}, k{key} + {add});");
            }
            Op::Inc { field, key, by } => {
                let f = field % fields;
                let _ = writeln!(src, "    t{f}.inc(k{key}, {by});");
            }
            Op::Get { field, key } => {
                let f = field % fields;
                let _ = writeln!(src, "    let g{i} = t{f}.get(k{key});");
            }
            Op::Local { mul } => {
                let _ = writeln!(src, "    let l{i} = data * {mul};");
            }
        }
    }
    let _ = writeln!(src, "}}");
    src
}

/// Runs the program over a fixed request stream and returns the merged
/// contents of every state element.
fn run_and_collect(
    src: &str,
    partitions: usize,
    requests: &[(i64, i64, i64)],
) -> BTreeMap<(String, Key), Value> {
    let program = parse_program(src).expect("generated programs parse");
    let sdg = translate(&program).expect("generated programs translate");
    let mut cfg = RuntimeConfig::default();
    for state in &sdg.states {
        if matches!(
            state.dist,
            sdg_graph::model::Distribution::Partitioned { .. }
        ) {
            cfg.se_instances.insert(state.id, partitions);
        }
    }
    let state_names: Vec<(sdg_common::ids::StateId, String)> =
        sdg.states.iter().map(|s| (s.id, s.name.clone())).collect();
    let d = Deployment::start(sdg, cfg).expect("deploy");
    for &(k0, k1, data) in requests {
        d.submit(
            "apply",
            record! {"k0" => Value::Int(k0), "k1" => Value::Int(k1), "data" => Value::Int(data)},
        )
        .expect("submit");
    }
    assert!(d.quiesce(Duration::from_secs(30)), "requests must drain");
    assert_eq!(d.stats().errors, 0, "no task errors");

    let mut contents = BTreeMap::new();
    for (state, name) in state_names {
        let replicas = d
            .metrics()
            .state_by_id(state)
            .map_or(0, |s| s.instances as usize);
        for replica in 0..replicas {
            d.with_state(state, replica as u32, |s| {
                s.as_table().expect("table").for_each(|k, v| {
                    contents.insert((name.clone(), k.clone()), v.clone());
                });
            })
            .expect("read state");
        }
    }
    d.shutdown();
    contents
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// Statements partition exactly across TEs, and the graph validates.
    #[test]
    fn translation_partitions_statements((fields, ops) in arb_ops()) {
        let src = render(fields, &ops);
        let program = parse_program(&src).expect("parses");
        let sdg = translate(&program).expect("translates");
        let interpreted_stmts: usize = sdg
            .tasks
            .iter()
            .map(|t| match &t.code {
                TaskCode::Interpreted(te) => te.stmts.len(),
                _ => 0,
            })
            .sum();
        prop_assert_eq!(interpreted_stmts, ops.len(), "program:\n{}", src);
        // Entry tasks: exactly one (single method).
        prop_assert_eq!(sdg.entry_tasks().len(), 1);
        // Pipelines are linear: flows = tasks - 1.
        prop_assert_eq!(sdg.flows.len(), sdg.tasks.len() - 1);
    }

    /// The same program with 1 and 3 partitions produces identical state.
    #[test]
    fn execution_is_partition_count_invariant(
        (fields, ops) in arb_ops(),
        requests in prop::collection::vec((0i64..6, 100i64..106, -20i64..20), 1..12),
    ) {
        // Only keyed puts/incs make observable state; ensure at least one.
        prop_assume!(ops.iter().any(|o| matches!(o, Op::Put { .. } | Op::Inc { .. })));
        let src = render(fields, &ops);
        let single = run_and_collect(&src, 1, &requests);
        let parallel = run_and_collect(&src, 3, &requests);
        prop_assert_eq!(&single, &parallel, "program:\n{}", src);
        // Sanity: requests with puts/incs must actually write something.
        prop_assert!(!single.is_empty(), "program:\n{}", src);
    }
}

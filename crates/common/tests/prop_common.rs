//! Property-based tests for the shared data model and codec.

use proptest::prelude::*;
use sdg_common::codec::{decode_from_slice, encode_to_vec};
use sdg_common::ids::EdgeId;
use sdg_common::time::VectorTs;
use sdg_common::value::{compare_values, Key, Record, Value};

/// Strategy producing arbitrary values with bounded depth.
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>()
            .prop_filter("NaN breaks PartialEq-based roundtrip checks", |x| !x
                .is_nan())
            .prop_map(Value::Float),
        "[a-zA-Z0-9 _:/-]{0,24}".prop_map(Value::str),
    ];
    leaf.prop_recursive(3, 48, 6, |inner| {
        prop::collection::vec(inner, 0..6).prop_map(Value::List)
    })
}

fn arb_key() -> impl Strategy<Value = Key> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Key::Bool),
        any::<i64>().prop_map(Key::Int),
        "[a-z0-9]{0,16}".prop_map(Key::str),
    ];
    leaf.prop_recursive(2, 16, 4, |inner| {
        prop::collection::vec(inner, 0..4).prop_map(Key::Composite)
    })
}

fn arb_record() -> impl Strategy<Value = Record> {
    prop::collection::vec(("[a-z]{1,8}", arb_value()), 0..6).prop_map(|pairs| {
        let mut r = Record::new();
        for (n, v) in pairs {
            r.set(n, v);
        }
        r
    })
}

proptest! {
    #[test]
    fn value_codec_roundtrips(v in arb_value()) {
        let bytes = encode_to_vec(&v);
        let back: Value = decode_from_slice(&bytes).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn key_codec_roundtrips(k in arb_key()) {
        let bytes = encode_to_vec(&k);
        let back: Key = decode_from_slice(&bytes).unwrap();
        prop_assert_eq!(back, k);
    }

    #[test]
    fn record_codec_roundtrips(r in arb_record()) {
        let bytes = encode_to_vec(&r);
        let back: Record = decode_from_slice(&bytes).unwrap();
        prop_assert_eq!(back, r);
    }

    #[test]
    fn key_hash_matches_equality(a in arb_key(), b in arb_key()) {
        if a == b {
            prop_assert_eq!(a.stable_hash(), b.stable_hash());
        }
    }

    #[test]
    fn key_value_conversion_roundtrips(k in arb_key()) {
        let v: Value = k.clone().into();
        prop_assert_eq!(v.to_key().unwrap(), k);
    }

    #[test]
    fn truncated_values_never_panic(v in arb_value(), cut in 0usize..64) {
        let bytes = encode_to_vec(&v);
        if cut < bytes.len() {
            // Must return an error, never panic.
            let _ = decode_from_slice::<Value>(&bytes[..cut]);
        }
    }

    #[test]
    fn vector_ts_codec_roundtrips(entries in prop::collection::vec((0u32..64, 1u64..1_000_000), 0..8)) {
        let mut v = VectorTs::new();
        for (e, ts) in entries {
            v.observe(EdgeId(e), ts);
        }
        let bytes = encode_to_vec(&v);
        let back: VectorTs = decode_from_slice(&bytes).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn vector_merge_max_dominates_inputs(
        a in prop::collection::vec((0u32..16, 1u64..1000), 0..8),
        b in prop::collection::vec((0u32..16, 1u64..1000), 0..8),
    ) {
        let mut va = VectorTs::new();
        for (e, ts) in a { va.observe(EdgeId(e), ts); }
        let mut vb = VectorTs::new();
        for (e, ts) in b { vb.observe(EdgeId(e), ts); }
        let mut merged = va.clone();
        merged.merge_max(&vb);
        prop_assert!(merged.dominates(&va));
        prop_assert!(merged.dominates(&vb));
    }

    #[test]
    fn compare_is_antisymmetric(a in arb_value(), b in arb_value()) {
        use std::cmp::Ordering;
        if let (Some(x), Some(y)) = (compare_values(&a, &b), compare_values(&b, &a)) {
            match x {
                Ordering::Less => prop_assert_eq!(y, Ordering::Greater),
                Ordering::Greater => prop_assert_eq!(y, Ordering::Less),
                Ordering::Equal => prop_assert_eq!(y, Ordering::Equal),
            }
        }
    }
}

//! The workspace-wide error type.
//!
//! Every fallible operation across the SDG crates returns [`SdgResult`]. The
//! variants mirror the major subsystems so callers can match on the class of
//! failure without parsing strings.

use std::fmt;

/// Result alias used across the SDG workspace.
pub type SdgResult<T> = Result<T, SdgError>;

/// Errors produced by the SDG crates.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SdgError {
    /// A value had an unexpected runtime type (e.g. `Int` where `Str` was
    /// required).
    Type {
        /// What the operation expected.
        expected: &'static str,
        /// What it actually found.
        found: &'static str,
    },
    /// Decoding a binary payload failed.
    Codec(String),
    /// Lexing or parsing a StateLang program failed.
    Parse {
        /// 1-based source line of the offending token.
        line: u32,
        /// 1-based source column of the offending token.
        col: u32,
        /// Human-readable description.
        message: String,
    },
    /// Semantic analysis of a StateLang program failed (unknown variable,
    /// annotation misuse, conflicting partitioning strategies, ...).
    Analysis {
        /// 1-based source line of the offending construct (0 when the
        /// violation has no single source position, e.g. recursion).
        line: u32,
        /// 1-based source column (0 when positionless).
        col: u32,
        /// Human-readable description.
        message: String,
    },
    /// Translating an analysed program into an SDG failed.
    Translate(String),
    /// The constructed SDG violates a structural invariant (e.g. a task
    /// element with access edges to two distinct state elements).
    InvalidGraph(String),
    /// A runtime request referenced an unknown element or instance.
    NotFound(String),
    /// The runtime engine failed (channel disconnect, worker panic, ...).
    Runtime(String),
    /// Checkpointing or recovery failed.
    Recovery(String),
    /// A backup-store I/O operation failed. `transient` errors are worth
    /// retrying with backoff; persistent ones are not.
    Io {
        /// Whether a retry may plausibly succeed.
        transient: bool,
        /// Human-readable description.
        message: String,
    },
    /// Interpreting task element code failed (division by zero, missing
    /// binding, ...).
    Eval(String),
    /// A state-structure operation was used inconsistently (e.g. conflicting
    /// partition strategies, out-of-range partition index).
    State(String),
    /// A configuration value was out of range or inconsistent.
    Config(String),
}

impl SdgError {
    /// Builds a [`SdgError::Type`] error.
    pub fn type_mismatch(expected: &'static str, found: &'static str) -> Self {
        SdgError::Type { expected, found }
    }

    /// Builds a [`SdgError::Parse`] error at the given source position.
    pub fn parse(line: u32, col: u32, message: impl Into<String>) -> Self {
        SdgError::Parse {
            line,
            col,
            message: message.into(),
        }
    }

    /// Builds a [`SdgError::Analysis`] error at the given source position
    /// (use `0, 0` when the violation has no single position).
    pub fn analysis(line: u32, col: u32, message: impl Into<String>) -> Self {
        SdgError::Analysis {
            line,
            col,
            message: message.into(),
        }
    }

    /// Builds a transient [`SdgError::Io`] error (worth retrying).
    pub fn io_transient(message: impl Into<String>) -> Self {
        SdgError::Io {
            transient: true,
            message: message.into(),
        }
    }

    /// Builds a persistent [`SdgError::Io`] error (retries will not help).
    pub fn io_persistent(message: impl Into<String>) -> Self {
        SdgError::Io {
            transient: false,
            message: message.into(),
        }
    }

    /// `true` for errors that a bounded retry with backoff may clear.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            SdgError::Io {
                transient: true,
                ..
            }
        )
    }
}

impl fmt::Display for SdgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdgError::Type { expected, found } => {
                write!(f, "type error: expected {expected}, found {found}")
            }
            SdgError::Codec(m) => write!(f, "codec error: {m}"),
            SdgError::Parse { line, col, message } => {
                write!(f, "parse error at {line}:{col}: {message}")
            }
            SdgError::Analysis { line, col, message } => {
                if *line == 0 {
                    write!(f, "analysis error: {message}")
                } else {
                    write!(f, "analysis error at {line}:{col}: {message}")
                }
            }
            SdgError::Translate(m) => write!(f, "translation error: {m}"),
            SdgError::InvalidGraph(m) => write!(f, "invalid SDG: {m}"),
            SdgError::NotFound(m) => write!(f, "not found: {m}"),
            SdgError::Runtime(m) => write!(f, "runtime error: {m}"),
            SdgError::Recovery(m) => write!(f, "recovery error: {m}"),
            SdgError::Io { transient, message } => {
                let class = if *transient {
                    "transient"
                } else {
                    "persistent"
                };
                write!(f, "{class} I/O error: {message}")
            }
            SdgError::Eval(m) => write!(f, "evaluation error: {m}"),
            SdgError::State(m) => write!(f, "state error: {m}"),
            SdgError::Config(m) => write!(f, "config error: {m}"),
        }
    }
}

impl std::error::Error for SdgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SdgError::type_mismatch("Int", "Str");
        assert_eq!(e.to_string(), "type error: expected Int, found Str");

        let e = SdgError::parse(3, 14, "unexpected token `@`");
        assert_eq!(e.to_string(), "parse error at 3:14: unexpected token `@`");

        let e = SdgError::analysis(7, 9, "undefined variable `x`");
        assert_eq!(
            e.to_string(),
            "analysis error at 7:9: undefined variable `x`"
        );
        let e = SdgError::analysis(0, 0, "recursive call");
        assert_eq!(e.to_string(), "analysis error: recursive call");
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&SdgError::Runtime("boom".into()));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            SdgError::Codec("short read".into()),
            SdgError::Codec("short read".into())
        );
        assert_ne!(SdgError::Codec("a".into()), SdgError::analysis(0, 0, "a"));
    }
}

//! Scalar and vector timestamps for failure recovery.
//!
//! Per §5 of the paper, every dataflow carries increasing TE-generated scalar
//! timestamps, and a checkpoint embeds a vector timestamp — the last
//! timestamp from each input dataflow whose item modified the checkpointed
//! state. Upstream nodes trim output buffers below all downstream
//! checkpoints' vector entries, and downstream nodes discard replayed
//! duplicates at or below their restored watermark.

use std::collections::BTreeMap;
use std::fmt;

use crate::ids::EdgeId;

/// A scalar timestamp on one dataflow: strictly increasing per producer.
pub type ScalarTs = u64;

/// Generator of strictly increasing scalar timestamps for one output
/// dataflow of one TE instance.
#[derive(Debug, Default, Clone)]
pub struct TsGen {
    next: ScalarTs,
}

impl TsGen {
    /// Creates a generator starting at timestamp 1 (0 means "none seen").
    pub const fn new() -> Self {
        Self { next: 1 }
    }

    /// Resumes a generator so its next timestamp follows `last_emitted`.
    pub const fn resume_after(last_emitted: ScalarTs) -> Self {
        Self {
            next: last_emitted + 1,
        }
    }

    /// Returns the next timestamp.
    pub fn tick(&mut self) -> ScalarTs {
        let ts = self.next;
        self.next += 1;
        ts
    }

    /// Returns the most recently emitted timestamp (0 if none).
    pub fn last(&self) -> ScalarTs {
        self.next - 1
    }
}

/// A vector timestamp: per input dataflow, the highest scalar timestamp whose
/// item has been applied to local state.
///
/// Entries default to 0, meaning "nothing applied from that edge yet".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorTs {
    entries: BTreeMap<EdgeId, ScalarTs>,
}

impl VectorTs {
    /// Creates an empty vector timestamp.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the watermark for `edge` (0 when absent).
    pub fn get(&self, edge: EdgeId) -> ScalarTs {
        self.entries.get(&edge).copied().unwrap_or(0)
    }

    /// Records that the item with timestamp `ts` from `edge` was applied.
    ///
    /// Watermarks only move forward; regressions are ignored so replays
    /// cannot corrupt the vector.
    pub fn observe(&mut self, edge: EdgeId, ts: ScalarTs) {
        let slot = self.entries.entry(edge).or_insert(0);
        if ts > *slot {
            *slot = ts;
        }
    }

    /// Returns `true` if an item with timestamp `ts` on `edge` is a
    /// duplicate of already-applied input.
    pub fn is_duplicate(&self, edge: EdgeId, ts: ScalarTs) -> bool {
        ts <= self.get(edge)
    }

    /// Merges `other` into `self`, taking the per-edge maximum.
    ///
    /// Used when `n` recovered instances reconstitute the vector of a failed
    /// instance from checkpoint chunks.
    pub fn merge_max(&mut self, other: &VectorTs) {
        for (&edge, &ts) in &other.entries {
            self.observe(edge, ts);
        }
    }

    /// Returns the per-edge minimum across `vectors`.
    ///
    /// An upstream buffer for an edge can be trimmed below the minimum
    /// checkpointed watermark across **all** downstream consumers.
    pub fn pointwise_min<'a>(vectors: impl IntoIterator<Item = &'a VectorTs>) -> VectorTs {
        let mut iter = vectors.into_iter();
        let Some(first) = iter.next() else {
            return VectorTs::new();
        };
        let mut out = first.clone();
        for v in iter {
            // Edges missing from `v` have watermark 0, so they clamp to 0.
            out.entries.retain(|edge, ts| {
                let other = v.get(*edge);
                *ts = (*ts).min(other);
                *ts > 0
            });
        }
        out
    }

    /// Returns `true` if every entry of `self` is ≥ the matching entry of
    /// `other`.
    pub fn dominates(&self, other: &VectorTs) -> bool {
        other.entries.iter().all(|(&e, &ts)| self.get(e) >= ts)
    }

    /// Iterates over `(edge, watermark)` pairs in edge order.
    pub fn iter(&self) -> impl Iterator<Item = (EdgeId, ScalarTs)> + '_ {
        self.entries.iter().map(|(&e, &ts)| (e, ts))
    }

    /// Returns the number of edges with a non-zero watermark.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no edge has been observed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for VectorTs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (edge, ts)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{edge}:{ts}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsgen_is_strictly_increasing_from_one() {
        let mut gen = TsGen::new();
        assert_eq!(gen.last(), 0);
        let a = gen.tick();
        let b = gen.tick();
        assert_eq!((a, b), (1, 2));
        assert_eq!(gen.last(), 2);
    }

    #[test]
    fn tsgen_resume_continues_after_watermark() {
        let mut gen = TsGen::resume_after(41);
        assert_eq!(gen.tick(), 42);
    }

    #[test]
    fn observe_never_regresses() {
        let mut v = VectorTs::new();
        v.observe(EdgeId(1), 10);
        v.observe(EdgeId(1), 5);
        assert_eq!(v.get(EdgeId(1)), 10);
        assert_eq!(v.get(EdgeId(2)), 0);
    }

    #[test]
    fn duplicate_detection_uses_watermark() {
        let mut v = VectorTs::new();
        v.observe(EdgeId(3), 7);
        assert!(v.is_duplicate(EdgeId(3), 7));
        assert!(v.is_duplicate(EdgeId(3), 3));
        assert!(!v.is_duplicate(EdgeId(3), 8));
        assert!(!v.is_duplicate(EdgeId(4), 1));
    }

    #[test]
    fn merge_max_takes_pointwise_maximum() {
        let mut a = VectorTs::new();
        a.observe(EdgeId(1), 5);
        a.observe(EdgeId(2), 1);
        let mut b = VectorTs::new();
        b.observe(EdgeId(1), 3);
        b.observe(EdgeId(3), 9);
        a.merge_max(&b);
        assert_eq!(a.get(EdgeId(1)), 5);
        assert_eq!(a.get(EdgeId(2)), 1);
        assert_eq!(a.get(EdgeId(3)), 9);
    }

    #[test]
    fn pointwise_min_drives_buffer_trimming() {
        let mut a = VectorTs::new();
        a.observe(EdgeId(1), 5);
        a.observe(EdgeId(2), 8);
        let mut b = VectorTs::new();
        b.observe(EdgeId(1), 3);
        // Edge 2 missing from `b` means b has applied nothing from it.
        let min = VectorTs::pointwise_min([&a, &b]);
        assert_eq!(min.get(EdgeId(1)), 3);
        assert_eq!(min.get(EdgeId(2)), 0);
        let empty: [&VectorTs; 0] = [];
        assert_eq!(VectorTs::pointwise_min(empty), VectorTs::new());
    }

    #[test]
    fn dominates_is_pointwise() {
        let mut a = VectorTs::new();
        a.observe(EdgeId(1), 5);
        a.observe(EdgeId(2), 2);
        let mut b = VectorTs::new();
        b.observe(EdgeId(1), 5);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        b.observe(EdgeId(3), 1);
        assert!(!a.dominates(&b));
    }

    #[test]
    fn display_lists_entries() {
        let mut v = VectorTs::new();
        v.observe(EdgeId(2), 4);
        v.observe(EdgeId(1), 9);
        assert_eq!(v.to_string(), "{d1:9, d2:4}");
    }
}

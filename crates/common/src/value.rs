//! The dynamic data model carried by dataflows and stored in state elements.
//!
//! Translated StateLang programs are dynamically typed at TE boundaries, so
//! dataflow items carry [`Value`]s grouped into named [`Record`]s (the live
//! variables crossing a TE boundary, §4.2 step 5 of the paper). State
//! structures that need hashable, totally ordered keys use the [`Key`]
//! subset, which excludes floats.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::error::{SdgError, SdgResult};

/// A dynamically typed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The absence of a value.
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// An immutable, cheaply clonable string.
    Str(Arc<str>),
    /// A list of values (used for `@Collection` arrays, vectors, rows).
    List(Vec<Value>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Returns a static name for the runtime type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "Null",
            Value::Bool(_) => "Bool",
            Value::Int(_) => "Int",
            Value::Float(_) => "Float",
            Value::Str(_) => "Str",
            Value::List(_) => "List",
        }
    }

    /// Extracts an integer, or reports a type error.
    pub fn as_int(&self) -> SdgResult<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(SdgError::type_mismatch("Int", other.type_name())),
        }
    }

    /// Extracts a float; integers are widened.
    pub fn as_float(&self) -> SdgResult<f64> {
        match self {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            other => Err(SdgError::type_mismatch("Float", other.type_name())),
        }
    }

    /// Extracts a boolean, or reports a type error.
    pub fn as_bool(&self) -> SdgResult<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(SdgError::type_mismatch("Bool", other.type_name())),
        }
    }

    /// Extracts a string slice, or reports a type error.
    pub fn as_str(&self) -> SdgResult<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(SdgError::type_mismatch("Str", other.type_name())),
        }
    }

    /// Extracts a list, or reports a type error.
    pub fn as_list(&self) -> SdgResult<&[Value]> {
        match self {
            Value::List(v) => Ok(v),
            other => Err(SdgError::type_mismatch("List", other.type_name())),
        }
    }

    /// Returns `true` if the value is considered truthy.
    ///
    /// Only `Bool` carries truthiness; every other type is a type error, so
    /// interpreter conditions stay strict.
    pub fn truthy(&self) -> SdgResult<bool> {
        self.as_bool()
    }

    /// Converts this value to a hashable [`Key`].
    ///
    /// Floats and nulls are rejected because their equality semantics make
    /// them unsuitable as partitioning keys.
    pub fn to_key(&self) -> SdgResult<Key> {
        match self {
            Value::Bool(b) => Ok(Key::Bool(*b)),
            Value::Int(i) => Ok(Key::Int(*i)),
            Value::Str(s) => Ok(Key::Str(s.clone())),
            Value::List(items) => {
                let keys = items.iter().map(Value::to_key).collect::<SdgResult<_>>()?;
                Ok(Key::Composite(keys))
            }
            other => Err(SdgError::type_mismatch(
                "key (Bool|Int|Str|List)",
                other.type_name(),
            )),
        }
    }

    /// Approximates the in-memory footprint in bytes.
    ///
    /// Used for state-size accounting in checkpoints and benchmarks; it does
    /// not need to be exact, only monotone in the real size.
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Null | Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 8,
            Value::Str(s) => s.len() + 8,
            Value::List(v) => 8 + v.iter().map(Value::approx_size).sum::<usize>(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::List(v) => {
                write!(f, "[")?;
                for (i, item) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::List(v)
    }
}

impl From<Key> for Value {
    fn from(k: Key) -> Self {
        match k {
            Key::Bool(b) => Value::Bool(b),
            Key::Int(i) => Value::Int(i),
            Key::Str(s) => Value::Str(s),
            Key::Composite(items) => Value::List(items.into_iter().map(Value::from).collect()),
        }
    }
}

/// The hashable, totally ordered subset of [`Value`] usable as a state or
/// partitioning key.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Key {
    /// A boolean key.
    Bool(bool),
    /// An integer key.
    Int(i64),
    /// A string key.
    Str(Arc<str>),
    /// A composite key (tuple of keys).
    Composite(Vec<Key>),
}

impl Key {
    /// Builds a string key.
    pub fn str(s: impl AsRef<str>) -> Self {
        Key::Str(Arc::from(s.as_ref()))
    }

    /// Builds an integer key.
    pub const fn int(i: i64) -> Self {
        Key::Int(i)
    }

    /// Returns a stable 64-bit hash of the key.
    ///
    /// The hash is FNV-1a over a canonical byte rendering, so it is identical
    /// across processes and runs — a requirement for deterministic
    /// repartitioning during recovery and scale-out.
    pub fn stable_hash(&self) -> u64 {
        let mut h = Fnv1a::new();
        self.feed(&mut h);
        h.finish()
    }

    fn feed(&self, h: &mut Fnv1a) {
        match self {
            Key::Bool(b) => {
                h.write_u8(0);
                h.write_u8(*b as u8);
            }
            Key::Int(i) => {
                h.write_u8(1);
                h.write_bytes(&i.to_le_bytes());
            }
            Key::Str(s) => {
                h.write_u8(2);
                h.write_bytes(s.as_bytes());
            }
            Key::Composite(items) => {
                h.write_u8(3);
                h.write_bytes(&(items.len() as u64).to_le_bytes());
                for item in items {
                    item.feed(h);
                }
            }
        }
    }

    /// Approximates the in-memory footprint in bytes.
    pub fn approx_size(&self) -> usize {
        match self {
            Key::Bool(_) => 1,
            Key::Int(_) => 8,
            Key::Str(s) => s.len() + 8,
            Key::Composite(items) => 8 + items.iter().map(Key::approx_size).sum::<usize>(),
        }
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", Value::from(self.clone()))
    }
}

/// Incremental FNV-1a hasher with a fixed, process-independent seed.
#[derive(Debug)]
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    fn write_u8(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(Self::PRIME);
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Stable FNV-1a hash of an arbitrary byte slice.
///
/// Exposed for checkpoint chunk assignment, which must partition identically
/// during backup and restore even across process restarts.
pub fn stable_hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_bytes(bytes);
    h.finish()
}

/// A set of named values: the payload of a dataflow item.
///
/// Records hold the live variables that cross a TE boundary. Field order is
/// insertion order; lookups are linear, which is faster than hashing for the
/// small arity (≤ ~8) of real dataflow edges.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Record {
    fields: Vec<(Arc<str>, Value)>,
}

impl Record {
    /// Creates an empty record.
    pub fn new() -> Self {
        Record { fields: Vec::new() }
    }

    /// Creates a record with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Record {
            fields: Vec::with_capacity(cap),
        }
    }

    /// Appends `name = value` **without** scanning for an existing binding.
    ///
    /// Callers must guarantee `name` is not already present (e.g. when
    /// building a record from a sorted, deduplicated live-variable set).
    /// Taking an `Arc<str>` lets hot paths reuse interned names instead of
    /// re-allocating them per item.
    pub fn push_unchecked(&mut self, name: Arc<str>, value: Value) {
        debug_assert!(self.get(&name).is_none(), "duplicate field `{name}`");
        self.fields.push((name, value));
    }

    /// Sets `name` to `value`, replacing any existing binding.
    pub fn set(&mut self, name: impl AsRef<str>, value: Value) {
        let name = name.as_ref();
        if let Some(slot) = self.fields.iter_mut().find(|(n, _)| &**n == name) {
            slot.1 = value;
        } else {
            self.fields.push((Arc::from(name), value));
        }
    }

    /// Returns the value bound to `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields
            .iter()
            .find(|(n, _)| &**n == name)
            .map(|(_, v)| v)
    }

    /// Returns the value bound to `name`, or a [`SdgError::NotFound`].
    pub fn require(&self, name: &str) -> SdgResult<&Value> {
        self.get(name)
            .ok_or_else(|| SdgError::NotFound(format!("record field `{name}`")))
    }

    /// Removes the binding for `name`, returning its value.
    pub fn remove(&mut self, name: &str) -> Option<Value> {
        let idx = self.fields.iter().position(|(n, _)| &**n == name)?;
        Some(self.fields.remove(idx).1)
    }

    /// Returns the number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Returns `true` if the record has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Iterates over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|(n, v)| (&**n, v))
    }

    /// Returns the field at `idx` (insertion order), if in bounds.
    ///
    /// The name comes back as the interned `Arc<str>` so callers can clone
    /// it without re-allocating the string.
    pub fn at(&self, idx: usize) -> Option<(&Arc<str>, &Value)> {
        self.fields.get(idx).map(|(n, v)| (n, v))
    }

    /// Returns the insertion-order index of `name`, if present.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|(n, _)| &**n == name)
    }

    /// Returns `true` if the record's fields are exactly `names`, in order.
    ///
    /// Used to skip projection when an edge's live set already equals the
    /// payload's field set (the common case for compiled TEs, whose output
    /// records are built from the sorted live-variable list).
    pub fn fields_match(&self, names: &[impl AsRef<str>]) -> bool {
        self.fields.len() == names.len()
            && self
                .fields
                .iter()
                .zip(names)
                .all(|((n, _), want)| &**n == want.as_ref())
    }

    /// Keeps only the fields whose names appear in `names` (the live set).
    pub fn project(&self, names: &[impl AsRef<str>]) -> Record {
        let mut out = Record::with_capacity(names.len());
        for name in names {
            if let Some(v) = self.get(name.as_ref()) {
                out.set(name.as_ref(), v.clone());
            }
        }
        out
    }

    /// Approximates the in-memory footprint in bytes.
    pub fn approx_size(&self) -> usize {
        self.fields
            .iter()
            .map(|(n, v)| n.len() + v.approx_size() + 16)
            .sum()
    }
}

impl FromIterator<(Arc<str>, Value)> for Record {
    fn from_iter<T: IntoIterator<Item = (Arc<str>, Value)>>(iter: T) -> Self {
        let mut r = Record::new();
        for (n, v) in iter {
            r.set(&*n, v);
        }
        r
    }
}

/// Convenience constructor macro for records: `record!{"a" => Value::Int(1)}`.
#[macro_export]
macro_rules! record {
    ($($name:expr => $value:expr),* $(,)?) => {{
        let mut r = $crate::value::Record::new();
        $( r.set($name, $value); )*
        r
    }};
}

/// Compares two values with numeric widening, for interpreter comparisons.
///
/// Returns `None` when the types are incomparable (e.g. `Int` vs `Str`).
pub fn compare_values(a: &Value, b: &Value) -> Option<Ordering> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Some(x.cmp(y)),
        (Value::Float(x), Value::Float(y)) => x.partial_cmp(y),
        (Value::Int(x), Value::Float(y)) => (*x as f64).partial_cmp(y),
        (Value::Float(x), Value::Int(y)) => x.partial_cmp(&(*y as f64)),
        (Value::Str(x), Value::Str(y)) => Some(x.cmp(y)),
        (Value::Bool(x), Value::Bool(y)) => Some(x.cmp(y)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_enforce_types() {
        assert_eq!(Value::Int(7).as_int().unwrap(), 7);
        assert!(Value::str("x").as_int().is_err());
        assert_eq!(Value::Int(7).as_float().unwrap(), 7.0);
        assert!(Value::Bool(true).as_bool().unwrap());
        assert_eq!(Value::str("hi").as_str().unwrap(), "hi");
        assert!(Value::Null.truthy().is_err());
    }

    #[test]
    fn keys_reject_floats_and_nulls() {
        assert!(Value::Float(1.0).to_key().is_err());
        assert!(Value::Null.to_key().is_err());
        assert_eq!(Value::Int(3).to_key().unwrap(), Key::Int(3));
        let composite = Value::List(vec![Value::Int(1), Value::str("a")]);
        assert_eq!(
            composite.to_key().unwrap(),
            Key::Composite(vec![Key::Int(1), Key::str("a")])
        );
    }

    #[test]
    fn stable_hash_is_deterministic_and_spreads() {
        let h1 = Key::Int(42).stable_hash();
        let h2 = Key::Int(42).stable_hash();
        assert_eq!(h1, h2);
        assert_ne!(Key::Int(42).stable_hash(), Key::Int(43).stable_hash());
        assert_ne!(Key::Int(42).stable_hash(), Key::str("42").stable_hash());
        // Composite keys hash differently from their flattened parts.
        assert_ne!(
            Key::Composite(vec![Key::Int(1), Key::Int(2)]).stable_hash(),
            Key::Composite(vec![Key::Int(12)]).stable_hash()
        );
    }

    #[test]
    fn record_set_get_replace() {
        let mut r = Record::new();
        r.set("user", Value::Int(1));
        r.set("item", Value::Int(2));
        assert_eq!(r.get("user"), Some(&Value::Int(1)));
        r.set("user", Value::Int(9));
        assert_eq!(r.get("user"), Some(&Value::Int(9)));
        assert_eq!(r.len(), 2);
        assert!(r.require("missing").is_err());
    }

    #[test]
    fn record_projection_keeps_only_live_variables() {
        let r = record! {
            "a" => Value::Int(1),
            "b" => Value::Int(2),
            "c" => Value::Int(3),
        };
        let p = r.project(&["a", "c", "zzz"]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.get("a"), Some(&Value::Int(1)));
        assert_eq!(p.get("c"), Some(&Value::Int(3)));
        assert_eq!(p.get("b"), None);
    }

    #[test]
    fn record_remove() {
        let mut r = record! {"a" => Value::Int(1), "b" => Value::Int(2)};
        assert_eq!(r.remove("a"), Some(Value::Int(1)));
        assert_eq!(r.remove("a"), None);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn compare_widens_numerics() {
        use std::cmp::Ordering::*;
        assert_eq!(
            compare_values(&Value::Int(1), &Value::Float(1.5)),
            Some(Less)
        );
        assert_eq!(
            compare_values(&Value::Float(2.0), &Value::Int(2)),
            Some(Equal)
        );
        assert_eq!(
            compare_values(&Value::str("b"), &Value::str("a")),
            Some(Greater)
        );
        assert_eq!(compare_values(&Value::Int(1), &Value::str("1")), None);
    }

    #[test]
    fn display_renders_nested_values() {
        let v = Value::List(vec![Value::Int(1), Value::str("a"), Value::Null]);
        assert_eq!(v.to_string(), "[1, \"a\", null]");
    }

    #[test]
    fn approx_size_is_monotone() {
        let small = Value::str("ab");
        let big = Value::str("abcdefgh");
        assert!(big.approx_size() > small.approx_size());
        let list = Value::List(vec![small.clone(), big.clone()]);
        assert!(list.approx_size() > big.approx_size());
    }
}

//! A compact, stable binary encoding for checkpoint and wire data.
//!
//! Checkpoint chunks must be encoded the same way regardless of process,
//! platform or run, because recovery hash-partitions entries by their
//! encoded keys (§5 of the paper). The format is deliberately simple:
//! LEB128 varints, zig-zag signed integers, little-endian float bits and
//! length-prefixed strings, each value prefixed by a one-byte tag.

use bytes::{BufMut, BytesMut};

use crate::error::{SdgError, SdgResult};
use crate::ids::EdgeId;
use crate::time::VectorTs;
use crate::value::{Key, Record, Value};

/// Types that can be written to and read back from the SDG binary format.
pub trait Codec: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Decodes one value from the front of `r`.
    fn decode(r: &mut Reader<'_>) -> SdgResult<Self>;
}

/// Encodes `value` into a fresh byte vector.
pub fn encode_to_vec<T: Codec>(value: &T) -> Vec<u8> {
    let mut buf = BytesMut::new();
    value.encode(&mut buf);
    buf.to_vec()
}

/// Decodes a value from `bytes`, requiring that all input is consumed.
pub fn decode_from_slice<T: Codec>(bytes: &[u8]) -> SdgResult<T> {
    let mut r = Reader::new(bytes);
    let v = T::decode(&mut r)?;
    if !r.is_empty() {
        return Err(SdgError::Codec(format!(
            "{} trailing bytes after value",
            r.remaining()
        )));
    }
    Ok(v)
}

/// A cursor over a byte slice with bounds-checked primitive readers.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Returns the number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Returns `true` when all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads one byte.
    pub fn read_u8(&mut self) -> SdgResult<u8> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| SdgError::Codec("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads `n` raw bytes.
    pub fn read_bytes(&mut self, n: usize) -> SdgResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| SdgError::Codec(format!("short read: wanted {n} bytes")))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads an unsigned LEB128 varint.
    pub fn read_varint(&mut self) -> SdgResult<u64> {
        let mut out: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.read_u8()?;
            if shift >= 64 || (shift == 63 && b > 1) {
                return Err(SdgError::Codec("varint overflows u64".into()));
            }
            out |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
        }
    }

    /// Reads a zig-zag encoded signed integer.
    pub fn read_zigzag(&mut self) -> SdgResult<i64> {
        let raw = self.read_varint()?;
        Ok(((raw >> 1) as i64) ^ -((raw & 1) as i64))
    }

    /// Reads a little-endian f64.
    pub fn read_f64(&mut self) -> SdgResult<f64> {
        let bytes = self.read_bytes(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(bytes);
        Ok(f64::from_le_bytes(arr))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn read_str(&mut self) -> SdgResult<&'a str> {
        let len = self.read_varint()? as usize;
        let bytes = self.read_bytes(len)?;
        std::str::from_utf8(bytes).map_err(|e| SdgError::Codec(format!("invalid utf-8: {e}")))
    }
}

/// Appends an unsigned LEB128 varint to `buf`.
pub fn write_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Appends a zig-zag encoded signed integer to `buf`.
pub fn write_zigzag(buf: &mut BytesMut, v: i64) {
    write_varint(buf, ((v << 1) ^ (v >> 63)) as u64);
}

/// Appends a length-prefixed UTF-8 string to `buf`.
pub fn write_str(buf: &mut BytesMut, s: &str) {
    write_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

const TAG_NULL: u8 = 0;
const TAG_BOOL_FALSE: u8 = 1;
const TAG_BOOL_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_LIST: u8 = 6;
const TAG_COMPOSITE: u8 = 7;

impl Codec for Value {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Value::Null => buf.put_u8(TAG_NULL),
            Value::Bool(false) => buf.put_u8(TAG_BOOL_FALSE),
            Value::Bool(true) => buf.put_u8(TAG_BOOL_TRUE),
            Value::Int(i) => {
                buf.put_u8(TAG_INT);
                write_zigzag(buf, *i);
            }
            Value::Float(x) => {
                buf.put_u8(TAG_FLOAT);
                buf.put_slice(&x.to_le_bytes());
            }
            Value::Str(s) => {
                buf.put_u8(TAG_STR);
                write_str(buf, s);
            }
            Value::List(items) => {
                buf.put_u8(TAG_LIST);
                write_varint(buf, items.len() as u64);
                for item in items {
                    item.encode(buf);
                }
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> SdgResult<Self> {
        match r.read_u8()? {
            TAG_NULL => Ok(Value::Null),
            TAG_BOOL_FALSE => Ok(Value::Bool(false)),
            TAG_BOOL_TRUE => Ok(Value::Bool(true)),
            TAG_INT => Ok(Value::Int(r.read_zigzag()?)),
            TAG_FLOAT => Ok(Value::Float(r.read_f64()?)),
            TAG_STR => Ok(Value::str(r.read_str()?)),
            TAG_LIST => {
                let len = r.read_varint()? as usize;
                if len > r.remaining() {
                    // Each element takes at least one byte; reject absurd
                    // lengths before allocating.
                    return Err(SdgError::Codec(format!("list length {len} exceeds input")));
                }
                let mut items = Vec::with_capacity(len);
                for _ in 0..len {
                    items.push(Value::decode(r)?);
                }
                Ok(Value::List(items))
            }
            tag => Err(SdgError::Codec(format!("unknown value tag {tag}"))),
        }
    }
}

impl Codec for Key {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Key::Bool(false) => buf.put_u8(TAG_BOOL_FALSE),
            Key::Bool(true) => buf.put_u8(TAG_BOOL_TRUE),
            Key::Int(i) => {
                buf.put_u8(TAG_INT);
                write_zigzag(buf, *i);
            }
            Key::Str(s) => {
                buf.put_u8(TAG_STR);
                write_str(buf, s);
            }
            Key::Composite(items) => {
                buf.put_u8(TAG_COMPOSITE);
                write_varint(buf, items.len() as u64);
                for item in items {
                    item.encode(buf);
                }
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> SdgResult<Self> {
        match r.read_u8()? {
            TAG_BOOL_FALSE => Ok(Key::Bool(false)),
            TAG_BOOL_TRUE => Ok(Key::Bool(true)),
            TAG_INT => Ok(Key::Int(r.read_zigzag()?)),
            TAG_STR => Ok(Key::str(r.read_str()?)),
            TAG_COMPOSITE => {
                let len = r.read_varint()? as usize;
                if len > r.remaining() {
                    return Err(SdgError::Codec(format!("key length {len} exceeds input")));
                }
                let mut items = Vec::with_capacity(len);
                for _ in 0..len {
                    items.push(Key::decode(r)?);
                }
                Ok(Key::Composite(items))
            }
            tag => Err(SdgError::Codec(format!("unknown key tag {tag}"))),
        }
    }
}

impl Codec for Record {
    fn encode(&self, buf: &mut BytesMut) {
        write_varint(buf, self.len() as u64);
        for (name, value) in self.iter() {
            write_str(buf, name);
            value.encode(buf);
        }
    }

    fn decode(r: &mut Reader<'_>) -> SdgResult<Self> {
        let len = r.read_varint()? as usize;
        if len > r.remaining() {
            return Err(SdgError::Codec(format!(
                "record length {len} exceeds input"
            )));
        }
        let mut rec = Record::with_capacity(len);
        for _ in 0..len {
            let name = r.read_str()?.to_owned();
            let value = Value::decode(r)?;
            rec.set(name, value);
        }
        Ok(rec)
    }
}

impl Codec for VectorTs {
    fn encode(&self, buf: &mut BytesMut) {
        let entries: Vec<_> = self.iter().collect();
        write_varint(buf, entries.len() as u64);
        for (edge, ts) in entries {
            write_varint(buf, u64::from(edge.raw()));
            write_varint(buf, ts);
        }
    }

    fn decode(r: &mut Reader<'_>) -> SdgResult<Self> {
        let len = r.read_varint()? as usize;
        if len > r.remaining() {
            return Err(SdgError::Codec(format!(
                "vector length {len} exceeds input"
            )));
        }
        let mut v = VectorTs::new();
        for _ in 0..len {
            let edge = r.read_varint()?;
            let edge = u32::try_from(edge)
                .map_err(|_| SdgError::Codec(format!("edge id {edge} out of range")))?;
            let ts = r.read_varint()?;
            v.observe(EdgeId(edge), ts);
        }
        Ok(v)
    }
}

impl Codec for u64 {
    fn encode(&self, buf: &mut BytesMut) {
        write_varint(buf, *self);
    }

    fn decode(r: &mut Reader<'_>) -> SdgResult<Self> {
        r.read_varint()
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        write_varint(buf, self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }

    fn decode(r: &mut Reader<'_>) -> SdgResult<Self> {
        let len = r.read_varint()? as usize;
        if len > r.remaining() {
            return Err(SdgError::Codec(format!("vec length {len} exceeds input")));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }

    fn decode(r: &mut Reader<'_>) -> SdgResult<Self> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = encode_to_vec(v);
        let back: T = decode_from_slice(&bytes).expect("decode");
        assert_eq!(&back, v);
    }

    #[test]
    fn varint_boundaries_roundtrip() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = BytesMut::new();
            write_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.read_varint().unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn zigzag_boundaries_roundtrip() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -300, 300] {
            let mut buf = BytesMut::new();
            write_zigzag(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.read_zigzag().unwrap(), v);
        }
    }

    #[test]
    fn values_roundtrip() {
        roundtrip(&Value::Null);
        roundtrip(&Value::Bool(true));
        roundtrip(&Value::Int(-42));
        roundtrip(&Value::Float(3.5));
        roundtrip(&Value::str("hello κόσμε"));
        roundtrip(&Value::List(vec![
            Value::Int(1),
            Value::List(vec![Value::str("nested")]),
            Value::Null,
        ]));
    }

    #[test]
    fn keys_roundtrip() {
        roundtrip(&Key::Int(7));
        roundtrip(&Key::str("user:1"));
        roundtrip(&Key::Composite(vec![Key::Int(1), Key::Bool(false)]));
    }

    #[test]
    fn records_roundtrip_preserving_order() {
        let rec = record! {
            "user" => Value::Int(12),
            "row" => Value::List(vec![Value::Float(0.5); 3]),
        };
        let bytes = encode_to_vec(&rec);
        let back: Record = decode_from_slice(&bytes).unwrap();
        let names: Vec<_> = back.iter().map(|(n, _)| n.to_owned()).collect();
        assert_eq!(names, ["user", "row"]);
        assert_eq!(back, rec);
    }

    #[test]
    fn vector_ts_roundtrips() {
        let mut v = VectorTs::new();
        v.observe(EdgeId(4), 99);
        v.observe(EdgeId(1), 3);
        roundtrip(&v);
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let bytes = encode_to_vec(&Value::str("hello"));
        for cut in 0..bytes.len() {
            let r: SdgResult<Value> = decode_from_slice(&bytes[..cut]);
            assert!(r.is_err(), "truncation at {cut} must fail");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_to_vec(&Value::Int(1));
        bytes.push(0);
        let r: SdgResult<Value> = decode_from_slice(&bytes);
        assert!(r.is_err());
    }

    #[test]
    fn absurd_list_length_is_rejected_without_allocating() {
        // Tag LIST + varint length of u32::MAX with no payload.
        let mut buf = BytesMut::new();
        buf.put_u8(6);
        write_varint(&mut buf, u64::from(u32::MAX));
        let r: SdgResult<Value> = decode_from_slice(&buf);
        assert!(r.is_err());
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let r: SdgResult<Value> = decode_from_slice(&[250]);
        assert!(matches!(r, Err(SdgError::Codec(_))));
    }

    #[test]
    fn vec_and_tuple_roundtrip() {
        roundtrip(&vec![1u64, 2, 3]);
        roundtrip(&(7u64, Value::str("x")));
    }
}

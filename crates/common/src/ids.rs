//! Typed identifiers for the elements of a stateful dataflow graph.
//!
//! Every identifier is a thin newtype over `u32` so they are `Copy`, cheap to
//! hash and impossible to confuse with one another: passing a [`TaskId`]
//! where a [`StateId`] is expected is a compile-time error.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw numeric value.
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }
    };
}

define_id!(
    /// Identifier of a task element (TE) in an SDG.
    TaskId,
    "t"
);
define_id!(
    /// Identifier of a state element (SE) in an SDG.
    StateId,
    "s"
);
define_id!(
    /// Identifier of a physical (simulated) cluster node.
    NodeId,
    "n"
);
define_id!(
    /// Identifier of a dataflow edge between two task elements.
    EdgeId,
    "d"
);

/// Identifier of one runtime instance of a task or state element.
///
/// A task element `t` may be instantiated several times for data-parallel
/// processing (§3.1 of the paper); instance `j` of element `t` is written
/// `t^j` in the paper and rendered as `t3#1` here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId {
    /// The task element this instance belongs to.
    pub task: TaskId,
    /// The replica index, starting at zero.
    pub replica: u32,
}

impl InstanceId {
    /// Creates the instance identifier for replica `replica` of `task`.
    pub const fn new(task: TaskId, replica: u32) -> Self {
        Self { task, replica }
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.task, self.replica)
    }
}

/// A compact generator handing out consecutive identifiers.
///
/// Graph builders use one generator per identifier family so ids stay dense,
/// which lets downstream components index by `id.raw() as usize`.
#[derive(Debug, Default, Clone)]
pub struct IdGen {
    next: u32,
}

impl IdGen {
    /// Creates a generator starting at zero.
    pub const fn new() -> Self {
        Self { next: 0 }
    }

    /// Returns the next raw identifier value.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` identifiers are requested, which cannot
    /// happen for realistic graphs.
    pub fn next_raw(&mut self) -> u32 {
        let id = self.next;
        self.next = self.next.checked_add(1).expect("id space exhausted");
        id
    }

    /// Returns how many identifiers have been handed out so far.
    pub fn count(&self) -> u32 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_uses_prefixes() {
        assert_eq!(TaskId(3).to_string(), "t3");
        assert_eq!(StateId(0).to_string(), "s0");
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(EdgeId(12).to_string(), "d12");
        assert_eq!(InstanceId::new(TaskId(3), 1).to_string(), "t3#1");
    }

    #[test]
    fn ids_are_distinct_types() {
        // This is a compile-time property; here we only check value identity.
        assert_eq!(TaskId::from(5).raw(), 5);
        assert_eq!(StateId::from(5).raw(), 5);
    }

    #[test]
    fn idgen_is_dense_and_unique() {
        let mut gen = IdGen::new();
        let ids: Vec<u32> = (0..100).map(|_| gen.next_raw()).collect();
        assert_eq!(ids, (0..100).collect::<Vec<_>>());
        let unique: HashSet<u32> = ids.into_iter().collect();
        assert_eq!(unique.len(), 100);
        assert_eq!(gen.count(), 100);
    }

    #[test]
    fn instance_ids_order_by_task_then_replica() {
        let a = InstanceId::new(TaskId(1), 9);
        let b = InstanceId::new(TaskId(2), 0);
        assert!(a < b);
        let c = InstanceId::new(TaskId(2), 1);
        assert!(b < c);
    }
}

//! Shared foundations for the stateful dataflow graph (SDG) workspace.
//!
//! This crate holds the pieces every other crate agrees on:
//!
//! - [`ids`] — typed identifiers for task elements, state elements, nodes,
//!   instances and dataflow edges;
//! - [`value`] — the dynamic [`value::Value`] data model carried by dataflow
//!   items and stored inside state elements;
//! - [`time`] — scalar and vector timestamps used for output-buffer trimming
//!   and duplicate detection during recovery;
//! - [`codec`] — a small, stable binary encoding used for checkpoints and
//!   inter-node data items;
//! - [`metrics`] — counters, gauges and percentile sketches used by the
//!   runtime monitor and by the benchmark harness;
//! - [`obs`] — the deployment-wide observability layer: instrument
//!   registries, the bounded structured event log, and the
//!   [`obs::MetricsSnapshot`] schema every engine reports through;
//! - [`error`] — the workspace-wide error type.
//!
//! The design corresponds to §3 and §5 of *"Making State Explicit for
//! Imperative Big Data Processing"* (USENIX ATC '14): data items carry
//! monotonically increasing scalar timestamps per dataflow, and checkpoints
//! embed a vector timestamp of the last item applied from each input.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod error;
pub mod ids;
pub mod metrics;
pub mod obs;
pub mod time;
pub mod value;

pub use error::{SdgError, SdgResult};
pub use ids::{EdgeId, InstanceId, NodeId, StateId, TaskId};
pub use time::{ScalarTs, VectorTs};
pub use value::{Record, Value};

//! Lightweight metrics used by the runtime monitor and the bench harness.
//!
//! The paper reports candlestick percentiles (5th/25th/50th/75th/95th) for
//! latency and request rates for throughput. [`Histogram`] is a lock-free,
//! log-linear sketch (~3% relative error) suitable for per-item latency
//! recording on the hot path; [`Counter`] and [`Gauge`] are plain atomics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Returns the current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An atomically settable instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the gauge.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Returns the current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

const SUB_BUCKET_BITS: u32 = 5;
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
const BUCKET_GROUPS: usize = 64;
const BUCKET_COUNT: usize = BUCKET_GROUPS * SUB_BUCKETS;

/// A concurrent log-linear histogram of `u64` samples (e.g. nanoseconds).
///
/// Values are mapped to one of 64 power-of-two groups with 32 linear
/// sub-buckets each, giving a worst-case relative error of 1/32. Recording
/// is a single relaxed atomic increment, so many worker threads can share
/// one histogram without contention on a lock.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKET_COUNT]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not `Copy`; build through a Vec.
        let buckets: Vec<AtomicU64> = (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKET_COUNT]> = buckets
            .into_boxed_slice()
            .try_into()
            .expect("bucket count is fixed");
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn index_of(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            // Group 0 stores small values exactly.
            return value as usize;
        }
        // Group `g ≥ 1` covers `[S·2^(g-1), S·2^g)` where `S = SUB_BUCKETS`,
        // split into S linear sub-buckets of width `2^(g-1)`.
        let msb = 63 - value.leading_zeros();
        let group = (msb - SUB_BUCKET_BITS + 1) as usize;
        let sub = ((value >> (group - 1)) as usize) - SUB_BUCKETS;
        group * SUB_BUCKETS + sub
    }

    /// Returns a representative (midpoint) value for bucket `idx`.
    fn value_of(idx: usize) -> u64 {
        if idx < SUB_BUCKETS {
            return idx as u64;
        }
        let group = idx / SUB_BUCKETS; // ≥ 1
        let sub = (idx % SUB_BUCKETS) as u64;
        let shift = (group - 1) as u32;
        ((SUB_BUCKETS as u64 + sub) << shift) + (1u64 << shift) / 2
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        let idx = Self::index_of(value).min(BUCKET_COUNT - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a [`Duration`] in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Returns the number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Returns the smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        let v = self.min.load(Ordering::Relaxed);
        if v == u64::MAX {
            0
        } else {
            v
        }
    }

    /// Computes a percentile over the recorded samples.
    ///
    /// `p` is clamped into `[0, 100]`: `p <= 0` returns the exact minimum
    /// recorded sample and `p > 100` behaves like `p = 100`. Returns 0 when
    /// the histogram is empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        if p <= 0.0 {
            return self.min();
        }
        let rank = ((p.min(100.0) / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                // Bucket midpoints can fall outside the observed range;
                // clamp to the exact extremes.
                return Self::value_of(idx)
                    .min(self.max.load(Ordering::Relaxed))
                    .max(self.min());
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// Returns the arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / count as f64
        }
    }

    /// Produces the candlestick summary used in the paper's plots.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count(),
            mean: self.mean(),
            min: self.min(),
            p5: self.percentile(5.0),
            p25: self.percentile(25.0),
            p50: self.percentile(50.0),
            p75: self.percentile(75.0),
            p95: self.percentile(95.0),
            p99: self.percentile(99.0),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Resets all buckets to zero.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Candlestick percentile summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum sample.
    pub min: u64,
    /// 5th percentile.
    pub p5: u64,
    /// 25th percentile.
    pub p25: u64,
    /// Median.
    pub p50: u64,
    /// 75th percentile.
    pub p75: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Maximum sample.
    pub max: u64,
}

/// Measures sustained throughput over a wall-clock interval.
#[derive(Debug, Clone)]
pub struct ThroughputMeter {
    started: Instant,
    events: Arc<Counter>,
}

impl Default for ThroughputMeter {
    fn default() -> Self {
        Self::new()
    }
}

impl ThroughputMeter {
    /// Starts a meter now.
    pub fn new() -> Self {
        ThroughputMeter {
            started: Instant::now(),
            events: Arc::new(Counter::new()),
        }
    }

    /// Returns a cloneable handle for recording events from worker threads.
    pub fn recorder(&self) -> Arc<Counter> {
        Arc::clone(&self.events)
    }

    /// Records `n` events.
    pub fn add(&self, n: u64) {
        self.events.add(n);
    }

    /// Returns total recorded events.
    pub fn total(&self) -> u64 {
        self.events.get()
    }

    /// Returns events per second since the meter was created.
    pub fn rate(&self) -> f64 {
        let secs = self.started.elapsed().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.events.get() as f64 / secs
        }
    }

    /// Returns time elapsed since creation.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(42);
        assert_eq!(g.get(), 42);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.percentile(100.0), 31);
        assert_eq!(h.percentile(50.0), 15);
    }

    #[test]
    fn histogram_percentiles_are_within_relative_error() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (p, expected) in [(50.0, 5_000u64), (95.0, 9_500), (99.0, 9_900)] {
            let got = h.percentile(p);
            let err = (got as f64 - expected as f64).abs() / expected as f64;
            assert!(err < 0.05, "p{p}: got {got}, expected ~{expected}");
        }
    }

    #[test]
    fn histogram_mean_and_max() {
        let h = Histogram::new();
        h.record(10);
        h.record(20);
        h.record(90);
        assert!((h.mean() - 40.0).abs() < 1e-9);
        assert_eq!(h.summary().max, 90);
        assert_eq!(h.summary().count, 3);
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn histogram_reset_clears_samples() {
        let h = Histogram::new();
        h.record(1_000_000);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(99.0), 0);
    }

    #[test]
    fn percentile_zero_returns_recorded_minimum() {
        let h = Histogram::new();
        h.record(700);
        h.record(1_000);
        h.record(50_000);
        // Regression: p=0 used to land in the first non-empty bucket via a
        // `max(1.0)` rank accident, which reports the bucket midpoint, not
        // the recorded minimum.
        assert_eq!(h.percentile(0.0), 700);
        assert_eq!(h.percentile(-7.5), 700);
        assert_eq!(h.min(), 700);
    }

    #[test]
    fn percentile_above_hundred_clamps_to_max() {
        let h = Histogram::new();
        for v in 1..=1_000u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(150.0), h.percentile(100.0));
        assert_eq!(h.percentile(f64::INFINITY), h.percentile(100.0));
        assert_eq!(h.percentile(100.0), 1_000);
    }

    #[test]
    fn percentiles_never_leave_the_observed_range() {
        let h = Histogram::new();
        h.record(1_023); // Bucket midpoint is below the sample.
        for p in [0.0, 5.0, 50.0, 95.0, 100.0, 101.0] {
            assert_eq!(h.percentile(p), 1_023, "p{p}");
        }
        let s = h.summary();
        assert_eq!(s.min, 1_023);
        assert_eq!(s.max, 1_023);
    }

    #[test]
    fn min_resets_and_is_zero_when_empty() {
        let h = Histogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.percentile(0.0), 0);
        h.record(42);
        assert_eq!(h.min(), 42);
        h.reset();
        assert_eq!(h.min(), 0);
        assert_eq!(h.summary().min, 0);
    }

    #[test]
    fn histogram_handles_huge_values() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX / 2);
        assert_eq!(h.count(), 2);
        assert!(h.percentile(100.0) >= u64::MAX / 2);
    }

    #[test]
    fn histogram_is_shareable_across_threads() {
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for v in 0..1_000u64 {
                        h.record(v);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4_000);
    }

    #[test]
    fn throughput_meter_counts() {
        let m = ThroughputMeter::new();
        m.add(10);
        m.recorder().add(5);
        assert_eq!(m.total(), 15);
        std::thread::sleep(Duration::from_millis(5));
        assert!(m.rate() > 0.0);
    }
}

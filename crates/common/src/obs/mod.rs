//! `sdg-obs` — the deployment-wide observability layer.
//!
//! Every engine in this workspace (the SDG runtime and the three baseline
//! engines) reports through the same introspection schema:
//!
//! - [`MetricsRegistry`] holds labeled per-TE ([`TaskInstruments`]) and
//!   per-SE ([`StateInstruments`]) instruments — item counters, queue-depth
//!   gauges, service-time and end-to-end latency histograms, byte and
//!   dirty-overlay gauges — plus one set of [`CheckpointInstruments`]
//!   (phase timers for the §5 protocol) and a bounded structured
//!   [`EventLog`] of scale-out, straggler, checkpoint and recovery events
//!   with monotonic timestamps.
//! - [`MetricsRegistry::snapshot`] freezes everything into a plain-data
//!   [`MetricsSnapshot`] with text ([`MetricsSnapshot::to_text`]) and JSON
//!   ([`MetricsSnapshot::to_json`]) renderers; [`DeploymentStats`] is the
//!   one-line aggregate across all instruments.
//! - [`json`] is a dependency-free JSON tree parser used by tests and the
//!   CI smoke check to validate the rendered output.
//!
//! Recording is lock-free on the hot path (relaxed atomics and the
//! log-linear [`crate::metrics::Histogram`]); registry maps are only locked
//! when an instrument is first created or a snapshot is taken.

mod event;
pub mod json;
mod registry;
mod snapshot;

pub use event::{EventKind, EventLog, ObsEvent, DEFAULT_EVENT_CAPACITY};
pub use registry::{
    CheckpointInstruments, FaultInstruments, MetricsRegistry, ReconfigInstruments,
    RecoveryInstruments, SchedInstruments, StateInstruments, TaskInstruments,
};
pub use snapshot::{
    CheckpointStats, DeploymentStats, FaultStats, MetricsSnapshot, ReconfigStats, RecoveryStats,
    SchedStats, StateStats, TaskStats,
};

//! The per-deployment instrument registry.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;

use crate::ids::{StateId, TaskId};
use crate::metrics::{Counter, Gauge, Histogram};

use super::event::{EventKind, EventLog, ObsEvent, DEFAULT_EVENT_CAPACITY};
use super::snapshot::{
    CheckpointStats, FaultStats, MetricsSnapshot, ReconfigStats, RecoveryStats, SchedStats,
    StateStats, TaskStats,
};

/// Instruments of one task element (shared by all of its instances).
///
/// Counters are cumulative; gauges are refreshed by the owner right before
/// a snapshot; histograms are nanosecond-valued.
#[derive(Debug)]
pub struct TaskInstruments {
    /// Task label (unique within a registry).
    pub name: String,
    /// Graph task id, when the owner is the SDG runtime.
    pub id: Option<TaskId>,
    /// Items received by the task's instances (gather fragments included).
    pub items_in: Counter,
    /// Items forwarded downstream along dataflow edges.
    pub items_out: Counter,
    /// Values emitted on the external output sink.
    pub emits: Counter,
    /// Items fully processed (duplicates filtered during replay count,
    /// matching the engine's historical accounting).
    pub processed: Counter,
    /// Task-code execution errors.
    pub errors: Counter,
    /// Gather-barrier waits: fragments parked until the barrier filled.
    pub gather_waits: Counter,
    /// Queued items across the task's input channels (sampled).
    pub queue_depth: Gauge,
    /// Running instance count (sampled).
    pub instances: Gauge,
    /// Per-item service time in nanoseconds.
    pub service: Histogram,
    /// End-to-end request latency in nanoseconds, recorded at emit.
    pub latency: Histogram,
}

impl TaskInstruments {
    fn new(name: &str, id: Option<TaskId>) -> Self {
        TaskInstruments {
            name: name.to_string(),
            id,
            items_in: Counter::new(),
            items_out: Counter::new(),
            emits: Counter::new(),
            processed: Counter::new(),
            errors: Counter::new(),
            gather_waits: Counter::new(),
            queue_depth: Gauge::new(),
            instances: Gauge::new(),
            service: Histogram::new(),
            latency: Histogram::new(),
        }
    }
}

/// Instruments of one state element (all replicas together).
#[derive(Debug)]
pub struct StateInstruments {
    /// State label (unique within a registry).
    pub name: String,
    /// Graph state id, when the owner is the SDG runtime.
    pub id: Option<StateId>,
    /// SE instance count (sampled).
    pub instances: Gauge,
    /// Approximate bytes held across all instances (sampled).
    pub bytes: Gauge,
    /// Bytes in dirty overlays of instances currently checkpointing
    /// (sampled; zero outside a checkpoint).
    pub dirty_bytes: Gauge,
    /// Lock stripes per instance (sampled; 1 for unstriped cells).
    pub stripes: Gauge,
    /// Chunks marked dirty since the last completed checkpoint, summed
    /// across instances (sampled; zero when incremental mode is off).
    pub dirty_chunks: Gauge,
    /// Checkpoints taken of this SE's instances.
    pub checkpoints: Counter,
}

impl StateInstruments {
    fn new(name: &str, id: Option<StateId>) -> Self {
        StateInstruments {
            name: name.to_string(),
            id,
            instances: Gauge::new(),
            bytes: Gauge::new(),
            dirty_bytes: Gauge::new(),
            stripes: Gauge::new(),
            dirty_chunks: Gauge::new(),
            checkpoints: Counter::new(),
        }
    }
}

/// Phase timers and totals of the checkpoint/recovery subsystem (§5).
#[derive(Debug, Default)]
pub struct CheckpointInstruments {
    /// Checkpoints completed.
    pub taken: Counter,
    /// Of those, incremental delta generations (subset of `taken`).
    pub deltas: Counter,
    /// Checkpoints that failed.
    pub failed: Counter,
    /// Serialised state bytes written to backup stores.
    pub bytes: Counter,
    /// Items replayed from upstream buffers during recoveries.
    pub replayed: Counter,
    /// Output-buffer items whose wire encode was deferred off the dispatch
    /// path and performed at checkpoint-persist time.
    pub encode_deferred: Counter,
    /// Approximate bytes parked across upstream output buffers, sampled at
    /// snapshot time.
    pub buffered_bytes: Gauge,
    /// Lock-held snapshot initiation time (async step 1), ns.
    pub snapshot_ns: Histogram,
    /// Off-path serialise + backup time (async steps 2–4), ns.
    pub persist_ns: Histogram,
    /// Lock-held overlay consolidation time (async step 5), ns.
    pub consolidate_ns: Histogram,
    /// Stop-the-world total for synchronous checkpoints, ns.
    pub sync_ns: Histogram,
    /// State fetch + rebuild time during recovery (steps R1–R2), ns.
    pub restore_ns: Histogram,
}

/// Counters of the reconfiguration control plane: per-direction scale
/// totals and a histogram of bytes migrated per state-migration episode.
#[derive(Debug, Default)]
pub struct ReconfigInstruments {
    /// Instances added (scale-out reconfigurations completed).
    pub scale_outs: Counter,
    /// Instances removed (scale-in reconfigurations completed).
    pub scale_ins: Counter,
    /// Bytes moved between SE instances, one sample per migration episode.
    pub migrated_bytes: Histogram,
}

/// Counters and gauges of the cooperative actor scheduler (the `Pool`
/// execution mode). All zero under the thread-per-instance scheduler.
#[derive(Debug, Default)]
pub struct SchedInstruments {
    /// Pool worker threads (sampled once at pool start; zero = no pool).
    pub workers: Gauge,
    /// Actor activations: slices a pool worker ran.
    pub polls: Counter,
    /// Actors taken from another worker's local deque.
    pub steals: Counter,
    /// Times a pool worker parked for lack of runnable actors.
    pub parks: Counter,
    /// Producer actors suspended on a full downstream mailbox.
    pub suspends: Counter,
    /// Suspended actors rescheduled by arriving mailbox credit.
    pub resumes: Counter,
    /// Linger deadlines fired from the shared timer heap.
    pub timer_fires: Counter,
    /// Messages queued across all actor mailboxes (sampled).
    pub mailbox_depth: Gauge,
}

/// Counters of the fault-injection layer and failure detector. All zero
/// when no faults are injected and every worker stays healthy.
#[derive(Debug, Default)]
pub struct FaultInstruments {
    /// Worker/actor panics caught at the scheduler boundary.
    pub worker_panics: Counter,
    /// Heartbeat epochs seen stalled past the miss threshold.
    pub heartbeats_missed: Counter,
    /// Chunks found corrupt (checksum mismatch / truncation) on read.
    pub chunks_corrupt: Counter,
    /// Transient store I/O errors absorbed by retry.
    pub io_retries: Counter,
    /// Time from failure occurrence to supervisor detection, ns.
    pub detection_ns: Histogram,
}

/// Counters of the supervisor's automatic recovery driver.
#[derive(Debug, Default)]
pub struct RecoveryInstruments {
    /// Automatic fail-and-recover attempts started.
    pub started: Counter,
    /// Attempts that restored state and replayed buffers successfully.
    pub succeeded: Counter,
    /// Attempts that failed (will back off and retry, or escalate).
    pub failed: Counter,
    /// Restore-chain fallbacks to an older intact generation.
    pub chain_fallbacks: Counter,
    /// Recoveries currently in flight (storm-guard gauge).
    pub in_flight: Gauge,
    /// Full detection-to-resume recovery time (MTTR), ns.
    pub mttr_ns: Histogram,
}

/// A deployment's registry of instruments and events.
///
/// One registry is owned per engine (SDG deployment or baseline). Hot-path
/// recording goes straight through the shared [`TaskInstruments`] /
/// [`StateInstruments`] handles; the registry's own maps are locked only
/// when an instrument is first created or a snapshot is taken.
#[derive(Debug)]
pub struct MetricsRegistry {
    started: Instant,
    tasks: RwLock<BTreeMap<String, Arc<TaskInstruments>>>,
    states: RwLock<BTreeMap<String, Arc<StateInstruments>>>,
    checkpoints: Arc<CheckpointInstruments>,
    reconfig: Arc<ReconfigInstruments>,
    sched: Arc<SchedInstruments>,
    faults: Arc<FaultInstruments>,
    recovery: Arc<RecoveryInstruments>,
    e2e_latency: Arc<Histogram>,
    events: EventLog,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry with the default event-log bound.
    pub fn new() -> Self {
        Self::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// Creates an empty registry retaining at most `capacity` events.
    pub fn with_event_capacity(capacity: usize) -> Self {
        MetricsRegistry {
            started: Instant::now(),
            tasks: RwLock::new(BTreeMap::new()),
            states: RwLock::new(BTreeMap::new()),
            checkpoints: Arc::new(CheckpointInstruments::default()),
            reconfig: Arc::new(ReconfigInstruments::default()),
            sched: Arc::new(SchedInstruments::default()),
            faults: Arc::new(FaultInstruments::default()),
            recovery: Arc::new(RecoveryInstruments::default()),
            e2e_latency: Arc::new(Histogram::new()),
            events: EventLog::with_capacity(capacity),
        }
    }

    /// Time elapsed since the registry was created.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Returns (creating on first use) the instruments of task `name`.
    pub fn task(&self, name: &str) -> Arc<TaskInstruments> {
        self.task_with_id(name, None)
    }

    /// [`MetricsRegistry::task`] with a graph id attached on creation.
    pub fn task_with_id(&self, name: &str, id: Option<TaskId>) -> Arc<TaskInstruments> {
        if let Some(t) = self.tasks.read().get(name) {
            return Arc::clone(t);
        }
        Arc::clone(
            self.tasks
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(TaskInstruments::new(name, id))),
        )
    }

    /// Returns (creating on first use) the instruments of state `name`.
    pub fn state(&self, name: &str) -> Arc<StateInstruments> {
        self.state_with_id(name, None)
    }

    /// [`MetricsRegistry::state`] with a graph id attached on creation.
    pub fn state_with_id(&self, name: &str, id: Option<StateId>) -> Arc<StateInstruments> {
        if let Some(s) = self.states.read().get(name) {
            return Arc::clone(s);
        }
        Arc::clone(
            self.states
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(StateInstruments::new(name, id))),
        )
    }

    /// The checkpoint/recovery phase instruments.
    pub fn checkpoints(&self) -> &Arc<CheckpointInstruments> {
        &self.checkpoints
    }

    /// The reconfiguration control-plane instruments.
    pub fn reconfig(&self) -> &Arc<ReconfigInstruments> {
        &self.reconfig
    }

    /// The cooperative-scheduler (`Pool`) instruments.
    pub fn sched(&self) -> &Arc<SchedInstruments> {
        &self.sched
    }

    /// The fault-injection / failure-detection instruments.
    pub fn faults(&self) -> &Arc<FaultInstruments> {
        &self.faults
    }

    /// The automatic-recovery (supervisor) instruments.
    pub fn recovery(&self) -> &Arc<RecoveryInstruments> {
        &self.recovery
    }

    /// The deployment-wide end-to-end latency histogram (all tasks merged).
    pub fn e2e_latency(&self) -> &Arc<Histogram> {
        &self.e2e_latency
    }

    /// Logs a structured event stamped with the registry's monotonic clock.
    pub fn record_event(&self, kind: EventKind) {
        self.events.push(self.started.elapsed(), kind);
    }

    /// Copies out the retained events, oldest first.
    pub fn events(&self) -> Vec<ObsEvent> {
        self.events.snapshot()
    }

    /// Resets every histogram (service, latency, checkpoint phases) while
    /// leaving counters, gauges and the event log untouched. Benches call
    /// this after warm-up so percentiles cover only the measured window.
    pub fn reset_observations(&self) {
        for t in self.tasks.read().values() {
            t.service.reset();
            t.latency.reset();
        }
        self.e2e_latency.reset();
        let c = &self.checkpoints;
        c.snapshot_ns.reset();
        c.persist_ns.reset();
        c.consolidate_ns.reset();
        c.sync_ns.reset();
        c.restore_ns.reset();
        self.reconfig.migrated_bytes.reset();
        self.faults.detection_ns.reset();
        self.recovery.mttr_ns.reset();
    }

    /// Freezes all instruments into a plain-data [`MetricsSnapshot`].
    ///
    /// Gauges report whatever the owner last sampled; engines refresh them
    /// immediately before calling this.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let tasks: Vec<TaskStats> = self
            .tasks
            .read()
            .values()
            .map(|t| TaskStats {
                name: t.name.clone(),
                id: t.id,
                instances: t.instances.get(),
                items_in: t.items_in.get(),
                items_out: t.items_out.get(),
                emits: t.emits.get(),
                processed: t.processed.get(),
                errors: t.errors.get(),
                gather_waits: t.gather_waits.get(),
                queue_depth: t.queue_depth.get(),
                service: t.service.summary(),
                latency: t.latency.summary(),
            })
            .collect();
        let states: Vec<StateStats> = self
            .states
            .read()
            .values()
            .map(|s| StateStats {
                name: s.name.clone(),
                id: s.id,
                instances: s.instances.get(),
                bytes: s.bytes.get(),
                dirty_bytes: s.dirty_bytes.get(),
                stripes: s.stripes.get(),
                dirty_chunks: s.dirty_chunks.get(),
                checkpoints: s.checkpoints.get(),
            })
            .collect();
        let c = &self.checkpoints;
        MetricsSnapshot {
            uptime: self.started.elapsed(),
            tasks,
            states,
            checkpoints: CheckpointStats {
                taken: c.taken.get(),
                deltas: c.deltas.get(),
                failed: c.failed.get(),
                bytes: c.bytes.get(),
                replayed: c.replayed.get(),
                encode_deferred: c.encode_deferred.get(),
                buffered_bytes: c.buffered_bytes.get(),
                snapshot: c.snapshot_ns.summary(),
                persist: c.persist_ns.summary(),
                consolidate: c.consolidate_ns.summary(),
                sync: c.sync_ns.summary(),
                restore: c.restore_ns.summary(),
            },
            reconfig: ReconfigStats {
                scale_outs: self.reconfig.scale_outs.get(),
                scale_ins: self.reconfig.scale_ins.get(),
                migrated_bytes: self.reconfig.migrated_bytes.summary(),
            },
            sched: SchedStats {
                workers: self.sched.workers.get(),
                polls: self.sched.polls.get(),
                steals: self.sched.steals.get(),
                parks: self.sched.parks.get(),
                suspends: self.sched.suspends.get(),
                resumes: self.sched.resumes.get(),
                timer_fires: self.sched.timer_fires.get(),
                mailbox_depth: self.sched.mailbox_depth.get(),
            },
            faults: FaultStats {
                worker_panics: self.faults.worker_panics.get(),
                heartbeats_missed: self.faults.heartbeats_missed.get(),
                chunks_corrupt: self.faults.chunks_corrupt.get(),
                io_retries: self.faults.io_retries.get(),
                detection: self.faults.detection_ns.summary(),
            },
            recovery: RecoveryStats {
                started: self.recovery.started.get(),
                succeeded: self.recovery.succeeded.get(),
                failed: self.recovery.failed.get(),
                chain_fallbacks: self.recovery.chain_fallbacks.get(),
                in_flight: self.recovery.in_flight.get(),
                mttr: self.recovery.mttr_ns.summary(),
            },
            e2e_latency: self.e2e_latency.summary(),
            events: self.events.snapshot(),
            events_logged: self.events.logged(),
            events_dropped: self.events.dropped(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_are_shared_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.task_with_id("put", Some(TaskId(3)));
        let b = reg.task("put");
        a.processed.add(5);
        assert_eq!(b.processed.get(), 5);
        assert_eq!(b.id, Some(TaskId(3)));
        // An id passed after creation does not overwrite the original.
        let c = reg.task_with_id("put", Some(TaskId(9)));
        assert_eq!(c.id, Some(TaskId(3)));
    }

    #[test]
    fn snapshot_reflects_recordings() {
        let reg = MetricsRegistry::new();
        let t = reg.task("get");
        t.items_in.add(10);
        t.processed.add(9);
        t.errors.inc();
        t.instances.set(2);
        t.service.record(1_000);
        let s = reg.state_with_id("kv", Some(StateId(0)));
        s.bytes.set(4096);
        s.instances.set(2);
        reg.checkpoints().taken.inc();
        reg.checkpoints().snapshot_ns.record(500);
        reg.record_event(EventKind::CheckpointBegin {
            instance: "kv#0".into(),
            seq: 1,
        });

        let snap = reg.snapshot();
        let task = snap.task("get").unwrap();
        assert_eq!(task.items_in, 10);
        assert_eq!(task.processed, 9);
        assert_eq!(task.errors, 1);
        assert_eq!(task.instances, 2);
        assert_eq!(task.service.count, 1);
        let state = snap.state("kv").unwrap();
        assert_eq!(state.bytes, 4096);
        assert_eq!(state.id, Some(StateId(0)));
        assert_eq!(snap.checkpoints.taken, 1);
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events_logged, 1);
    }

    #[test]
    fn reset_observations_keeps_counters() {
        let reg = MetricsRegistry::new();
        let t = reg.task("f");
        t.processed.add(7);
        t.latency.record(123);
        reg.e2e_latency().record(123);
        reg.reset_observations();
        assert_eq!(t.processed.get(), 7);
        assert_eq!(t.latency.count(), 0);
        assert_eq!(reg.e2e_latency().count(), 0);
    }

    #[test]
    fn concurrent_record_and_snapshot_race() {
        let reg = Arc::new(MetricsRegistry::new());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        // Four writers hammer instruments (two of them creating new ones
        // by name) while two readers snapshot concurrently.
        for w in 0..4u64 {
            let reg = Arc::clone(&reg);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let t = reg.task(if w < 2 { "hot" } else { "cold" });
                    t.items_in.inc();
                    t.processed.inc();
                    t.service.record(i % 10_000);
                    if i.is_multiple_of(64) {
                        reg.state("s").bytes.set(i);
                        reg.record_event(EventKind::ScaleOut {
                            task: "hot".into(),
                            instances: 2,
                            node: w as u32,
                        });
                    }
                    i += 1;
                }
                i
            }));
        }
        let mut readers = Vec::new();
        for _ in 0..2 {
            let reg = Arc::clone(&reg);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut snaps = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let snap = reg.snapshot();
                    // Internal consistency: processed never exceeds in.
                    for t in &snap.tasks {
                        assert!(t.processed <= t.items_in);
                    }
                    snaps += 1;
                }
                snaps
            }));
        }
        std::thread::sleep(Duration::from_millis(100));
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let written: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let snaps: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(snaps > 0);
        // After the dust settles the final snapshot is exact.
        let snap = reg.snapshot();
        let total: u64 = snap.tasks.iter().map(|t| t.processed).sum();
        assert_eq!(total, written);
    }
}

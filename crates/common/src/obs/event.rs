//! The bounded structured event log.
//!
//! Control-plane occurrences — scale-outs, straggler detection, checkpoint
//! phases, failure/recovery phases — are recorded as typed [`ObsEvent`]s
//! with timestamps monotonic per registry (offsets from registry creation).
//! The log is bounded: once `capacity` events are held, the oldest is
//! evicted and counted in [`EventLog::dropped`], so a long-running
//! deployment never grows without bound.

use std::collections::VecDeque;
use std::time::Duration;

use parking_lot::Mutex;

use crate::metrics::Counter;

/// Default bound on retained events per registry.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// What happened. Task, state and SE-instance labels are plain strings so
/// the same schema serves the SDG runtime and the baseline engines.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// The scaling monitor flagged `task` as the pipeline bottleneck
    /// (saturated queues with no downstream backpressure) — either its TEs
    /// are computationally expensive or an instance sits on a straggler
    /// node (§3.3).
    BottleneckDetected {
        /// Saturated task.
        task: String,
        /// Mean queue fill of its instances in `[0, 1]`.
        fill: f64,
    },
    /// A new TE instance was added to `task`.
    ScaleOut {
        /// Scaled task.
        task: String,
        /// Instance count after scaling.
        instances: u32,
        /// The node the new instance was placed on.
        node: u32,
    },
    /// A TE instance was removed from `task` (scale-in), merging its SE
    /// shard or partial aggregate into the survivors.
    ScaleIn {
        /// Scaled task.
        task: String,
        /// Instance count after scaling.
        instances: u32,
        /// The node the removed instance ran on.
        node: u32,
    },
    /// A partitioned scale-out drained in-flight items behind a barrier
    /// before repartitioning.
    RepartitionDrain {
        /// Task whose producers were paused.
        task: String,
        /// How long the drain barrier was held.
        waited: Duration,
    },
    /// State moved between SE instances during a reconfiguration: a shard
    /// re-split on scale-out, or a shard/partial merge on scale-in.
    StateMigrated {
        /// State label, e.g. `kv`.
        state: String,
        /// Bytes that changed owner.
        bytes: u64,
        /// How long the migration (under the drain barrier) took.
        took: Duration,
    },
    /// Checkpoint of an SE instance started (step 1 of §5's protocol).
    CheckpointBegin {
        /// SE instance label, e.g. `kv#0`.
        instance: String,
        /// Checkpoint sequence number.
        seq: u64,
    },
    /// A checkpoint's chunks were persisted to the backup stores (steps
    /// 2–4).
    CheckpointBackup {
        /// SE instance label.
        instance: String,
        /// Checkpoint sequence number.
        seq: u64,
        /// Serialised state bytes written.
        bytes: u64,
    },
    /// The dirty overlay was consolidated into the base structure (step 5).
    CheckpointConsolidate {
        /// SE instance label.
        instance: String,
        /// Checkpoint sequence number.
        seq: u64,
    },
    /// A node failure was injected for an SE instance.
    FailureInjected {
        /// SE instance label.
        instance: String,
    },
    /// State was reconstituted from the `m` backup stores (steps R1–R2).
    RecoveryRestored {
        /// SE instance label.
        instance: String,
        /// Fetch + rebuild time.
        took: Duration,
    },
    /// Upstream output buffers were replayed past the restored watermark
    /// (step R3).
    RecoveryReplayed {
        /// SE instance label.
        instance: String,
        /// Items re-sent from upstream buffers.
        items: u64,
    },
    /// End-to-end recovery finished and processing resumed.
    RecoveryComplete {
        /// SE instance label.
        instance: String,
        /// Pause-to-resume time.
        took: Duration,
    },
    /// A worker/actor run loop panicked and was caught at the scheduler
    /// boundary.
    WorkerPanicked {
        /// TE instance label, e.g. `counter#1`.
        instance: String,
        /// Best-effort panic payload rendering.
        message: String,
    },
    /// The supervisor saw an instance's heartbeat epoch stall past the
    /// miss threshold.
    HeartbeatMissed {
        /// TE instance label.
        instance: String,
        /// Consecutive scan intervals without a beat.
        missed: u32,
    },
    /// The supervisor began an automatic fail-and-recover attempt.
    RecoveryStarted {
        /// SE instance label being recovered.
        instance: String,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// An automatic recovery attempt restored state and replayed buffers.
    RecoverySucceeded {
        /// SE instance label.
        instance: String,
        /// Attempts consumed (1 = first try).
        attempt: u32,
    },
    /// An automatic recovery attempt failed; the supervisor will back off
    /// and retry, or escalate to `Degraded` when attempts are exhausted.
    RecoveryFailed {
        /// SE instance label.
        instance: String,
        /// 1-based attempt number that failed.
        attempt: u32,
        /// Rendered error.
        error: String,
    },
    /// A persisted chunk failed its checksum or vanished; restore fell
    /// back toward an older intact generation.
    ChunkCorrupt {
        /// SE instance label owning the chunk.
        instance: String,
        /// Rendered data-loss error.
        error: String,
    },
}

impl EventKind {
    /// Stable lowercase identifier used by the renderers.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::BottleneckDetected { .. } => "bottleneck_detected",
            EventKind::ScaleOut { .. } => "scale_out",
            EventKind::ScaleIn { .. } => "scale_in",
            EventKind::RepartitionDrain { .. } => "repartition_drain",
            EventKind::StateMigrated { .. } => "state_migrated",
            EventKind::CheckpointBegin { .. } => "checkpoint_begin",
            EventKind::CheckpointBackup { .. } => "checkpoint_backup",
            EventKind::CheckpointConsolidate { .. } => "checkpoint_consolidate",
            EventKind::FailureInjected { .. } => "failure_injected",
            EventKind::RecoveryRestored { .. } => "recovery_restored",
            EventKind::RecoveryReplayed { .. } => "recovery_replayed",
            EventKind::RecoveryComplete { .. } => "recovery_complete",
            EventKind::WorkerPanicked { .. } => "worker_panicked",
            EventKind::HeartbeatMissed { .. } => "heartbeat_missed",
            EventKind::RecoveryStarted { .. } => "recovery_started",
            EventKind::RecoverySucceeded { .. } => "recovery_succeeded",
            EventKind::RecoveryFailed { .. } => "recovery_failed",
            EventKind::ChunkCorrupt { .. } => "chunk_corrupt",
        }
    }
}

/// One logged event.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsEvent {
    /// Monotonic sequence number (0-based, never reused; survives
    /// eviction, so gaps reveal dropped events).
    pub seq: u64,
    /// Offset from registry creation — monotonic within a registry.
    pub at: Duration,
    /// What happened.
    pub kind: EventKind,
}

/// Bounded FIFO of [`ObsEvent`]s.
#[derive(Debug)]
pub struct EventLog {
    inner: Mutex<VecDeque<ObsEvent>>,
    capacity: usize,
    logged: Counter,
    dropped: Counter,
}

impl Default for EventLog {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

impl EventLog {
    /// Creates a log retaining at most `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        EventLog {
            inner: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            logged: Counter::new(),
            dropped: Counter::new(),
        }
    }

    /// Appends an event at offset `at`, evicting the oldest when full.
    pub fn push(&self, at: Duration, kind: EventKind) {
        let mut q = self.inner.lock();
        let seq = self.logged.get();
        self.logged.inc();
        if q.len() >= self.capacity {
            q.pop_front();
            self.dropped.inc();
        }
        q.push_back(ObsEvent { seq, at, kind });
    }

    /// Copies out the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<ObsEvent> {
        self.inner.lock().iter().cloned().collect()
    }

    /// Total events ever logged (including evicted ones).
    pub fn logged(&self) -> u64 {
        self.logged.get()
    }

    /// Events evicted by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_log_evicts_oldest() {
        let log = EventLog::with_capacity(3);
        for i in 0..5u64 {
            log.push(
                Duration::from_millis(i),
                EventKind::FailureInjected {
                    instance: format!("kv#{i}"),
                },
            );
        }
        let events = log.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(log.logged(), 5);
        assert_eq!(log.dropped(), 2);
        // The two oldest were evicted; sequence numbers are preserved.
        assert_eq!(events[0].seq, 2);
        assert_eq!(events[2].seq, 4);
        // Timestamps are monotonic.
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let log = EventLog::with_capacity(0);
        log.push(
            Duration::ZERO,
            EventKind::ScaleOut {
                task: "t".into(),
                instances: 2,
                node: 1,
            },
        );
        assert_eq!(log.snapshot().len(), 1);
        assert_eq!(log.capacity(), 1);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(
            EventKind::CheckpointBegin {
                instance: "s#0".into(),
                seq: 1
            }
            .name(),
            "checkpoint_begin"
        );
        assert_eq!(
            EventKind::RecoveryComplete {
                instance: "s#0".into(),
                took: Duration::ZERO
            }
            .name(),
            "recovery_complete"
        );
        assert_eq!(
            EventKind::ScaleIn {
                task: "t".into(),
                instances: 1,
                node: 3
            }
            .name(),
            "scale_in"
        );
        assert_eq!(
            EventKind::StateMigrated {
                state: "kv".into(),
                bytes: 512,
                took: Duration::ZERO
            }
            .name(),
            "state_migrated"
        );
        assert_eq!(
            EventKind::WorkerPanicked {
                instance: "t#0".into(),
                message: "boom".into()
            }
            .name(),
            "worker_panicked"
        );
        assert_eq!(
            EventKind::HeartbeatMissed {
                instance: "t#0".into(),
                missed: 3
            }
            .name(),
            "heartbeat_missed"
        );
        assert_eq!(
            EventKind::RecoveryStarted {
                instance: "s#0".into(),
                attempt: 1
            }
            .name(),
            "recovery_started"
        );
        assert_eq!(
            EventKind::RecoverySucceeded {
                instance: "s#0".into(),
                attempt: 2
            }
            .name(),
            "recovery_succeeded"
        );
        assert_eq!(
            EventKind::RecoveryFailed {
                instance: "s#0".into(),
                attempt: 1,
                error: "chunk gone".into()
            }
            .name(),
            "recovery_failed"
        );
        assert_eq!(
            EventKind::ChunkCorrupt {
                instance: "s#0".into(),
                error: "checksum mismatch".into()
            }
            .name(),
            "chunk_corrupt"
        );
    }
}

//! Plain-data snapshots of a registry, with text and JSON renderers.

use std::fmt::Write as _;
use std::time::Duration;

use crate::ids::{StateId, TaskId};
use crate::metrics::Summary;

use super::event::{EventKind, ObsEvent};

/// Frozen per-task statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskStats {
    /// Task label.
    pub name: String,
    /// Graph task id, when known.
    pub id: Option<TaskId>,
    /// Running instances at snapshot time.
    pub instances: u64,
    /// Items received.
    pub items_in: u64,
    /// Items forwarded downstream.
    pub items_out: u64,
    /// Values emitted externally.
    pub emits: u64,
    /// Items fully processed.
    pub processed: u64,
    /// Execution errors.
    pub errors: u64,
    /// Gather-barrier waits.
    pub gather_waits: u64,
    /// Queued items at snapshot time.
    pub queue_depth: u64,
    /// Service-time candlestick (ns).
    pub service: Summary,
    /// End-to-end latency candlestick (ns).
    pub latency: Summary,
}

/// Frozen per-state statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct StateStats {
    /// State label.
    pub name: String,
    /// Graph state id, when known.
    pub id: Option<StateId>,
    /// SE instances at snapshot time.
    pub instances: u64,
    /// Approximate bytes held.
    pub bytes: u64,
    /// Dirty-overlay bytes (non-zero only mid-checkpoint).
    pub dirty_bytes: u64,
    /// Lock stripes per instance (1 for unstriped cells).
    pub stripes: u64,
    /// Chunks dirtied since the last checkpoint, summed over instances.
    pub dirty_chunks: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
}

/// Frozen checkpoint/recovery statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointStats {
    /// Checkpoints completed.
    pub taken: u64,
    /// Incremental delta generations among `taken`.
    pub deltas: u64,
    /// Checkpoints failed.
    pub failed: u64,
    /// Serialised bytes written.
    pub bytes: u64,
    /// Items replayed during recoveries.
    pub replayed: u64,
    /// Output-buffer wire encodes deferred to checkpoint-persist time.
    pub encode_deferred: u64,
    /// Approximate bytes parked across upstream output buffers.
    pub buffered_bytes: u64,
    /// Snapshot-initiation times (ns).
    pub snapshot: Summary,
    /// Serialise + backup times (ns).
    pub persist: Summary,
    /// Consolidation times (ns).
    pub consolidate: Summary,
    /// Stop-the-world totals for synchronous mode (ns).
    pub sync: Summary,
    /// Restore times (ns).
    pub restore: Summary,
}

/// Frozen reconfiguration control-plane statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconfigStats {
    /// Scale-out reconfigurations completed.
    pub scale_outs: u64,
    /// Scale-in reconfigurations completed.
    pub scale_ins: u64,
    /// Bytes migrated between SE instances, one sample per migration
    /// episode (candlestick).
    pub migrated_bytes: Summary,
}

/// Frozen cooperative-scheduler statistics (all zero under the
/// thread-per-replica scheduler).
#[derive(Debug, Clone, PartialEq)]
pub struct SchedStats {
    /// Pool workers running (0 = thread-per-replica scheduler).
    pub workers: u64,
    /// Actor run-slices executed by pool workers.
    pub polls: u64,
    /// Actors stolen from another worker's deque.
    pub steals: u64,
    /// Times a pool worker parked with nothing runnable.
    pub parks: u64,
    /// Producer actors suspended on a full destination mailbox.
    pub suspends: u64,
    /// Suspended actors resumed by a credit hand-back.
    pub resumes: u64,
    /// Linger deadlines fired from the shared timer heap.
    pub timer_fires: u64,
    /// Queued messages across all actor mailboxes at snapshot time.
    pub mailbox_depth: u64,
}

/// Frozen fault-injection / failure-detection statistics (all zero on a
/// healthy, fault-free deployment).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultStats {
    /// Worker/actor panics caught at the scheduler boundary.
    pub worker_panics: u64,
    /// Heartbeat epochs seen stalled past the miss threshold.
    pub heartbeats_missed: u64,
    /// Chunks found corrupt (checksum mismatch / truncation) on read.
    pub chunks_corrupt: u64,
    /// Transient store I/O errors absorbed by retry.
    pub io_retries: u64,
    /// Failure-to-detection latency candlestick (ns).
    pub detection: Summary,
}

/// Frozen automatic-recovery (supervisor) statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryStats {
    /// Automatic fail-and-recover attempts started.
    pub started: u64,
    /// Attempts that completed successfully.
    pub succeeded: u64,
    /// Attempts that failed.
    pub failed: u64,
    /// Restore-chain fallbacks to an older intact generation.
    pub chain_fallbacks: u64,
    /// Recoveries in flight at snapshot time.
    pub in_flight: u64,
    /// Detection-to-resume recovery time candlestick (ns).
    pub mttr: Summary,
}

/// One coherent freeze of a deployment's instruments and events.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Registry age when the snapshot was taken.
    pub uptime: Duration,
    /// Per-task statistics, sorted by name.
    pub tasks: Vec<TaskStats>,
    /// Per-state statistics, sorted by name.
    pub states: Vec<StateStats>,
    /// Checkpoint/recovery statistics.
    pub checkpoints: CheckpointStats,
    /// Reconfiguration control-plane statistics.
    pub reconfig: ReconfigStats,
    /// Cooperative-scheduler statistics.
    pub sched: SchedStats,
    /// Fault-injection / failure-detection statistics.
    pub faults: FaultStats,
    /// Automatic-recovery (supervisor) statistics.
    pub recovery: RecoveryStats,
    /// Deployment-wide end-to-end latency candlestick (ns).
    pub e2e_latency: Summary,
    /// Retained events, oldest first.
    pub events: Vec<ObsEvent>,
    /// Total events ever logged.
    pub events_logged: u64,
    /// Events evicted by the log bound.
    pub events_dropped: u64,
}

/// One-line aggregate across a whole deployment — the typed replacement
/// for the old scattered `Deployment` getters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeploymentStats {
    /// Registry age.
    pub uptime: Duration,
    /// Items processed across all tasks.
    pub processed: u64,
    /// Execution errors across all tasks.
    pub errors: u64,
    /// Running TE instances across all tasks.
    pub task_instances: u64,
    /// SE instances across all states.
    pub state_instances: u64,
    /// Approximate bytes across all states.
    pub state_bytes: u64,
    /// Scale-out events logged.
    pub scale_outs: u64,
    /// Scale-in events logged.
    pub scale_ins: u64,
    /// Checkpoints completed.
    pub checkpoints_taken: u64,
}

impl MetricsSnapshot {
    /// Looks up a task's statistics by label.
    pub fn task(&self, name: &str) -> Option<&TaskStats> {
        self.tasks.iter().find(|t| t.name == name)
    }

    /// Looks up a task's statistics by graph id.
    pub fn task_by_id(&self, id: TaskId) -> Option<&TaskStats> {
        self.tasks.iter().find(|t| t.id == Some(id))
    }

    /// Looks up a state's statistics by label.
    pub fn state(&self, name: &str) -> Option<&StateStats> {
        self.states.iter().find(|s| s.name == name)
    }

    /// Looks up a state's statistics by graph id.
    pub fn state_by_id(&self, id: StateId) -> Option<&StateStats> {
        self.states.iter().find(|s| s.id == Some(id))
    }

    /// Items processed across all tasks.
    pub fn processed_total(&self) -> u64 {
        self.tasks.iter().map(|t| t.processed).sum()
    }

    /// Execution errors across all tasks.
    pub fn errors_total(&self) -> u64 {
        self.tasks.iter().map(|t| t.errors).sum()
    }

    /// Approximate bytes across all states.
    pub fn state_bytes_total(&self) -> u64 {
        self.states.iter().map(|s| s.bytes).sum()
    }

    /// Scale-out events among the retained + evicted log entries is not
    /// recoverable; this counts retained scale-outs.
    pub fn scale_outs(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::ScaleOut { .. }))
            .count() as u64
    }

    /// Retained scale-in events (see [`MetricsSnapshot::scale_outs`]).
    pub fn scale_ins(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::ScaleIn { .. }))
            .count() as u64
    }

    /// Collapses the snapshot into the one-line [`DeploymentStats`].
    pub fn deployment_stats(&self) -> DeploymentStats {
        DeploymentStats {
            uptime: self.uptime,
            processed: self.processed_total(),
            errors: self.errors_total(),
            task_instances: self.tasks.iter().map(|t| t.instances).sum(),
            state_instances: self.states.iter().map(|s| s.instances).sum(),
            state_bytes: self.state_bytes_total(),
            scale_outs: self.scale_outs(),
            scale_ins: self.scale_ins(),
            checkpoints_taken: self.checkpoints.taken,
        }
    }

    /// Renders a human-readable multi-line report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "deployment metrics (uptime {:.1}s, {} processed, {} errors)",
            self.uptime.as_secs_f64(),
            self.processed_total(),
            self.errors_total()
        );
        let _ = writeln!(
            out,
            "  {:<16} {:>4} {:>10} {:>10} {:>8} {:>6} {:>6}  {:>20} {:>20}",
            "task",
            "inst",
            "in",
            "processed",
            "out",
            "err",
            "queue",
            "service p50/p95",
            "latency p50/p95"
        );
        for t in &self.tasks {
            let _ = writeln!(
                out,
                "  {:<16} {:>4} {:>10} {:>10} {:>8} {:>6} {:>6}  {:>20} {:>20}",
                t.name,
                t.instances,
                t.items_in,
                t.processed,
                t.items_out,
                t.errors,
                t.queue_depth,
                fmt_p50_p95(&t.service),
                fmt_p50_p95(&t.latency),
            );
        }
        if !self.states.is_empty() {
            let _ = writeln!(
                out,
                "  {:<16} {:>4} {:>12} {:>12} {:>7} {:>7} {:>6}",
                "state", "inst", "bytes", "dirty", "stripes", "dchunks", "ckpts"
            );
            for s in &self.states {
                let _ = writeln!(
                    out,
                    "  {:<16} {:>4} {:>12} {:>12} {:>7} {:>7} {:>6}",
                    s.name,
                    s.instances,
                    s.bytes,
                    s.dirty_bytes,
                    s.stripes,
                    s.dirty_chunks,
                    s.checkpoints
                );
            }
        }
        let c = &self.checkpoints;
        let _ = writeln!(
            out,
            "  checkpoints: {} taken ({} deltas), {} failed, {} bytes, {} replayed, \
             {} deferred encodes, {} buffered bytes",
            c.taken, c.deltas, c.failed, c.bytes, c.replayed, c.encode_deferred, c.buffered_bytes
        );
        let r = &self.reconfig;
        let _ = writeln!(
            out,
            "  reconfig: {} scale-outs, {} scale-ins, migrated p50 {} bytes ({} episodes)",
            r.scale_outs, r.scale_ins, r.migrated_bytes.p50, r.migrated_bytes.count
        );
        let sc = &self.sched;
        if sc.workers > 0 {
            let _ = writeln!(
                out,
                "  sched: {} workers, {} polls, {} steals, {} parks, {} suspends, \
                 {} resumes, {} timer fires, {} queued",
                sc.workers,
                sc.polls,
                sc.steals,
                sc.parks,
                sc.suspends,
                sc.resumes,
                sc.timer_fires,
                sc.mailbox_depth
            );
        }
        let f = &self.faults;
        let rv = &self.recovery;
        if f.worker_panics + f.heartbeats_missed + f.chunks_corrupt + f.io_retries + rv.started > 0
        {
            let _ = writeln!(
                out,
                "  faults: {} panics, {} heartbeats missed, {} corrupt chunks, {} io retries, \
                 detection p50 {:.3}ms",
                f.worker_panics,
                f.heartbeats_missed,
                f.chunks_corrupt,
                f.io_retries,
                ns_to_ms(f.detection.p50),
            );
            let _ = writeln!(
                out,
                "  recovery: {} started, {} succeeded, {} failed, {} chain fallbacks, \
                 {} in flight, mttr p50 {:.3}ms",
                rv.started,
                rv.succeeded,
                rv.failed,
                rv.chain_fallbacks,
                rv.in_flight,
                ns_to_ms(rv.mttr.p50),
            );
        }
        if c.taken > 0 {
            let _ = writeln!(
                out,
                "    phases p50 (ms): snapshot {:.3}, persist {:.3}, consolidate {:.3}, sync {:.3}, restore {:.3}",
                ns_to_ms(c.snapshot.p50),
                ns_to_ms(c.persist.p50),
                ns_to_ms(c.consolidate.p50),
                ns_to_ms(c.sync.p50),
                ns_to_ms(c.restore.p50),
            );
        }
        if self.e2e_latency.count > 0 {
            let l = &self.e2e_latency;
            let _ = writeln!(
                out,
                "  e2e latency (ms): p5 {:.3}  p50 {:.3}  p95 {:.3}  p99 {:.3}  max {:.3}  ({} samples)",
                ns_to_ms(l.p5),
                ns_to_ms(l.p50),
                ns_to_ms(l.p95),
                ns_to_ms(l.p99),
                ns_to_ms(l.max),
                l.count
            );
        }
        let _ = writeln!(
            out,
            "  events: {} logged, {} dropped",
            self.events_logged, self.events_dropped
        );
        for e in &self.events {
            let _ = writeln!(
                out,
                "    [{:>10.3}s] #{} {}",
                e.at.as_secs_f64(),
                e.seq,
                render_event_detail(&e.kind)
            );
        }
        out
    }

    /// Renders the snapshot as a single-line JSON object with a stable key
    /// order (parseable by [`super::json::parse`]).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        let _ = write!(out, "\"uptime_ms\":{:.3},", ms(self.uptime));
        out.push_str("\"tasks\":[");
        for (i, t) in self.tasks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"task_id\":{},\"instances\":{},\"items_in\":{},\"items_out\":{},\
                 \"emits\":{},\"processed\":{},\"errors\":{},\"gather_waits\":{},\"queue_depth\":{},\
                 \"service_ns\":{},\"latency_ns\":{}}}",
                super::json::escape(&t.name),
                t.id.map(|id| id.raw().to_string())
                    .unwrap_or_else(|| "null".into()),
                t.instances,
                t.items_in,
                t.items_out,
                t.emits,
                t.processed,
                t.errors,
                t.gather_waits,
                t.queue_depth,
                summary_json(&t.service),
                summary_json(&t.latency),
            );
        }
        out.push_str("],\"states\":[");
        for (i, s) in self.states.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"state_id\":{},\"instances\":{},\"bytes\":{},\"dirty_bytes\":{},\
                 \"stripes\":{},\"dirty_chunks\":{},\"checkpoints\":{}}}",
                super::json::escape(&s.name),
                s.id.map(|id| id.raw().to_string())
                    .unwrap_or_else(|| "null".into()),
                s.instances,
                s.bytes,
                s.dirty_bytes,
                s.stripes,
                s.dirty_chunks,
                s.checkpoints,
            );
        }
        let c = &self.checkpoints;
        let _ = write!(
            out,
            "],\"checkpoints\":{{\"taken\":{},\"deltas\":{},\"failed\":{},\"bytes\":{},\"replayed\":{},\
             \"encode_deferred\":{},\"buffered_bytes\":{},\
             \"snapshot_ns\":{},\"persist_ns\":{},\"consolidate_ns\":{},\"sync_ns\":{},\
             \"restore_ns\":{}}},",
            c.taken,
            c.deltas,
            c.failed,
            c.bytes,
            c.replayed,
            c.encode_deferred,
            c.buffered_bytes,
            summary_json(&c.snapshot),
            summary_json(&c.persist),
            summary_json(&c.consolidate),
            summary_json(&c.sync),
            summary_json(&c.restore),
        );
        let r = &self.reconfig;
        let _ = write!(
            out,
            "\"reconfig\":{{\"scale_outs\":{},\"scale_ins\":{},\"migrated_bytes\":{}}},",
            r.scale_outs,
            r.scale_ins,
            summary_json(&r.migrated_bytes),
        );
        let sc = &self.sched;
        let _ = write!(
            out,
            "\"sched\":{{\"workers\":{},\"polls\":{},\"steals\":{},\"parks\":{},\
             \"suspends\":{},\"resumes\":{},\"timer_fires\":{},\"mailbox_depth\":{}}},",
            sc.workers,
            sc.polls,
            sc.steals,
            sc.parks,
            sc.suspends,
            sc.resumes,
            sc.timer_fires,
            sc.mailbox_depth,
        );
        let f = &self.faults;
        let _ = write!(
            out,
            "\"faults\":{{\"worker_panics\":{},\"heartbeats_missed\":{},\"chunks_corrupt\":{},\
             \"io_retries\":{},\"detection_ns\":{}}},",
            f.worker_panics,
            f.heartbeats_missed,
            f.chunks_corrupt,
            f.io_retries,
            summary_json(&f.detection),
        );
        let rv = &self.recovery;
        let _ = write!(
            out,
            "\"recovery\":{{\"started\":{},\"succeeded\":{},\"failed\":{},\"chain_fallbacks\":{},\
             \"in_flight\":{},\"mttr_ns\":{}}},",
            rv.started,
            rv.succeeded,
            rv.failed,
            rv.chain_fallbacks,
            rv.in_flight,
            summary_json(&rv.mttr),
        );
        let _ = write!(
            out,
            "\"e2e_latency_ns\":{},",
            summary_json(&self.e2e_latency)
        );
        let _ = write!(
            out,
            "\"events_logged\":{},\"events_dropped\":{},\"events\":[",
            self.events_logged, self.events_dropped
        );
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&event_json(e));
        }
        out.push_str("]}");
        out
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn fmt_p50_p95(s: &Summary) -> String {
    if s.count == 0 {
        "-".to_string()
    } else {
        format!("{:.3}/{:.3}ms", ns_to_ms(s.p50), ns_to_ms(s.p95))
    }
}

fn summary_json(s: &Summary) -> String {
    format!(
        "{{\"count\":{},\"mean\":{:.3},\"min\":{},\"p5\":{},\"p25\":{},\"p50\":{},\"p75\":{},\
         \"p95\":{},\"p99\":{},\"max\":{}}}",
        s.count, s.mean, s.min, s.p5, s.p25, s.p50, s.p75, s.p95, s.p99, s.max
    )
}

fn render_event_detail(kind: &EventKind) -> String {
    match kind {
        EventKind::BottleneckDetected { task, fill } => {
            format!("bottleneck_detected task={task} fill={fill:.3}")
        }
        EventKind::ScaleOut {
            task,
            instances,
            node,
        } => format!("scale_out task={task} instances={instances} node={node}"),
        EventKind::ScaleIn {
            task,
            instances,
            node,
        } => format!("scale_in task={task} instances={instances} node={node}"),
        EventKind::RepartitionDrain { task, waited } => {
            format!("repartition_drain task={task} waited={:.3}ms", ms(*waited))
        }
        EventKind::StateMigrated { state, bytes, took } => {
            format!(
                "state_migrated state={state} bytes={bytes} took={:.3}ms",
                ms(*took)
            )
        }
        EventKind::CheckpointBegin { instance, seq } => {
            format!("checkpoint_begin instance={instance} seq={seq}")
        }
        EventKind::CheckpointBackup {
            instance,
            seq,
            bytes,
        } => format!("checkpoint_backup instance={instance} seq={seq} bytes={bytes}"),
        EventKind::CheckpointConsolidate { instance, seq } => {
            format!("checkpoint_consolidate instance={instance} seq={seq}")
        }
        EventKind::FailureInjected { instance } => {
            format!("failure_injected instance={instance}")
        }
        EventKind::RecoveryRestored { instance, took } => {
            format!(
                "recovery_restored instance={instance} took={:.3}ms",
                ms(*took)
            )
        }
        EventKind::RecoveryReplayed { instance, items } => {
            format!("recovery_replayed instance={instance} items={items}")
        }
        EventKind::RecoveryComplete { instance, took } => {
            format!(
                "recovery_complete instance={instance} took={:.3}ms",
                ms(*took)
            )
        }
        EventKind::WorkerPanicked { instance, message } => {
            format!("worker_panicked instance={instance} message={message}")
        }
        EventKind::HeartbeatMissed { instance, missed } => {
            format!("heartbeat_missed instance={instance} missed={missed}")
        }
        EventKind::RecoveryStarted { instance, attempt } => {
            format!("recovery_started instance={instance} attempt={attempt}")
        }
        EventKind::RecoverySucceeded { instance, attempt } => {
            format!("recovery_succeeded instance={instance} attempt={attempt}")
        }
        EventKind::RecoveryFailed {
            instance,
            attempt,
            error,
        } => format!("recovery_failed instance={instance} attempt={attempt} error={error}"),
        EventKind::ChunkCorrupt { instance, error } => {
            format!("chunk_corrupt instance={instance} error={error}")
        }
    }
}

fn event_json(e: &ObsEvent) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"seq\":{},\"at_ms\":{:.3},\"kind\":\"{}\"",
        e.seq,
        ms(e.at),
        e.kind.name()
    );
    match &e.kind {
        EventKind::BottleneckDetected { task, fill } => {
            let _ = write!(
                out,
                ",\"task\":{},\"fill\":{:.3}",
                super::json::escape(task),
                fill
            );
        }
        EventKind::ScaleOut {
            task,
            instances,
            node,
        }
        | EventKind::ScaleIn {
            task,
            instances,
            node,
        } => {
            let _ = write!(
                out,
                ",\"task\":{},\"instances\":{},\"node\":{}",
                super::json::escape(task),
                instances,
                node
            );
        }
        EventKind::StateMigrated { state, bytes, took } => {
            let _ = write!(
                out,
                ",\"state\":{},\"bytes\":{},\"took_ms\":{:.3}",
                super::json::escape(state),
                bytes,
                ms(*took)
            );
        }
        EventKind::RepartitionDrain { task, waited } => {
            let _ = write!(
                out,
                ",\"task\":{},\"waited_ms\":{:.3}",
                super::json::escape(task),
                ms(*waited)
            );
        }
        EventKind::CheckpointBegin { instance, seq }
        | EventKind::CheckpointConsolidate { instance, seq } => {
            let _ = write!(
                out,
                ",\"instance\":{},\"ckpt_seq\":{}",
                super::json::escape(instance),
                seq
            );
        }
        EventKind::CheckpointBackup {
            instance,
            seq,
            bytes,
        } => {
            let _ = write!(
                out,
                ",\"instance\":{},\"ckpt_seq\":{},\"bytes\":{}",
                super::json::escape(instance),
                seq,
                bytes
            );
        }
        EventKind::FailureInjected { instance } => {
            let _ = write!(out, ",\"instance\":{}", super::json::escape(instance));
        }
        EventKind::RecoveryRestored { instance, took }
        | EventKind::RecoveryComplete { instance, took } => {
            let _ = write!(
                out,
                ",\"instance\":{},\"took_ms\":{:.3}",
                super::json::escape(instance),
                ms(*took)
            );
        }
        EventKind::RecoveryReplayed { instance, items } => {
            let _ = write!(
                out,
                ",\"instance\":{},\"items\":{}",
                super::json::escape(instance),
                items
            );
        }
        EventKind::WorkerPanicked { instance, message } => {
            let _ = write!(
                out,
                ",\"instance\":{},\"message\":{}",
                super::json::escape(instance),
                super::json::escape(message)
            );
        }
        EventKind::HeartbeatMissed { instance, missed } => {
            let _ = write!(
                out,
                ",\"instance\":{},\"missed\":{}",
                super::json::escape(instance),
                missed
            );
        }
        EventKind::RecoveryStarted { instance, attempt }
        | EventKind::RecoverySucceeded { instance, attempt } => {
            let _ = write!(
                out,
                ",\"instance\":{},\"attempt\":{}",
                super::json::escape(instance),
                attempt
            );
        }
        EventKind::RecoveryFailed {
            instance,
            attempt,
            error,
        } => {
            let _ = write!(
                out,
                ",\"instance\":{},\"attempt\":{},\"error\":{}",
                super::json::escape(instance),
                attempt,
                super::json::escape(error)
            );
        }
        EventKind::ChunkCorrupt { instance, error } => {
            let _ = write!(
                out,
                ",\"instance\":{},\"error\":{}",
                super::json::escape(instance),
                super::json::escape(error)
            );
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(count: u64) -> Summary {
        Summary {
            count,
            mean: 10.0,
            min: if count > 0 { 5 } else { 0 },
            p5: 5,
            p25: 7,
            p50: 10,
            p75: 12,
            p95: 15,
            p99: 16,
            max: 17,
        }
    }

    fn sample_snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            uptime: Duration::from_millis(1500),
            tasks: vec![TaskStats {
                name: "put".into(),
                id: Some(TaskId(0)),
                instances: 2,
                items_in: 100,
                items_out: 90,
                emits: 10,
                processed: 100,
                errors: 0,
                gather_waits: 0,
                queue_depth: 3,
                service: summary(100),
                latency: summary(10),
            }],
            states: vec![StateStats {
                name: "kv".into(),
                id: Some(StateId(0)),
                instances: 2,
                bytes: 4096,
                dirty_bytes: 0,
                stripes: 16,
                dirty_chunks: 0,
                checkpoints: 1,
            }],
            checkpoints: CheckpointStats {
                taken: 1,
                deltas: 0,
                failed: 0,
                bytes: 2048,
                replayed: 0,
                encode_deferred: 4,
                buffered_bytes: 512,
                snapshot: summary(1),
                persist: summary(1),
                consolidate: summary(1),
                sync: summary(0),
                restore: summary(0),
            },
            reconfig: ReconfigStats {
                scale_outs: 1,
                scale_ins: 1,
                migrated_bytes: summary(2),
            },
            sched: SchedStats {
                workers: 4,
                polls: 200,
                steals: 12,
                parks: 8,
                suspends: 3,
                resumes: 3,
                timer_fires: 5,
                mailbox_depth: 6,
            },
            faults: FaultStats {
                worker_panics: 1,
                heartbeats_missed: 2,
                chunks_corrupt: 1,
                io_retries: 3,
                detection: summary(1),
            },
            recovery: RecoveryStats {
                started: 2,
                succeeded: 1,
                failed: 1,
                chain_fallbacks: 1,
                in_flight: 0,
                mttr: summary(1),
            },
            e2e_latency: summary(10),
            events: vec![
                ObsEvent {
                    seq: 0,
                    at: Duration::from_millis(750),
                    kind: EventKind::CheckpointBackup {
                        instance: "kv#0".into(),
                        seq: 1,
                        bytes: 2048,
                    },
                },
                ObsEvent {
                    seq: 1,
                    at: Duration::from_millis(900),
                    kind: EventKind::StateMigrated {
                        state: "kv".into(),
                        bytes: 512,
                        took: Duration::from_millis(4),
                    },
                },
                ObsEvent {
                    seq: 2,
                    at: Duration::from_millis(901),
                    kind: EventKind::ScaleIn {
                        task: "put".into(),
                        instances: 2,
                        node: 3,
                    },
                },
                ObsEvent {
                    seq: 3,
                    at: Duration::from_millis(950),
                    kind: EventKind::WorkerPanicked {
                        instance: "put#1".into(),
                        message: "boom".into(),
                    },
                },
                ObsEvent {
                    seq: 4,
                    at: Duration::from_millis(980),
                    kind: EventKind::RecoverySucceeded {
                        instance: "kv#1".into(),
                        attempt: 2,
                    },
                },
            ],
            events_logged: 5,
            events_dropped: 0,
        }
    }

    /// Golden test: the JSON renderer's byte-exact output is part of the
    /// snapshot schema contract (the CI smoke check parses it).
    #[test]
    fn json_renderer_golden() {
        let expected = concat!(
            "{\"uptime_ms\":1500.000,",
            "\"tasks\":[{\"name\":\"put\",\"task_id\":0,\"instances\":2,\"items_in\":100,",
            "\"items_out\":90,\"emits\":10,\"processed\":100,\"errors\":0,\"gather_waits\":0,",
            "\"queue_depth\":3,",
            "\"service_ns\":{\"count\":100,\"mean\":10.000,\"min\":5,\"p5\":5,\"p25\":7,\"p50\":10,",
            "\"p75\":12,\"p95\":15,\"p99\":16,\"max\":17},",
            "\"latency_ns\":{\"count\":10,\"mean\":10.000,\"min\":5,\"p5\":5,\"p25\":7,\"p50\":10,",
            "\"p75\":12,\"p95\":15,\"p99\":16,\"max\":17}}],",
            "\"states\":[{\"name\":\"kv\",\"state_id\":0,\"instances\":2,\"bytes\":4096,",
            "\"dirty_bytes\":0,\"stripes\":16,\"dirty_chunks\":0,\"checkpoints\":1}],",
            "\"checkpoints\":{\"taken\":1,\"deltas\":0,\"failed\":0,\"bytes\":2048,\"replayed\":0,",
            "\"encode_deferred\":4,\"buffered_bytes\":512,",
            "\"snapshot_ns\":{\"count\":1,\"mean\":10.000,\"min\":5,\"p5\":5,\"p25\":7,\"p50\":10,",
            "\"p75\":12,\"p95\":15,\"p99\":16,\"max\":17},",
            "\"persist_ns\":{\"count\":1,\"mean\":10.000,\"min\":5,\"p5\":5,\"p25\":7,\"p50\":10,",
            "\"p75\":12,\"p95\":15,\"p99\":16,\"max\":17},",
            "\"consolidate_ns\":{\"count\":1,\"mean\":10.000,\"min\":5,\"p5\":5,\"p25\":7,\"p50\":10,",
            "\"p75\":12,\"p95\":15,\"p99\":16,\"max\":17},",
            "\"sync_ns\":{\"count\":0,\"mean\":10.000,\"min\":0,\"p5\":5,\"p25\":7,\"p50\":10,",
            "\"p75\":12,\"p95\":15,\"p99\":16,\"max\":17},",
            "\"restore_ns\":{\"count\":0,\"mean\":10.000,\"min\":0,\"p5\":5,\"p25\":7,\"p50\":10,",
            "\"p75\":12,\"p95\":15,\"p99\":16,\"max\":17}},",
            "\"reconfig\":{\"scale_outs\":1,\"scale_ins\":1,",
            "\"migrated_bytes\":{\"count\":2,\"mean\":10.000,\"min\":5,\"p5\":5,\"p25\":7,",
            "\"p50\":10,\"p75\":12,\"p95\":15,\"p99\":16,\"max\":17}},",
            "\"sched\":{\"workers\":4,\"polls\":200,\"steals\":12,\"parks\":8,",
            "\"suspends\":3,\"resumes\":3,\"timer_fires\":5,\"mailbox_depth\":6},",
            "\"faults\":{\"worker_panics\":1,\"heartbeats_missed\":2,\"chunks_corrupt\":1,",
            "\"io_retries\":3,",
            "\"detection_ns\":{\"count\":1,\"mean\":10.000,\"min\":5,\"p5\":5,\"p25\":7,\"p50\":10,",
            "\"p75\":12,\"p95\":15,\"p99\":16,\"max\":17}},",
            "\"recovery\":{\"started\":2,\"succeeded\":1,\"failed\":1,\"chain_fallbacks\":1,",
            "\"in_flight\":0,",
            "\"mttr_ns\":{\"count\":1,\"mean\":10.000,\"min\":5,\"p5\":5,\"p25\":7,\"p50\":10,",
            "\"p75\":12,\"p95\":15,\"p99\":16,\"max\":17}},",
            "\"e2e_latency_ns\":{\"count\":10,\"mean\":10.000,\"min\":5,\"p5\":5,\"p25\":7,",
            "\"p50\":10,\"p75\":12,\"p95\":15,\"p99\":16,\"max\":17},",
            "\"events_logged\":5,\"events_dropped\":0,",
            "\"events\":[{\"seq\":0,\"at_ms\":750.000,\"kind\":\"checkpoint_backup\",",
            "\"instance\":\"kv#0\",\"ckpt_seq\":1,\"bytes\":2048},",
            "{\"seq\":1,\"at_ms\":900.000,\"kind\":\"state_migrated\",",
            "\"state\":\"kv\",\"bytes\":512,\"took_ms\":4.000},",
            "{\"seq\":2,\"at_ms\":901.000,\"kind\":\"scale_in\",",
            "\"task\":\"put\",\"instances\":2,\"node\":3},",
            "{\"seq\":3,\"at_ms\":950.000,\"kind\":\"worker_panicked\",",
            "\"instance\":\"put#1\",\"message\":\"boom\"},",
            "{\"seq\":4,\"at_ms\":980.000,\"kind\":\"recovery_succeeded\",",
            "\"instance\":\"kv#1\",\"attempt\":2}]}",
        );
        assert_eq!(sample_snapshot().to_json(), expected);
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let snap = sample_snapshot();
        let parsed = super::super::json::parse(&snap.to_json()).unwrap();
        assert_eq!(parsed.get("tasks").unwrap().as_array().unwrap().len(), 1);
        let task = &parsed.get("tasks").unwrap().as_array().unwrap()[0];
        assert_eq!(task.get("processed").unwrap().as_u64(), Some(100));
        assert_eq!(task.get("name").unwrap().as_str(), Some("put"));
        assert_eq!(
            parsed.get("events").unwrap().as_array().unwrap()[0]
                .get("kind")
                .unwrap()
                .as_str(),
            Some("checkpoint_backup")
        );
        let sched = parsed.get("sched").unwrap();
        assert_eq!(sched.get("workers").unwrap().as_u64(), Some(4));
        assert_eq!(sched.get("steals").unwrap().as_u64(), Some(12));
    }

    #[test]
    fn text_renderer_mentions_every_section() {
        let text = sample_snapshot().to_text();
        assert!(text.contains("deployment metrics"));
        assert!(text.contains("put"));
        assert!(text.contains("kv"));
        assert!(text.contains("checkpoints: 1 taken"));
        assert!(text.contains("4 deferred encodes, 512 buffered bytes"));
        assert!(text.contains("reconfig: 1 scale-outs, 1 scale-ins"));
        assert!(text.contains("sched: 4 workers, 200 polls, 12 steals"));
        assert!(text.contains("faults: 1 panics, 2 heartbeats missed, 1 corrupt chunks"));
        assert!(text.contains("recovery: 2 started, 1 succeeded, 1 failed, 1 chain fallbacks"));
        assert!(text.contains("e2e latency"));
        assert!(text.contains("checkpoint_backup"));
        assert!(text.contains("state_migrated state=kv bytes=512"));
        assert!(text.contains("scale_in task=put instances=2 node=3"));
        assert!(text.contains("worker_panicked instance=put#1 message=boom"));
        assert!(text.contains("recovery_succeeded instance=kv#1 attempt=2"));
    }

    #[test]
    fn aggregate_stats_sum_tasks_and_states() {
        let snap = sample_snapshot();
        let stats = snap.deployment_stats();
        assert_eq!(stats.processed, 100);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.task_instances, 2);
        assert_eq!(stats.state_instances, 2);
        assert_eq!(stats.state_bytes, 4096);
        assert_eq!(stats.checkpoints_taken, 1);
        assert_eq!(stats.scale_outs, 0);
        assert_eq!(stats.scale_ins, 1);
        assert_eq!(snap.task_by_id(TaskId(0)).unwrap().name, "put");
        assert_eq!(snap.state_by_id(StateId(0)).unwrap().bytes, 4096);
        assert!(snap.task("nope").is_none());
    }
}

//! A dependency-free JSON tree: string escaping for the renderers and a
//! small recursive-descent parser used by tests and the CI smoke check to
//! validate [`super::MetricsSnapshot::to_json`] output.
//!
//! The parser accepts standard JSON (RFC 8259) minus the exotic corners the
//! renderer never produces: no `\u` surrogate-pair validation beyond basic
//! code-point decoding, and numbers are parsed as `f64`.

use std::collections::BTreeMap;

/// Escapes `s` as a JSON string literal, including the quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as an array, when it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, when numeric and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }
}

/// Parses `input` into a [`Json`] tree.
///
/// # Errors
///
/// Returns a description of the first syntax error, with its byte offset.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(escape("x\ny"), "\"x\\ny\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse("\"hi\\n\"").unwrap(), Json::Str("hi\n".into()));
        let arr = parse("[1, 2, 3]").unwrap();
        assert_eq!(arr.as_array().unwrap().len(), 3);
        let obj = parse(r#"{"a": {"b": [true, null]}, "c": "d"}"#).unwrap();
        assert_eq!(
            obj.get("a").unwrap().get("b").unwrap().as_array().unwrap()[0],
            Json::Bool(true)
        );
        assert_eq!(obj.get("c").unwrap().as_str(), Some("d"));
    }

    #[test]
    fn escaped_strings_round_trip() {
        for s in ["a\"b", "back\\slash", "tab\there", "uni\u{1}code", "ütf8 ✓"] {
            let parsed = parse(&escape(s)).unwrap();
            assert_eq!(parsed.as_str(), Some(s));
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn numeric_accessors_discriminate() {
        let v = parse("3").unwrap();
        assert_eq!(v.as_u64(), Some(3));
        assert_eq!(v.as_f64(), Some(3.0));
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
        assert_eq!(parse("\"3\"").unwrap().as_u64(), None);
    }
}

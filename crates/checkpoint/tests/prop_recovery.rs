//! Property-based tests of the full checkpoint → failure → restore →
//! replay cycle (§5).
//!
//! For any operation sequence, any checkpoint position, any m-to-n
//! strategy: restoring the checkpoint and replaying the *entire* input
//! (with timestamp-based duplicate filtering) must reproduce exactly the
//! reference state — nothing lost, nothing applied twice.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;
use sdg_checkpoint::backup::{BackupSet, BackupStore};
use sdg_checkpoint::cell::StateCell;
use sdg_checkpoint::config::CheckpointConfig;
use sdg_checkpoint::coordinator::{take_checkpoint, take_checkpoint_with, CheckpointOptions};
use sdg_checkpoint::recovery::{restore_chain, restore_state, RestoreOptions};
use sdg_common::ids::{EdgeId, InstanceId, TaskId};
use sdg_common::value::{Key, Value};
use sdg_state::partition::PartitionDim;
use sdg_state::store::{StateStore, StateType};

#[derive(Debug, Clone)]
enum Op {
    Put(i64, i64),
    Inc(i64, i64),
    Remove(i64),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0i64..24, -50i64..50).prop_map(|(k, v)| Op::Put(k, v)),
            (0i64..24, 1i64..5).prop_map(|(k, v)| Op::Inc(k, v)),
            (0i64..24).prop_map(Op::Remove),
        ],
        1..40,
    )
}

fn apply_store(store: &mut StateStore, op: &Op) {
    let table = store.as_table().expect("table");
    match op {
        Op::Put(k, v) => {
            table.put(Key::Int(*k), Value::Int(*v));
        }
        Op::Inc(k, by) => {
            let next = match table.get(&Key::Int(*k)) {
                Some(Value::Int(c)) => c + by,
                _ => *by,
            };
            table.put(Key::Int(*k), Value::Int(next));
        }
        Op::Remove(k) => {
            table.remove(&Key::Int(*k));
        }
    }
}

fn apply_reference(model: &mut HashMap<i64, i64>, op: &Op) {
    match op {
        Op::Put(k, v) => {
            model.insert(*k, *v);
        }
        Op::Inc(k, by) => {
            *model.entry(*k).or_insert(0) += by;
        }
        Op::Remove(k) => {
            model.remove(k);
        }
    }
}

fn key_of(op: &Op) -> i64 {
    match op {
        Op::Put(k, _) | Op::Inc(k, _) | Op::Remove(k) => *k,
    }
}

fn sorted_entries(store: &StateStore) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut entries: Vec<(Vec<u8>, Vec<u8>)> = store
        .export_entries()
        .into_iter()
        .map(|e| (e.key, e.value))
        .collect();
    entries.sort();
    entries
}

fn table_contents(store: &mut StateStore) -> HashMap<i64, i64> {
    let mut out = HashMap::new();
    store.as_table().expect("table").for_each(|k, v| {
        if let (Key::Int(k), Value::Int(v)) = (k, v) {
            out.insert(*k, *v);
        }
    });
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn checkpoint_restore_replay_is_exactly_once(
        ops in arb_ops(),
        ckpt_at_frac in 0.0f64..1.0,
        m in 1usize..4,
        n in 1usize..4,
        chunks in 1usize..10,
    ) {
        let edge = EdgeId(5);
        let instance = InstanceId::new(TaskId(1), 0);
        let ckpt_at = ((ops.len() as f64) * ckpt_at_frac) as usize;

        // Reference: all ops applied once, in order.
        let mut reference = HashMap::new();
        for op in &ops {
            apply_reference(&mut reference, op);
        }
        let mut reference_at_ckpt = HashMap::new();
        for op in &ops[..ckpt_at] {
            apply_reference(&mut reference_at_ckpt, op);
        }

        // Live cell: apply the prefix, checkpoint, apply the suffix.
        let cell = StateCell::new(StateType::Table);
        for (i, op) in ops[..ckpt_at].iter().enumerate() {
            prop_assert!(cell.apply(edge, (i + 1) as u64, |s| apply_store(s, op)).is_some());
        }
        let stores: Vec<Arc<BackupStore>> =
            (0..m).map(|_| Arc::new(BackupStore::in_memory())).collect();
        let cfg = CheckpointConfig {
            backup_fanout: m,
            chunks: chunks.max(m),
            serialise_threads: 2,
            ..CheckpointConfig::default()
        };
        let set = take_checkpoint(&cell, instance, 1, Vec::new, &stores, &cfg).unwrap();
        for (i, op) in ops[ckpt_at..].iter().enumerate() {
            let ts = (ckpt_at + i + 1) as u64;
            prop_assert!(cell.apply(edge, ts, |s| apply_store(s, op)).is_some());
        }

        // Failure: restore to n instances and merge them.
        let restored = restore_state(&set, &stores, n).unwrap();
        prop_assert_eq!(restored.len(), n);
        let mut merged = StateStore::new(StateType::Table);
        let mut vector = sdg_common::time::VectorTs::new();
        for (store, v) in restored {
            let entries = store.export_entries();
            merged.import_entries(&entries).unwrap();
            vector.merge_max(&v);
        }
        // The restored state must be exactly the checkpoint-time state.
        prop_assert_eq!(table_contents(&mut merged), reference_at_ckpt);
        prop_assert_eq!(vector.get(edge), ckpt_at as u64);

        // Replay the ENTIRE input against a recovered cell: the vector
        // filters the prefix; the suffix applies exactly once.
        let recovered = StateCell::from_store(merged, vector);
        let mut applied = 0usize;
        for (i, op) in ops.iter().enumerate() {
            if recovered
                .apply(edge, (i + 1) as u64, |s| apply_store(s, op))
                .is_some()
            {
                applied += 1;
            }
        }
        prop_assert_eq!(applied, ops.len() - ckpt_at, "only the suffix replays");
        let final_state = recovered.with(|inner| table_contents(&mut inner.store));
        prop_assert_eq!(final_state, reference);
    }

    /// Striping + incremental checkpointing is an implementation detail:
    /// for any operation sequence, checkpoint positions, stripe count and
    /// delta-chunk space, a striped cell checkpointed as a base + delta
    /// chain and restored by composing the chain must hold byte-identical
    /// state to an unsharded cell checkpointed in one full generation at
    /// the same position — and replaying the entire input must filter
    /// exactly the same duplicates in both.
    #[test]
    fn striped_delta_chain_equals_unsharded_full(
        ops in arb_ops(),
        stripes in 1usize..6,
        cut1_frac in 0.0f64..1.0,
        cut2_frac in 0.0f64..1.0,
        delta_chunks in 1usize..12,
        m in 1usize..4,
    ) {
        let edge = EdgeId(7);
        let instance = InstanceId::new(TaskId(2), 0);
        let mut cuts = vec![
            ((ops.len() as f64) * cut1_frac) as usize,
            ((ops.len() as f64) * cut2_frac) as usize,
        ];
        cuts.sort_unstable();
        cuts.dedup();

        // Route hash = the key's partition hash, as the dispatcher computes.
        let route = |op: &Op| Some(Key::Int(key_of(op)).stable_hash());

        let cell_striped = StateCell::new_striped(
            StateType::Table, stripes, PartitionDim::Row, Some(delta_chunks));
        let cell_flat = StateCell::new(StateType::Table);
        let stores_a: Vec<Arc<BackupStore>> =
            (0..m).map(|_| Arc::new(BackupStore::in_memory())).collect();
        let stores_b: Vec<Arc<BackupStore>> =
            (0..m).map(|_| Arc::new(BackupStore::in_memory())).collect();
        let cfg_a = CheckpointConfig {
            backup_fanout: m,
            incremental: true,
            delta_chunks,
            serialise_threads: 2,
            ..CheckpointConfig::default()
        };
        let cfg_b = CheckpointConfig {
            backup_fanout: m,
            chunks: delta_chunks.max(m),
            serialise_threads: 2,
            ..CheckpointConfig::default()
        };

        let mut chain: Vec<BackupSet> = Vec::new();
        let mut full_set = None;
        let mut seq = 0u64;
        for i in 0..=ops.len() {
            if cuts.contains(&i) {
                seq += 1;
                let set = take_checkpoint_with(
                    &cell_striped, instance, seq, Vec::new, &stores_a, &cfg_a,
                    None, CheckpointOptions::default(),
                ).unwrap();
                if set.is_base() {
                    chain.clear();
                }
                chain.push(set);
                full_set = Some(take_checkpoint(
                    &cell_flat, instance, seq, Vec::new, &stores_b, &cfg_b,
                ).unwrap());
            }
            if let Some(op) = ops.get(i) {
                let ts = (i + 1) as u64;
                prop_assert!(cell_striped
                    .apply_routed(edge, ts, route(op), |s| apply_store(s, op))
                    .is_some());
                prop_assert!(cell_flat
                    .apply(edge, ts, |s| apply_store(s, op))
                    .is_some());
            }
        }
        prop_assert!(!chain.is_empty() && chain[0].is_base());

        // Crash: compose the chain (striped path) vs the single full
        // generation (flat path). State must be byte-identical.
        let restored_a = restore_chain(&chain, &stores_a, 1, RestoreOptions::default()).unwrap();
        let (store_a, _vector_a) = restored_a.into_iter().next().unwrap();
        let restored_b = restore_state(full_set.as_ref().unwrap(), &stores_b, 1).unwrap();
        let (store_b, vector_b) = restored_b.into_iter().next().unwrap();
        prop_assert_eq!(sorted_entries(&store_a), sorted_entries(&store_b));

        // Rebuild a striped cell with the exact per-stripe vectors recorded
        // in the newest generation (the runtime's recovery path), and an
        // unsharded cell from the full checkpoint. Replaying the ENTIRE
        // input must filter exactly the same duplicates in both.
        let newest = chain.last().unwrap();
        prop_assert_eq!(newest.stripe_vectors.len(), stripes);
        let parts = store_a.split_by_hash(stripes, PartitionDim::Row).unwrap();
        let recovered_a = StateCell::from_parts(
            parts.into_iter().zip(newest.stripe_vectors.iter().cloned()).collect(),
            PartitionDim::Row,
            Some(delta_chunks),
        );
        let recovered_b = StateCell::from_store(store_b, vector_b);
        let mut applied_a = Vec::new();
        let mut applied_b = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let ts = (i + 1) as u64;
            if recovered_a.apply_routed(edge, ts, route(op), |s| apply_store(s, op)).is_some() {
                applied_a.push(i);
            }
            if recovered_b.apply(edge, ts, |s| apply_store(s, op)).is_some() {
                applied_b.push(i);
            }
        }
        prop_assert_eq!(&applied_a, &applied_b, "identical duplicate filtering");
        let last_cut = *cuts.last().unwrap();
        prop_assert_eq!(applied_b.len(), ops.len() - last_cut, "exactly the suffix replays");

        // After replay both paths hold the reference final state.
        let mut reference = HashMap::new();
        for op in &ops {
            apply_reference(&mut reference, op);
        }
        let (entries_a, _) = recovered_a.export_merged();
        let mut merged_a = StateStore::new(StateType::Table);
        merged_a.import_entries(&entries_a).unwrap();
        prop_assert_eq!(table_contents(&mut merged_a), reference.clone());
        let final_b = recovered_b.with(|inner| table_contents(&mut inner.store));
        prop_assert_eq!(final_b, reference);
    }

    /// The dirty-state overlay never leaks post-checkpoint writes into the
    /// backup, even when the checkpoint races concurrent mutation.
    #[test]
    fn concurrent_writes_never_leak_into_the_checkpoint(
        prefix in arb_ops(),
        suffix in arb_ops(),
    ) {
        let edge = EdgeId(1);
        let cell = Arc::new(StateCell::new(StateType::Table));
        for (i, op) in prefix.iter().enumerate() {
            cell.apply(edge, (i + 1) as u64, |s| apply_store(s, op));
        }
        let mut reference_at_ckpt = HashMap::new();
        for op in &prefix {
            apply_reference(&mut reference_at_ckpt, op);
        }

        let stores: Vec<Arc<BackupStore>> = vec![Arc::new(BackupStore::in_memory())];
        let cfg = CheckpointConfig::default();

        // Writer thread races the checkpoint.
        let writer_cell = Arc::clone(&cell);
        let suffix_cloned = suffix.clone();
        let plen = prefix.len();
        let writer = std::thread::spawn(move || {
            for (i, op) in suffix_cloned.iter().enumerate() {
                writer_cell.apply(edge, (plen + i + 1) as u64, |s| apply_store(s, op));
            }
        });
        let set = take_checkpoint(
            &cell,
            InstanceId::new(TaskId(0), 0),
            1,
            Vec::new,
            &stores,
            &cfg,
        )
        .unwrap();
        writer.join().unwrap();

        // The checkpoint is a consistent prefix: its vector tells exactly
        // which ops it contains, and the restored contents match the
        // reference at that point.
        let covered = set.vector.get(edge) as usize;
        prop_assert!(covered >= prefix.len());
        prop_assert!(covered <= prefix.len() + suffix.len());
        let mut reference_at_cover = HashMap::new();
        for op in prefix.iter().chain(&suffix).take(covered) {
            apply_reference(&mut reference_at_cover, op);
        }
        let restored = restore_state(&set, &stores, 1).unwrap();
        let (mut store, _) = restored.into_iter().next().unwrap();
        prop_assert_eq!(table_contents(&mut store), reference_at_cover);
    }
}

//! Upstream output buffers for message replay (§5).
//!
//! Every TE instance keeps, per outgoing dataflow edge, the items it has
//! sent since the oldest downstream checkpoint. After a downstream failure
//! the buffer is replayed; once all downstream checkpoints cover a
//! timestamp, the prefix up to it is trimmed.
//!
//! Payloads are **two-state**: items logged on the dispatch path stay
//! [`BufferedPayload::Live`] — a refcounted handle on the very record the
//! consumer received, so logging costs an `Arc` clone instead of an encode —
//! and are only *sealed* into [`BufferedPayload::Encoded`] wire bytes when a
//! checkpoint persists them (or when they were restored from one). Replay
//! handles both: `Live` items are re-sent with zero decode, `Encoded` items
//! fall back to the wire codec.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use bytes::BytesMut;
use sdg_common::codec::{write_varint, Codec};
use sdg_common::time::ScalarTs;
use sdg_common::value::Record;

/// The payload of one buffered output item.
#[derive(Debug, Clone, PartialEq)]
pub enum BufferedPayload {
    /// An item logged this epoch: the producer parks a refcounted handle on
    /// the record it dispatched, plus the header fields needed to rebuild
    /// the wire form. Encoding is deferred until a checkpoint seals it.
    Live {
        /// Correlation id of the originating external input.
        corr: u64,
        /// Expected downstream instance count (gather bookkeeping).
        expect: u32,
        /// The dispatched record, shared with the in-flight item.
        payload: Arc<Record>,
    },
    /// Wire bytes, either produced by the eager-encoding baseline or
    /// restored from a checkpoint. Layout: varint `corr`, varint `expect`,
    /// then the record encoding.
    Encoded(Vec<u8>),
}

/// One buffered output item: its scalar timestamp and two-state payload.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferedItem {
    /// Timestamp assigned by the producer on this edge.
    pub ts: ScalarTs,
    /// The payload, live or encoded.
    pub payload: BufferedPayload,
}

impl BufferedItem {
    /// A live (deferred-encoding) item sharing `payload` by refcount.
    pub fn live(ts: ScalarTs, corr: u64, expect: u32, payload: Arc<Record>) -> Self {
        BufferedItem {
            ts,
            payload: BufferedPayload::Live {
                corr,
                expect,
                payload,
            },
        }
    }

    /// An item already in wire form.
    pub fn encoded(ts: ScalarTs, bytes: Vec<u8>) -> Self {
        BufferedItem {
            ts,
            payload: BufferedPayload::Encoded(bytes),
        }
    }

    /// Renders the payload's wire bytes (varint `corr`, varint `expect`,
    /// record encoding) — identical to what the eager path logs.
    pub fn to_bytes(&self) -> Vec<u8> {
        match &self.payload {
            BufferedPayload::Live {
                corr,
                expect,
                payload,
            } => {
                let mut buf = BytesMut::with_capacity(payload.approx_size() + 16);
                write_varint(&mut buf, *corr);
                write_varint(&mut buf, u64::from(*expect));
                payload.encode(&mut buf);
                buf.to_vec()
            }
            BufferedPayload::Encoded(bytes) => bytes.clone(),
        }
    }

    /// Converts a `Live` payload to its `Encoded` form in place. Returns
    /// `true` when an encode actually happened (the item was live).
    pub fn seal(&mut self) -> bool {
        if matches!(self.payload, BufferedPayload::Encoded(_)) {
            return false;
        }
        self.payload = BufferedPayload::Encoded(self.to_bytes());
        true
    }

    /// Bytes this item accounts for in the buffer: the record's approximate
    /// in-memory footprint for `Live` items (no encode on the dispatch
    /// path), the exact wire length for `Encoded` ones.
    pub fn cost(&self) -> usize {
        match &self.payload {
            BufferedPayload::Live { payload, .. } => payload.approx_size() + 16,
            BufferedPayload::Encoded(bytes) => bytes.len(),
        }
    }
}

/// An output buffer for one dataflow edge of one producer instance.
#[derive(Debug, Default)]
pub struct OutputBuffer {
    items: VecDeque<BufferedItem>,
    bytes: usize,
    /// Aggregate byte counter shared with the owning registry, kept in
    /// lock-step with `bytes` so a deployment-wide total is one atomic
    /// load instead of a walk over every buffer's lock.
    shared: Option<Arc<AtomicUsize>>,
}

impl Clone for OutputBuffer {
    fn clone(&self) -> Self {
        // A clone is a detached copy: it must not double-account its bytes
        // in the origin's aggregate counter.
        OutputBuffer {
            items: self.items.clone(),
            bytes: self.bytes,
            shared: None,
        }
    }
}

impl OutputBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer that mirrors every byte-count change into
    /// `counter` (the registry's aggregate).
    pub fn with_shared(counter: Arc<AtomicUsize>) -> Self {
        OutputBuffer {
            shared: Some(counter),
            ..Self::default()
        }
    }

    fn account_add(&mut self, n: usize) {
        self.bytes += n;
        if let Some(c) = &self.shared {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    fn account_sub(&mut self, n: usize) {
        self.bytes -= n;
        if let Some(c) = &self.shared {
            c.fetch_sub(n, Ordering::Relaxed);
        }
    }

    /// Appends an item.
    ///
    /// Timestamps must arrive in increasing order (each producer instance
    /// owns its edge's timestamp generator).
    ///
    /// # Panics
    ///
    /// Panics if `item.ts` is not greater than the last buffered timestamp —
    /// that would indicate a broken timestamp generator upstream, which
    /// would corrupt replay.
    pub fn push(&mut self, item: BufferedItem) {
        if let Some(last) = self.items.back() {
            assert!(
                item.ts > last.ts,
                "output buffer timestamps must increase: {} after {}",
                item.ts,
                last.ts
            );
        }
        self.account_add(item.cost());
        self.items.push_back(item);
    }

    /// Appends a live (deferred-encoding) item: one refcount bump, no
    /// serialisation. See [`OutputBuffer::push`] for the monotonicity rule.
    pub fn push_live(&mut self, ts: ScalarTs, corr: u64, expect: u32, payload: Arc<Record>) {
        self.push(BufferedItem::live(ts, corr, expect, payload));
    }

    /// Appends an item already in wire form (the eager-encoding baseline).
    /// See [`OutputBuffer::push`] for the monotonicity rule.
    pub fn push_encoded(&mut self, ts: ScalarTs, bytes: Vec<u8>) {
        self.push(BufferedItem::encoded(ts, bytes));
    }

    /// Appends a batch of items under one borrow of the buffer.
    ///
    /// Callers holding the buffer behind a lock amortise one lock
    /// acquisition over the whole batch (the runtime's edge micro-batching
    /// path). The same monotonicity rule as [`OutputBuffer::push`] applies
    /// to the concatenation of existing and new items.
    pub fn push_all(&mut self, items: impl IntoIterator<Item = BufferedItem>) {
        for item in items {
            self.push(item);
        }
    }

    /// Drops all items with `ts <= watermark` (they are covered by every
    /// downstream checkpoint).
    ///
    /// When the watermark covers the whole buffer — the common case under
    /// watermark storms right after a checkpoint — the back sentinel is
    /// checked once and the buffer is cleared wholesale instead of
    /// re-checking and re-accounting per item.
    pub fn trim(&mut self, watermark: ScalarTs) {
        if self.drain_covered(watermark) {
            return;
        }
        while let Some(front) = self.items.front() {
            if front.ts <= watermark {
                let cost = front.cost();
                self.account_sub(cost);
                self.items.pop_front();
            } else {
                break;
            }
        }
    }

    /// Fast path for [`OutputBuffer::trim`]: when `watermark` covers the
    /// newest buffered item it covers all of them (timestamps are
    /// monotone), so everything is dropped in O(1) bookkeeping. Returns
    /// `true` when it handled the trim.
    fn drain_covered(&mut self, watermark: ScalarTs) -> bool {
        match self.items.back() {
            Some(back) if back.ts <= watermark => {
                self.items.clear();
                let n = self.bytes;
                self.account_sub(n);
                true
            }
            Some(_) => false,
            None => true,
        }
    }

    /// Returns the items with `ts > after`, in timestamp order, for replay.
    ///
    /// Live payloads are shared by refcount — no record is deep-cloned
    /// under the caller's lock.
    pub fn replay_after(&self, after: ScalarTs) -> Vec<BufferedItem> {
        self.items
            .iter()
            .filter(|i| i.ts > after)
            .cloned()
            .collect()
    }

    /// Returns all buffered items (for inclusion in the producer's own
    /// checkpoint). Live payloads are shared by refcount, so this is cheap
    /// enough to run under the checkpoint initiation lock; the persist
    /// phase seals them into wire bytes off-path.
    pub fn snapshot(&self) -> Vec<BufferedItem> {
        self.items.iter().cloned().collect()
    }

    /// Replaces the contents from a checkpoint snapshot.
    pub fn restore(&mut self, items: Vec<BufferedItem>) {
        let old = self.bytes;
        self.account_sub(old);
        let new: usize = items.iter().map(|i| i.cost()).sum();
        self.account_add(new);
        self.items = items.into();
    }

    /// Drops the oldest items until at most `max_items` remain.
    ///
    /// Used to bound the upstream-backup horizon for consumers that never
    /// checkpoint (stateless TEs).
    pub fn cap(&mut self, max_items: usize) {
        while self.items.len() > max_items {
            if let Some(front) = self.items.pop_front() {
                self.account_sub(front.cost());
            }
        }
    }

    /// Number of buffered items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total approximate payload bytes buffered (wire length for encoded
    /// items, `Record::approx_size` for live ones).
    pub fn buffered_bytes(&self) -> usize {
        self.bytes
    }

    /// Highest buffered timestamp (0 when empty).
    pub fn last_ts(&self) -> ScalarTs {
        self.items.back().map(|i| i.ts).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdg_common::codec::{encode_to_vec, Reader};
    use sdg_common::record;
    use sdg_common::value::Value;

    fn buf_with(ts: &[u64]) -> OutputBuffer {
        let mut b = OutputBuffer::new();
        for &t in ts {
            b.push_encoded(t, vec![t as u8; 4]);
        }
        b
    }

    fn rec(n: i64) -> Arc<Record> {
        Arc::new(record! { "k" => Value::Int(n), "s" => Value::Str("payload".into()) })
    }

    #[test]
    fn push_and_len() {
        let b = buf_with(&[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.buffered_bytes(), 12);
        assert_eq!(b.last_ts(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    #[should_panic(expected = "timestamps must increase")]
    fn non_monotone_push_panics() {
        let mut b = buf_with(&[5]);
        b.push_encoded(5, vec![]);
    }

    #[test]
    #[should_panic(expected = "timestamps must increase")]
    fn non_monotone_live_push_panics() {
        let mut b = buf_with(&[5]);
        b.push_live(4, 0, 1, rec(4));
    }

    #[test]
    fn push_all_appends_a_batch() {
        let mut b = buf_with(&[1]);
        b.push_all([
            BufferedItem::encoded(2, vec![0; 2]),
            BufferedItem::encoded(3, vec![0; 3]),
        ]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.last_ts(), 3);
        assert_eq!(b.buffered_bytes(), 4 + 2 + 3);
    }

    #[test]
    #[should_panic(expected = "timestamps must increase")]
    fn push_all_enforces_monotonicity_across_the_batch() {
        let mut b = buf_with(&[5]);
        b.push_all([
            BufferedItem::encoded(6, vec![]),
            BufferedItem::encoded(6, vec![]),
        ]);
    }

    #[test]
    fn live_push_accounts_approx_size_without_encoding() {
        let mut b = OutputBuffer::new();
        let r = rec(7);
        b.push_live(1, 9, 2, Arc::clone(&r));
        assert_eq!(b.len(), 1);
        assert_eq!(b.buffered_bytes(), r.approx_size() + 16);
        // The buffer holds the same allocation the producer dispatched.
        match &b.snapshot()[0].payload {
            BufferedPayload::Live { payload, .. } => assert!(Arc::ptr_eq(payload, &r)),
            BufferedPayload::Encoded(_) => panic!("live push must stay live"),
        }
    }

    #[test]
    fn seal_produces_the_eager_wire_bytes() {
        let r = rec(42);
        let mut item = BufferedItem::live(3, 99, 2, Arc::clone(&r));

        // Reference: what the eager path would have logged.
        let mut expect = BytesMut::new();
        write_varint(&mut expect, 99);
        write_varint(&mut expect, 2);
        r.encode(&mut expect);
        let expect = expect.to_vec();

        assert_eq!(item.to_bytes(), expect);
        assert!(item.seal());
        assert!(!item.seal(), "sealing is idempotent");
        assert_eq!(item.payload, BufferedPayload::Encoded(expect.clone()));
        assert_eq!(item.cost(), expect.len());

        // The sealed bytes decode back to the original header + record.
        let mut rd = Reader::new(&expect);
        assert_eq!(rd.read_varint().unwrap(), 99);
        assert_eq!(rd.read_varint().unwrap(), 2);
        assert_eq!(Record::decode(&mut rd).unwrap(), *r);
    }

    #[test]
    fn sealed_encoded_item_matches_encode_to_vec_layout() {
        // The record portion of the wire form is exactly `Record::encode`.
        let r = rec(5);
        let bytes = BufferedItem::live(1, 0, 1, Arc::clone(&r)).to_bytes();
        let record_bytes = encode_to_vec(&*r);
        assert!(bytes.ends_with(&record_bytes));
    }

    #[test]
    fn trim_drops_covered_prefix() {
        let mut b = buf_with(&[1, 2, 3, 4, 5]);
        b.trim(3);
        assert_eq!(b.len(), 2);
        assert_eq!(
            b.replay_after(0).iter().map(|i| i.ts).collect::<Vec<_>>(),
            vec![4, 5]
        );
        b.trim(100);
        assert!(b.is_empty());
        assert_eq!(b.buffered_bytes(), 0);
    }

    #[test]
    fn trim_covering_the_back_sentinel_clears_wholesale() {
        let mut b = buf_with(&[1, 2, 3]);
        b.push_live(4, 0, 1, rec(4));
        b.trim(4); // == last_ts: the drain_covered fast path.
        assert!(b.is_empty());
        assert_eq!(b.buffered_bytes(), 0);
        b.trim(4); // Idempotent on an empty buffer.
        assert!(b.is_empty());
    }

    #[test]
    fn trim_is_idempotent() {
        let mut b = buf_with(&[1, 2, 3]);
        b.trim(2);
        b.trim(2);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn replay_after_filters_by_watermark() {
        let b = buf_with(&[10, 20, 30]);
        let replay = b.replay_after(15);
        assert_eq!(
            replay.iter().map(|i| i.ts).collect::<Vec<_>>(),
            vec![20, 30]
        );
        assert!(b.replay_after(30).is_empty());
    }

    #[test]
    fn replay_shares_live_payloads_by_refcount() {
        let mut b = OutputBuffer::new();
        let r = rec(1);
        b.push_live(1, 0, 1, Arc::clone(&r));
        let replay = b.replay_after(0);
        match &replay[0].payload {
            BufferedPayload::Live { payload, .. } => assert!(Arc::ptr_eq(payload, &r)),
            BufferedPayload::Encoded(_) => panic!("replay must not encode"),
        }
    }

    #[test]
    fn cap_bounds_the_buffer() {
        let mut b = buf_with(&[1, 2, 3, 4, 5]);
        b.cap(2);
        assert_eq!(b.len(), 2);
        assert_eq!(
            b.replay_after(0).iter().map(|i| i.ts).collect::<Vec<_>>(),
            vec![4, 5]
        );
        b.cap(10); // No-op when under the cap.
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn snapshot_restore_roundtrips() {
        let mut b = buf_with(&[1, 2]);
        b.push_live(3, 7, 1, rec(3));
        let snap = b.snapshot();
        let mut restored = OutputBuffer::new();
        restored.restore(snap);
        assert_eq!(restored.len(), 3);
        assert_eq!(restored.buffered_bytes(), b.buffered_bytes());
        assert_eq!(restored.last_ts(), 3);
        // Restored buffers continue accepting newer items.
        restored.push_encoded(4, vec![0]);
        assert_eq!(restored.len(), 4);
    }

    #[test]
    fn shared_counter_matches_recomputation() {
        // Oracle: after any sequence of mutations, the aggregate counter
        // equals a from-scratch walk over the buffer (mirrors the
        // `dirty_bytes` oracle in `sdg_state::table`).
        let counter = Arc::new(AtomicUsize::new(0));
        let mut a = OutputBuffer::with_shared(Arc::clone(&counter));
        let mut b = OutputBuffer::with_shared(Arc::clone(&counter));
        for t in 1..=8u64 {
            a.push_encoded(t, vec![0; t as usize]);
        }
        b.push_live(1, 0, 1, rec(1));
        b.push_all([
            BufferedItem::encoded(2, vec![0; 5]),
            BufferedItem::encoded(3, vec![0; 7]),
        ]);
        let recompute = |x: &OutputBuffer, y: &OutputBuffer| {
            x.snapshot().iter().map(BufferedItem::cost).sum::<usize>()
                + y.snapshot().iter().map(BufferedItem::cost).sum::<usize>()
        };
        assert_eq!(counter.load(Ordering::Relaxed), recompute(&a, &b));
        a.trim(3); // Per-item prefix trim.
        assert_eq!(counter.load(Ordering::Relaxed), recompute(&a, &b));
        a.cap(2); // Horizon cap.
        assert_eq!(counter.load(Ordering::Relaxed), recompute(&a, &b));
        b.restore(vec![BufferedItem::encoded(9, vec![0; 11])]);
        assert_eq!(counter.load(Ordering::Relaxed), recompute(&a, &b));
        // A clone is detached: mutating it must not touch the aggregate.
        let mut detached = a.clone();
        detached.push_encoded(100, vec![0; 32]);
        assert_eq!(counter.load(Ordering::Relaxed), recompute(&a, &b));
        a.trim(u64::MAX); // Wholesale drain fast path.
        b.trim(u64::MAX);
        assert_eq!(counter.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn restore_of_sealed_items_accounts_wire_length() {
        let mut item = BufferedItem::live(1, 0, 1, rec(9));
        item.seal();
        let wire = item.cost();
        let mut b = OutputBuffer::new();
        b.restore(vec![item]);
        assert_eq!(b.buffered_bytes(), wire);
    }
}

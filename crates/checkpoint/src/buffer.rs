//! Upstream output buffers for message replay (§5).
//!
//! Every TE instance keeps, per outgoing dataflow edge, the encoded items it
//! has sent since the oldest downstream checkpoint. After a downstream
//! failure the buffer is replayed; once all downstream checkpoints cover a
//! timestamp, the prefix up to it is trimmed.

use std::collections::VecDeque;

use sdg_common::time::ScalarTs;

/// One buffered output item: its scalar timestamp and encoded payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferedItem {
    /// Timestamp assigned by the producer on this edge.
    pub ts: ScalarTs,
    /// Encoded item payload.
    pub bytes: Vec<u8>,
}

/// An output buffer for one dataflow edge of one producer instance.
#[derive(Debug, Clone, Default)]
pub struct OutputBuffer {
    items: VecDeque<BufferedItem>,
    bytes: usize,
}

impl OutputBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an item.
    ///
    /// Timestamps must arrive in increasing order (each producer instance
    /// owns its edge's timestamp generator).
    ///
    /// # Panics
    ///
    /// Panics if `ts` is not greater than the last buffered timestamp —
    /// that would indicate a broken timestamp generator upstream, which
    /// would corrupt replay.
    pub fn push(&mut self, ts: ScalarTs, bytes: Vec<u8>) {
        if let Some(last) = self.items.back() {
            assert!(
                ts > last.ts,
                "output buffer timestamps must increase: {} after {}",
                ts,
                last.ts
            );
        }
        self.bytes += bytes.len();
        self.items.push_back(BufferedItem { ts, bytes });
    }

    /// Appends a batch of items under one borrow of the buffer.
    ///
    /// Callers holding the buffer behind a lock amortise one lock
    /// acquisition over the whole batch (the runtime's edge micro-batching
    /// path). The same monotonicity rule as [`OutputBuffer::push`] applies
    /// to the concatenation of existing and new items.
    pub fn push_all(&mut self, items: impl IntoIterator<Item = (ScalarTs, Vec<u8>)>) {
        for (ts, bytes) in items {
            self.push(ts, bytes);
        }
    }

    /// Drops all items with `ts <= watermark` (they are covered by every
    /// downstream checkpoint).
    pub fn trim(&mut self, watermark: ScalarTs) {
        while let Some(front) = self.items.front() {
            if front.ts <= watermark {
                self.bytes -= front.bytes.len();
                self.items.pop_front();
            } else {
                break;
            }
        }
    }

    /// Returns the items with `ts > after`, in timestamp order, for replay.
    pub fn replay_after(&self, after: ScalarTs) -> Vec<BufferedItem> {
        self.items
            .iter()
            .filter(|i| i.ts > after)
            .cloned()
            .collect()
    }

    /// Returns all buffered items (for inclusion in the producer's own
    /// checkpoint).
    pub fn snapshot(&self) -> Vec<BufferedItem> {
        self.items.iter().cloned().collect()
    }

    /// Replaces the contents from a checkpoint snapshot.
    pub fn restore(&mut self, items: Vec<BufferedItem>) {
        self.bytes = items.iter().map(|i| i.bytes.len()).sum();
        self.items = items.into();
    }

    /// Drops the oldest items until at most `max_items` remain.
    ///
    /// Used to bound the upstream-backup horizon for consumers that never
    /// checkpoint (stateless TEs).
    pub fn cap(&mut self, max_items: usize) {
        while self.items.len() > max_items {
            if let Some(front) = self.items.pop_front() {
                self.bytes -= front.bytes.len();
            }
        }
    }

    /// Number of buffered items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total payload bytes buffered.
    pub fn buffered_bytes(&self) -> usize {
        self.bytes
    }

    /// Highest buffered timestamp (0 when empty).
    pub fn last_ts(&self) -> ScalarTs {
        self.items.back().map(|i| i.ts).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf_with(ts: &[u64]) -> OutputBuffer {
        let mut b = OutputBuffer::new();
        for &t in ts {
            b.push(t, vec![t as u8; 4]);
        }
        b
    }

    #[test]
    fn push_and_len() {
        let b = buf_with(&[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.buffered_bytes(), 12);
        assert_eq!(b.last_ts(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    #[should_panic(expected = "timestamps must increase")]
    fn non_monotone_push_panics() {
        let mut b = buf_with(&[5]);
        b.push(5, vec![]);
    }

    #[test]
    fn push_all_appends_a_batch() {
        let mut b = buf_with(&[1]);
        b.push_all([(2, vec![0; 2]), (3, vec![0; 3])]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.last_ts(), 3);
        assert_eq!(b.buffered_bytes(), 4 + 2 + 3);
    }

    #[test]
    #[should_panic(expected = "timestamps must increase")]
    fn push_all_enforces_monotonicity_across_the_batch() {
        let mut b = buf_with(&[5]);
        b.push_all([(6, vec![]), (6, vec![])]);
    }

    #[test]
    fn trim_drops_covered_prefix() {
        let mut b = buf_with(&[1, 2, 3, 4, 5]);
        b.trim(3);
        assert_eq!(b.len(), 2);
        assert_eq!(
            b.replay_after(0).iter().map(|i| i.ts).collect::<Vec<_>>(),
            vec![4, 5]
        );
        b.trim(100);
        assert!(b.is_empty());
        assert_eq!(b.buffered_bytes(), 0);
    }

    #[test]
    fn trim_is_idempotent() {
        let mut b = buf_with(&[1, 2, 3]);
        b.trim(2);
        b.trim(2);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn replay_after_filters_by_watermark() {
        let b = buf_with(&[10, 20, 30]);
        let replay = b.replay_after(15);
        assert_eq!(
            replay.iter().map(|i| i.ts).collect::<Vec<_>>(),
            vec![20, 30]
        );
        assert!(b.replay_after(30).is_empty());
    }

    #[test]
    fn cap_bounds_the_buffer() {
        let mut b = buf_with(&[1, 2, 3, 4, 5]);
        b.cap(2);
        assert_eq!(b.len(), 2);
        assert_eq!(
            b.replay_after(0).iter().map(|i| i.ts).collect::<Vec<_>>(),
            vec![4, 5]
        );
        b.cap(10); // No-op when under the cap.
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn snapshot_restore_roundtrips() {
        let b = buf_with(&[1, 2, 3]);
        let snap = b.snapshot();
        let mut restored = OutputBuffer::new();
        restored.restore(snap);
        assert_eq!(restored.len(), 3);
        assert_eq!(restored.buffered_bytes(), b.buffered_bytes());
        assert_eq!(restored.last_ts(), 3);
        // Restored buffers continue accepting newer items.
        restored.push(4, vec![0]);
        assert_eq!(restored.len(), 4);
    }
}

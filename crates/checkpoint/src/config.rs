//! Checkpointing configuration.

use std::time::Duration;

use sdg_common::error::{SdgError, SdgResult};

/// Configuration of the checkpointing subsystem.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Whether checkpointing is enabled (`false` = the "No FT" baseline of
    /// Fig. 13).
    pub enabled: bool,
    /// Interval between checkpoints of the same SE instance. The paper uses
    /// 10 s; benches sweep this (Fig. 13 top).
    pub interval: Duration,
    /// Synchronous mode: hold the state lock for the entire serialise +
    /// backup, as Naiad/SEEP do (Fig. 12 baseline). Asynchronous mode locks
    /// only for snapshot initiation and consolidation.
    pub synchronous: bool,
    /// Number of backup stores a checkpoint is partitioned across (`m` in
    /// the m-to-n pattern).
    pub backup_fanout: usize,
    /// Number of chunks a checkpoint is split into (must be ≥
    /// `backup_fanout`; chunks are distributed round-robin).
    pub chunks: usize,
    /// Serialisation thread-pool size (step B2 of Fig. 4).
    pub serialise_threads: usize,
    /// Simulated disk write bandwidth per store in bytes/second; `None`
    /// means unthrottled (RAM-disk, the Naiad-NoDisk configuration).
    pub disk_write_bps: Option<u64>,
    /// Simulated disk read bandwidth per store in bytes/second.
    pub disk_read_bps: Option<u64>,
    /// Incremental mode: serialise only dirty chunks as delta generations
    /// on top of a full base checkpoint; restore composes base + deltas.
    pub incremental: bool,
    /// Chunk-space size for dirty tracking and delta serialisation. Larger
    /// spaces give finer deltas at slightly more bookkeeping.
    pub delta_chunks: usize,
    /// Compaction threshold: when accumulated delta bytes exceed this
    /// fraction of the base checkpoint's bytes, the next checkpoint is
    /// forced full to bound the restore chain.
    pub compact_threshold: f64,
    /// Deferred output-buffer encoding (the default): producers log sent
    /// items as refcounted `Live` payloads and the wire encode happens on
    /// the checkpoint persist phase's thread pool. `false` restores the
    /// eager baseline that serialises every item on the dispatch path —
    /// kept for one release as an equivalence reference; persisted
    /// checkpoints are byte-identical either way.
    pub deferred_encode: bool,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            enabled: true,
            interval: Duration::from_secs(10),
            synchronous: false,
            backup_fanout: 2,
            chunks: 8,
            serialise_threads: 2,
            disk_write_bps: None,
            disk_read_bps: None,
            incremental: false,
            delta_chunks: 64,
            compact_threshold: 0.5,
            deferred_encode: true,
        }
    }
}

impl CheckpointConfig {
    /// A configuration with checkpointing turned off.
    pub fn disabled() -> Self {
        CheckpointConfig {
            enabled: false,
            ..Self::default()
        }
    }

    /// Starts a chained builder from the default configuration:
    ///
    /// ```
    /// use std::time::Duration;
    /// use sdg_checkpoint::config::CheckpointConfig;
    ///
    /// let cfg = CheckpointConfig::builder()
    ///     .interval(Duration::from_secs(2))
    ///     .backup_fanout(4)
    ///     .chunks(16)
    ///     .build();
    /// assert!(cfg.enabled);
    /// assert_eq!(cfg.backup_fanout, 4);
    /// ```
    pub fn builder() -> CheckpointConfigBuilder {
        CheckpointConfigBuilder {
            cfg: Self::default(),
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> SdgResult<()> {
        if !self.enabled {
            return Ok(());
        }
        if self.backup_fanout == 0 {
            return Err(SdgError::Config("backup_fanout must be ≥ 1".into()));
        }
        if self.chunks < self.backup_fanout {
            return Err(SdgError::Config(format!(
                "chunks ({}) must be ≥ backup_fanout ({})",
                self.chunks, self.backup_fanout
            )));
        }
        if self.serialise_threads == 0 {
            return Err(SdgError::Config("serialise_threads must be ≥ 1".into()));
        }
        if self.interval.is_zero() {
            return Err(SdgError::Config(
                "checkpoint interval must be positive".into(),
            ));
        }
        if self.incremental {
            if self.delta_chunks == 0 {
                return Err(SdgError::Config("delta_chunks must be ≥ 1".into()));
            }
            if !(self.compact_threshold.is_finite() && self.compact_threshold > 0.0) {
                return Err(SdgError::Config(
                    "compact_threshold must be a positive finite fraction".into(),
                ));
            }
        }
        Ok(())
    }
}

/// Chained builder for [`CheckpointConfig`] (see
/// [`CheckpointConfig::builder`]).
#[derive(Debug, Clone)]
pub struct CheckpointConfigBuilder {
    cfg: CheckpointConfig,
}

impl CheckpointConfigBuilder {
    /// Turns checkpointing on or off.
    pub fn enabled(mut self, on: bool) -> Self {
        self.cfg.enabled = on;
        self
    }

    /// Sets the per-instance checkpoint interval.
    pub fn interval(mut self, interval: Duration) -> Self {
        self.cfg.interval = interval;
        self
    }

    /// Selects synchronous (stop-the-world) mode.
    pub fn synchronous(mut self, on: bool) -> Self {
        self.cfg.synchronous = on;
        self
    }

    /// Sets the backup-store fanout (`m`).
    pub fn backup_fanout(mut self, m: usize) -> Self {
        self.cfg.backup_fanout = m;
        self
    }

    /// Sets the chunk count per checkpoint.
    pub fn chunks(mut self, n: usize) -> Self {
        self.cfg.chunks = n;
        self
    }

    /// Sets the serialisation thread-pool size.
    pub fn serialise_threads(mut self, n: usize) -> Self {
        self.cfg.serialise_threads = n;
        self
    }

    /// Sets the simulated per-store disk write bandwidth (`None` =
    /// unthrottled).
    pub fn disk_write_bps(mut self, bps: Option<u64>) -> Self {
        self.cfg.disk_write_bps = bps;
        self
    }

    /// Sets the simulated per-store disk read bandwidth (`None` =
    /// unthrottled).
    pub fn disk_read_bps(mut self, bps: Option<u64>) -> Self {
        self.cfg.disk_read_bps = bps;
        self
    }

    /// Turns incremental (delta) checkpointing on or off.
    pub fn incremental(mut self, on: bool) -> Self {
        self.cfg.incremental = on;
        self
    }

    /// Sets the dirty-tracking chunk-space size for incremental mode.
    pub fn delta_chunks(mut self, n: usize) -> Self {
        self.cfg.delta_chunks = n;
        self
    }

    /// Sets the delta-bytes/base-bytes compaction threshold.
    pub fn compact_threshold(mut self, frac: f64) -> Self {
        self.cfg.compact_threshold = frac;
        self
    }

    /// Selects deferred (`true`, default) or eager (`false`) output-buffer
    /// encoding.
    pub fn deferred_encode(mut self, on: bool) -> Self {
        self.cfg.deferred_encode = on;
        self
    }

    /// Finishes the chain. Consistency is still checked by
    /// [`CheckpointConfig::validate`] at deploy time.
    pub fn build(self) -> CheckpointConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_every_knob() {
        let cfg = CheckpointConfig::builder()
            .enabled(true)
            .interval(Duration::from_millis(250))
            .synchronous(true)
            .backup_fanout(3)
            .chunks(9)
            .serialise_threads(4)
            .disk_write_bps(Some(1_000_000))
            .disk_read_bps(Some(2_000_000))
            .build();
        assert!(cfg.enabled && cfg.synchronous);
        assert_eq!(cfg.interval, Duration::from_millis(250));
        assert_eq!(cfg.backup_fanout, 3);
        assert_eq!(cfg.chunks, 9);
        assert_eq!(cfg.serialise_threads, 4);
        assert_eq!(cfg.disk_write_bps, Some(1_000_000));
        assert_eq!(cfg.disk_read_bps, Some(2_000_000));
        cfg.validate().unwrap();
    }

    #[test]
    fn default_is_valid() {
        let cfg = CheckpointConfig::default();
        assert!(cfg.deferred_encode, "deferred encoding is the default");
        cfg.validate().unwrap();
    }

    #[test]
    fn eager_baseline_remains_selectable() {
        let cfg = CheckpointConfig::builder().deferred_encode(false).build();
        assert!(!cfg.deferred_encode);
        cfg.validate().unwrap();
    }

    #[test]
    fn disabled_skips_validation() {
        let mut c = CheckpointConfig::disabled();
        c.backup_fanout = 0;
        c.validate().unwrap();
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let c = CheckpointConfig {
            backup_fanout: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let c = CheckpointConfig {
            chunks: 1,
            backup_fanout: 2,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let c = CheckpointConfig {
            serialise_threads: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let c = CheckpointConfig {
            interval: Duration::ZERO,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let c = CheckpointConfig {
            incremental: true,
            delta_chunks: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let c = CheckpointConfig {
            incremental: true,
            compact_threshold: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn incremental_builder_knobs() {
        let cfg = CheckpointConfig::builder()
            .incremental(true)
            .delta_chunks(128)
            .compact_threshold(0.25)
            .build();
        assert!(cfg.incremental);
        assert_eq!(cfg.delta_chunks, 128);
        assert_eq!(cfg.compact_threshold, 0.25);
        cfg.validate().unwrap();
    }
}

//! Parallel m-to-n state restore (§5, "State backup and restore", Fig. 4).
//!
//! A failed SE instance is restored to `n` new (possibly partitioned)
//! instances: each of the `m` stores holding checkpoint chunks streams its
//! chunks in parallel (step R1), each chunk's entries are split `n` ways by
//! stable key hash, and `n` builder threads reconstitute the new stores
//! (step R2). Replaying upstream output buffers (step R3) is the runtime's
//! job, using the vector timestamp carried in the [`BackupSet`].

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use sdg_common::error::{SdgError, SdgResult};
use sdg_common::time::VectorTs;
use sdg_state::entry::StateEntry;
use sdg_state::store::StateStore;

use crate::backup::{decode_entries, BackupSet, BackupStore};

/// Returns the restore partition of an entry among `n` targets.
///
/// Uses the stable hash of the *decoded* key so that a key lands on the
/// same partition the runtime's hash dispatcher would route it to — this
/// is what lets a partitioned SE be restored directly onto `n` partitioned
/// instances. Falls back to hashing the encoded bytes for keys that do not
/// decode (never the case for the built-in structures).
fn partition_of(entry: &StateEntry, n: usize) -> usize {
    match sdg_common::codec::decode_from_slice::<sdg_common::value::Key>(&entry.key) {
        Ok(key) => (key.stable_hash() % n as u64) as usize,
        Err(_) => entry.chunk_of(n),
    }
}

/// Tuning knobs for [`restore_state_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RestoreOptions {
    /// Simulated per-instance reconstitution bandwidth in bytes/second —
    /// the network + deserialisation + insert capacity of one recovering
    /// node (step R2 of Fig. 4). `None` runs at host speed.
    pub rebuild_bps: Option<u64>,
}

/// Restores the state of `set` onto `n` fresh instances.
///
/// Returns `n` pairs of (store, vector): instance `i` receives the entries
/// whose key hashes to `i` modulo `n`, and every instance inherits the
/// checkpoint's vector timestamp so duplicate replayed items are filtered.
///
/// With `n == 1` the single result holds the complete state.
///
/// # Errors
///
/// Fails when `n` is zero, a chunk is missing or corrupt, or an entry does
/// not decode into the checkpoint's structure type.
pub fn restore_state(
    set: &BackupSet,
    stores: &[Arc<BackupStore>],
    n: usize,
) -> SdgResult<Vec<(StateStore, VectorTs)>> {
    restore_state_with(set, stores, n, RestoreOptions::default())
}

/// [`restore_state_with`] with an optional observability probe: the whole
/// fetch + rebuild span is recorded into `restore_ns`.
pub fn restore_state_observed(
    set: &BackupSet,
    stores: &[Arc<BackupStore>],
    n: usize,
    options: RestoreOptions,
    obs: Option<&sdg_common::obs::CheckpointInstruments>,
) -> SdgResult<Vec<(StateStore, VectorTs)>> {
    let t0 = std::time::Instant::now();
    let result = restore_state_with(set, stores, n, options);
    if let Some(obs) = obs {
        if result.is_ok() {
            obs.restore_ns.record_duration(t0.elapsed());
        }
    }
    result
}

/// [`restore_state`] with explicit [`RestoreOptions`].
pub fn restore_state_with(
    set: &BackupSet,
    stores: &[Arc<BackupStore>],
    n: usize,
    options: RestoreOptions,
) -> SdgResult<Vec<(StateStore, VectorTs)>> {
    restore_chunks(
        &set.chunk_locations,
        set.state_type,
        &set.vector,
        stores,
        n,
        options,
    )
}

/// Restores an incremental chain — one base generation followed by its
/// delta generations, oldest first — onto `n` fresh instances.
///
/// Each chunk is written whole by whichever generation last touched it, so
/// composition is newest-wins per chunk id: later sets shadow earlier
/// ones. The vector timestamps come from the newest set (the chain's
/// cut). A single-element chain of a legacy full checkpoint behaves
/// exactly like [`restore_state_with`].
///
/// # Errors
///
/// Fails when the chain is empty, does not start with a base generation,
/// mixes instances/structure types/chunk spaces, or is out of order.
pub fn restore_chain(
    sets: &[BackupSet],
    stores: &[Arc<BackupStore>],
    n: usize,
    options: RestoreOptions,
) -> SdgResult<Vec<(StateStore, VectorTs)>> {
    let first = sets
        .first()
        .ok_or_else(|| SdgError::Recovery("empty restore chain".into()))?;
    if !first.is_base() {
        return Err(SdgError::Recovery(
            "restore chain must start with a base generation".into(),
        ));
    }
    let newest = sets.last().expect("non-empty");
    let mut winner: HashMap<u32, (usize, crate::backup::ChunkKey)> = HashMap::new();
    let mut prev_seq = None;
    for set in sets {
        if set.instance != first.instance || set.state_type != first.state_type {
            return Err(SdgError::Recovery(
                "restore chain mixes instances or structure types".into(),
            ));
        }
        if let (Some(d), Some(f)) = (&set.delta, &first.delta) {
            if d.chunk_space != f.chunk_space {
                return Err(SdgError::Recovery(
                    "restore chain mixes delta chunk spaces".into(),
                ));
            }
        }
        if prev_seq.is_some_and(|p| set.seq <= p) {
            return Err(SdgError::Recovery("restore chain out of order".into()));
        }
        prev_seq = Some(set.seq);
        for (store_idx, key) in &set.chunk_locations {
            winner.insert(key.chunk, (*store_idx, *key));
        }
    }
    let chunk_locations: Vec<(usize, crate::backup::ChunkKey)> = winner.into_values().collect();
    restore_chunks(
        &chunk_locations,
        newest.state_type,
        &newest.vector,
        stores,
        n,
        options,
    )
}

/// Result of [`restore_chain_resilient`]: the restored partitions plus
/// which generation of the chain actually supplied them.
#[derive(Debug)]
pub struct ChainRestore {
    /// The `n` restored (store, vector) pairs.
    pub parts: Vec<(StateStore, VectorTs)>,
    /// Index into the original chain of the newest generation restored
    /// (`sets.len() - 1` when nothing had to be dropped). Replay must use
    /// `sets[used]`'s vector and output buffers, not the newest set's.
    pub used: usize,
    /// The data-loss errors that forced each fallback, newest first.
    pub fallback_errors: Vec<SdgError>,
}

/// `true` for errors that mean a persisted chunk is gone or unreadable —
/// the class a chain fallback can route around. Structural chain errors
/// (out of order, mixed instances, …) recur at every prefix and are not
/// worth falling back over.
fn is_data_loss(e: &SdgError) -> bool {
    match e {
        SdgError::Io { .. } | SdgError::Codec(_) => true,
        SdgError::Recovery(m) => m.starts_with("chunk "),
        _ => false,
    }
}

/// [`restore_chain`] hardened against corrupt or missing chunks: when
/// the full chain fails with a data-loss error, the newest generation is
/// dropped and the remaining prefix retried, down to the bare base. The
/// restore therefore lands on the newest *intact* generation instead of
/// erroring, at the cost of replaying a little more upstream buffer.
///
/// # Errors
///
/// Fails when the chain is structurally invalid, or when every prefix —
/// including the base generation alone — has lost a chunk.
pub fn restore_chain_resilient(
    sets: &[BackupSet],
    stores: &[Arc<BackupStore>],
    n: usize,
    options: RestoreOptions,
) -> SdgResult<ChainRestore> {
    let mut fallback_errors = Vec::new();
    for end in (1..=sets.len()).rev() {
        match restore_chain(&sets[..end], stores, n, options) {
            Ok(parts) => {
                return Ok(ChainRestore {
                    parts,
                    used: end - 1,
                    fallback_errors,
                })
            }
            Err(e) if is_data_loss(&e) && end > 1 => fallback_errors.push(e),
            Err(e) => return Err(e),
        }
    }
    Err(SdgError::Recovery("empty restore chain".into()))
}

/// [`restore_chain_resilient`] with an optional observability probe.
pub fn restore_chain_resilient_observed(
    sets: &[BackupSet],
    stores: &[Arc<BackupStore>],
    n: usize,
    options: RestoreOptions,
    obs: Option<&sdg_common::obs::CheckpointInstruments>,
) -> SdgResult<ChainRestore> {
    let t0 = std::time::Instant::now();
    let result = restore_chain_resilient(sets, stores, n, options);
    if let Some(obs) = obs {
        if result.is_ok() {
            obs.restore_ns.record_duration(t0.elapsed());
        }
    }
    result
}

/// [`restore_chain`] with an optional observability probe.
pub fn restore_chain_observed(
    sets: &[BackupSet],
    stores: &[Arc<BackupStore>],
    n: usize,
    options: RestoreOptions,
    obs: Option<&sdg_common::obs::CheckpointInstruments>,
) -> SdgResult<Vec<(StateStore, VectorTs)>> {
    let t0 = std::time::Instant::now();
    let result = restore_chain(sets, stores, n, options);
    if let Some(obs) = obs {
        if result.is_ok() {
            obs.restore_ns.record_duration(t0.elapsed());
        }
    }
    result
}

fn restore_chunks(
    chunk_locations: &[(usize, crate::backup::ChunkKey)],
    state_type: sdg_state::store::StateType,
    vector: &VectorTs,
    stores: &[Arc<BackupStore>],
    n: usize,
    options: RestoreOptions,
) -> SdgResult<Vec<(StateStore, VectorTs)>> {
    if n == 0 {
        return Err(SdgError::Recovery(
            "cannot restore to zero instances".into(),
        ));
    }

    // Group chunk keys by their holding store so each store streams its
    // chunks independently (one reader thread per disk — step R1).
    let mut by_store: HashMap<usize, Vec<crate::backup::ChunkKey>> = HashMap::new();
    for (store_idx, key) in chunk_locations {
        if *store_idx >= stores.len() {
            return Err(SdgError::Recovery(format!(
                "backup set references store {store_idx} but only {} are available",
                stores.len()
            )));
        }
        by_store.entry(*store_idx).or_default().push(*key);
    }

    // Each target partition accumulates its entries behind a mutex; reader
    // threads push into them as chunks arrive.
    let partitions: Vec<Mutex<Vec<StateEntry>>> = (0..n).map(|_| Mutex::new(Vec::new())).collect();
    let errors: Mutex<Vec<SdgError>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for (store_idx, keys) in &by_store {
            let store = &stores[*store_idx];
            let partitions = &partitions;
            let errors = &errors;
            scope.spawn(move || {
                for key in keys {
                    match store.read_chunk(*key).and_then(|b| decode_entries(&b)) {
                        Ok(entries) => {
                            for entry in entries {
                                let idx = partition_of(&entry, n);
                                partitions[idx].lock().push(entry);
                            }
                        }
                        Err(e) => errors.lock().push(e),
                    }
                }
            });
        }
    });
    if let Some(e) = errors.into_inner().into_iter().next() {
        return Err(e);
    }

    // Step R2: n builders reconstitute the stores in parallel. Each
    // builder models one recovering node's reconstitution bandwidth.
    let results: Vec<Mutex<Option<SdgResult<StateStore>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for (idx, part) in partitions.iter().enumerate() {
            let results = &results;
            scope.spawn(move || {
                let entries = std::mem::take(&mut *part.lock());
                if let Some(bps) = options.rebuild_bps {
                    if bps > 0 {
                        let bytes: usize = entries.iter().map(|e| e.size()).sum();
                        std::thread::sleep(std::time::Duration::from_secs_f64(
                            bytes as f64 / bps as f64,
                        ));
                    }
                }
                let mut store = StateStore::new(state_type);
                let r = store.import_entries(&entries).map(|()| store);
                *results[idx].lock() = Some(r);
            });
        }
    });

    let mut out = Vec::with_capacity(n);
    for slot in results {
        let store = slot
            .into_inner()
            .unwrap_or_else(|| Err(SdgError::Recovery("restore builder missing".into())))?;
        out.push((store, vector.clone()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::StateCell;
    use crate::config::CheckpointConfig;
    use crate::coordinator::take_checkpoint;
    use sdg_common::ids::{EdgeId, InstanceId, TaskId};
    use sdg_common::value::{Key, Value};
    use sdg_state::store::StateType;

    fn instance() -> InstanceId {
        InstanceId::new(TaskId(0), 0)
    }

    fn stores(m: usize) -> Vec<Arc<BackupStore>> {
        (0..m).map(|_| Arc::new(BackupStore::in_memory())).collect()
    }

    fn table_cell(n: i64) -> StateCell {
        let cell = StateCell::new(StateType::Table);
        for i in 0..n {
            cell.apply(EdgeId(0), (i + 1) as u64, |s| {
                s.as_table().unwrap().put(Key::Int(i), Value::Int(i * 3));
            });
        }
        cell
    }

    #[test]
    fn one_to_one_restore_reproduces_state() {
        let cell = table_cell(200);
        let stores = stores(1);
        let set = take_checkpoint(
            &cell,
            instance(),
            1,
            Vec::new,
            &stores,
            &CheckpointConfig::default(),
        )
        .unwrap();
        let restored = restore_state(&set, &stores, 1).unwrap();
        assert_eq!(restored.len(), 1);
        let (mut store, vector) = restored.into_iter().next().unwrap();
        let table = store.as_table().unwrap();
        assert_eq!(table.len(), 200);
        for i in 0..200 {
            assert_eq!(table.get(&Key::Int(i)), Some(Value::Int(i * 3)));
        }
        assert_eq!(vector.get(EdgeId(0)), 200);
    }

    #[test]
    fn two_to_two_restore_partitions_disjointly() {
        let cell = table_cell(300);
        let stores = stores(2);
        let set = take_checkpoint(
            &cell,
            instance(),
            1,
            Vec::new,
            &stores,
            &CheckpointConfig::default(),
        )
        .unwrap();
        let restored = restore_state(&set, &stores, 2).unwrap();
        assert_eq!(restored.len(), 2);
        let mut total = 0;
        for (i, (mut store, _)) in restored.into_iter().enumerate() {
            let table = store.as_table().unwrap();
            total += table.len();
            // Every key must belong to partition i.
            table.for_each(|k, _| {
                assert_eq!((k.stable_hash() % 2) as usize, i);
            });
        }
        assert_eq!(total, 300);
    }

    #[test]
    fn matrix_restore_roundtrips() {
        let cell = StateCell::new(StateType::Matrix);
        for i in 0..50i64 {
            cell.apply(EdgeId(1), (i + 1) as u64, |s| {
                s.as_matrix().unwrap().set(i, i % 5, i as f64);
            });
        }
        let stores = stores(2);
        let set = take_checkpoint(
            &cell,
            instance(),
            1,
            Vec::new,
            &stores,
            &CheckpointConfig::default(),
        )
        .unwrap();
        let restored = restore_state(&set, &stores, 3).unwrap();
        let mut nnz = 0;
        for (mut store, _) in restored {
            nnz += store.as_matrix().unwrap().nnz();
        }
        assert_eq!(nnz, 50);
    }

    #[test]
    fn writes_during_checkpoint_are_not_in_the_backup() {
        let cell = table_cell(10);
        let stores = stores(1);
        // Take the snapshot, then write more before the serialiser would
        // finish. Because take_checkpoint is synchronous in this test we
        // emulate it by checkpointing and then writing, then restoring.
        let set = take_checkpoint(
            &cell,
            instance(),
            1,
            Vec::new,
            &stores,
            &CheckpointConfig::default(),
        )
        .unwrap();
        cell.apply(EdgeId(0), 11, |s| {
            s.as_table().unwrap().put(Key::Int(999), Value::Int(1));
        });
        let restored = restore_state(&set, &stores, 1).unwrap();
        let (mut store, vector) = restored.into_iter().next().unwrap();
        assert_eq!(store.as_table().unwrap().get(&Key::Int(999)), None);
        // The vector only covers ts ≤ 10, so item 11 will be replayed and
        // accepted by a recovered cell.
        let recovered = StateCell::from_store(store, vector);
        assert!(recovered
            .apply(EdgeId(0), 11, |s| {
                s.as_table().unwrap().put(Key::Int(999), Value::Int(1));
            })
            .is_some());
        // While item 10 is a duplicate and is filtered.
        assert!(recovered.apply(EdgeId(0), 10, |_| ()).is_none());
    }

    #[test]
    fn chain_restore_composes_base_and_deltas() {
        use sdg_state::partition::PartitionDim;
        let cell = StateCell::new_striped(StateType::Table, 4, PartitionDim::Row, Some(32));
        for i in 0..300i64 {
            let key = Key::Int(i);
            cell.apply_routed(EdgeId(0), (i + 1) as u64, Some(key.stable_hash()), |s| {
                s.as_table().unwrap().put(key.clone(), Value::Int(i));
            });
        }
        let stores = stores(2);
        let cfg = CheckpointConfig {
            incremental: true,
            delta_chunks: 32,
            ..Default::default()
        };
        let base = take_checkpoint(&cell, instance(), 1, Vec::new, &stores, &cfg).unwrap();
        // Overwrite a few keys, add one, and checkpoint a delta.
        for i in [5i64, 17, 300] {
            let key = Key::Int(i);
            cell.apply_routed(EdgeId(0), 400 + i as u64, Some(key.stable_hash()), |s| {
                s.as_table().unwrap().put(key.clone(), Value::Int(i * 100));
            });
        }
        let d1 = take_checkpoint(&cell, instance(), 2, Vec::new, &stores, &cfg).unwrap();
        assert!(!d1.delta.as_ref().unwrap().base);
        // Another round, including an overwrite of an already-delta'd key.
        for i in [5i64, 44] {
            let key = Key::Int(i);
            cell.apply_routed(EdgeId(0), 800 + i as u64, Some(key.stable_hash()), |s| {
                s.as_table().unwrap().put(key.clone(), Value::Int(i * 1000));
            });
        }
        let d2 = take_checkpoint(&cell, instance(), 3, Vec::new, &stores, &cfg).unwrap();

        let chain = vec![base, d1, d2];
        let restored = restore_chain(&chain, &stores, 1, RestoreOptions::default()).unwrap();
        let (mut store, vector) = restored.into_iter().next().unwrap();
        let table = store.as_table().unwrap();
        assert_eq!(table.len(), 301);
        assert_eq!(table.get(&Key::Int(5)), Some(Value::Int(5000)));
        assert_eq!(table.get(&Key::Int(44)), Some(Value::Int(44000)));
        assert_eq!(table.get(&Key::Int(17)), Some(Value::Int(1700)));
        assert_eq!(table.get(&Key::Int(300)), Some(Value::Int(30000)));
        assert_eq!(table.get(&Key::Int(200)), Some(Value::Int(200)));
        // The vector is the newest set's (min across stripes).
        assert_eq!(vector, chain[2].vector);
    }

    #[test]
    fn chain_restore_sees_deletions() {
        use sdg_state::partition::PartitionDim;
        let cell = StateCell::new_striped(StateType::Table, 2, PartitionDim::Row, Some(16));
        for i in 0..50i64 {
            let key = Key::Int(i);
            cell.apply_routed(EdgeId(0), (i + 1) as u64, Some(key.stable_hash()), |s| {
                s.as_table().unwrap().put(key.clone(), Value::Int(i));
            });
        }
        let stores = stores(1);
        let cfg = CheckpointConfig {
            incremental: true,
            delta_chunks: 16,
            ..Default::default()
        };
        let base = take_checkpoint(&cell, instance(), 1, Vec::new, &stores, &cfg).unwrap();
        let key = Key::Int(13);
        cell.apply_routed(EdgeId(0), 60, Some(key.stable_hash()), |s| {
            s.as_table().unwrap().remove(&key);
        });
        let d1 = take_checkpoint(&cell, instance(), 2, Vec::new, &stores, &cfg).unwrap();
        let restored = restore_chain(&[base, d1], &stores, 1, RestoreOptions::default()).unwrap();
        let (mut store, _) = restored.into_iter().next().unwrap();
        let table = store.as_table().unwrap();
        assert_eq!(table.len(), 49);
        assert_eq!(table.get(&Key::Int(13)), None);
    }

    /// Builds a base + two deltas incremental chain over one store,
    /// mirroring `chain_restore_composes_base_and_deltas`.
    fn corruptible_chain(stores: &[Arc<BackupStore>]) -> Vec<BackupSet> {
        use sdg_state::partition::PartitionDim;
        let cell = StateCell::new_striped(StateType::Table, 4, PartitionDim::Row, Some(32));
        for i in 0..300i64 {
            let key = Key::Int(i);
            cell.apply_routed(EdgeId(0), (i + 1) as u64, Some(key.stable_hash()), |s| {
                s.as_table().unwrap().put(key.clone(), Value::Int(i));
            });
        }
        let cfg = CheckpointConfig {
            incremental: true,
            delta_chunks: 32,
            ..Default::default()
        };
        let base = take_checkpoint(&cell, instance(), 1, Vec::new, stores, &cfg).unwrap();
        for i in [5i64, 17] {
            let key = Key::Int(i);
            cell.apply_routed(EdgeId(0), 400 + i as u64, Some(key.stable_hash()), |s| {
                s.as_table().unwrap().put(key.clone(), Value::Int(i * 100));
            });
        }
        let d1 = take_checkpoint(&cell, instance(), 2, Vec::new, stores, &cfg).unwrap();
        for i in [5i64, 44] {
            let key = Key::Int(i);
            cell.apply_routed(EdgeId(0), 800 + i as u64, Some(key.stable_hash()), |s| {
                s.as_table().unwrap().put(key.clone(), Value::Int(i * 1000));
            });
        }
        let d2 = take_checkpoint(&cell, instance(), 3, Vec::new, stores, &cfg).unwrap();
        vec![base, d1, d2]
    }

    /// All (key, value) pairs of a restored single-partition table,
    /// sorted, for byte-identity comparisons.
    fn table_contents(parts: Vec<(StateStore, VectorTs)>) -> Vec<(Key, Value)> {
        let (mut store, _) = parts.into_iter().next().unwrap();
        let mut out = Vec::new();
        store.as_table().unwrap().for_each(|k, v| {
            out.push((k.clone(), v.clone()));
        });
        out.sort_by_key(|(k, _)| k.stable_hash());
        out
    }

    #[test]
    fn intact_chain_restores_newest_generation_byte_identically() {
        let stores = stores(1);
        let chain = corruptible_chain(&stores);
        let plain = restore_chain(&chain, &stores, 1, RestoreOptions::default()).unwrap();
        let resilient =
            restore_chain_resilient(&chain, &stores, 1, RestoreOptions::default()).unwrap();
        assert_eq!(resilient.used, 2);
        assert!(resilient.fallback_errors.is_empty());
        assert_eq!(table_contents(resilient.parts), table_contents(plain));
    }

    #[test]
    fn truncated_newest_delta_falls_back_to_prior_generation() {
        let stores = stores(1);
        let chain = corruptible_chain(&stores);
        for (_, key) in &chain[2].chunk_locations {
            stores[0].truncate_chunk(*key).unwrap();
        }
        let r = restore_chain_resilient(&chain, &stores, 1, RestoreOptions::default()).unwrap();
        assert_eq!(r.used, 1, "restore must land on the intact d1 generation");
        assert!(!r.fallback_errors.is_empty());
        let expected = restore_chain(&chain[..2], &stores, 1, RestoreOptions::default()).unwrap();
        assert_eq!(table_contents(r.parts), table_contents(expected));
    }

    #[test]
    fn bit_flipped_newest_delta_falls_back_to_prior_generation() {
        let stores = stores(1);
        let chain = corruptible_chain(&stores);
        let (_, key) = chain[2].chunk_locations[0];
        stores[0].flip_chunk_bit(key).unwrap();
        let r = restore_chain_resilient(&chain, &stores, 1, RestoreOptions::default()).unwrap();
        assert!(r.used < 2);
        assert!(r
            .fallback_errors
            .iter()
            .any(|e| e.to_string().contains("checksum mismatch")));
        let expected =
            restore_chain(&chain[..r.used + 1], &stores, 1, RestoreOptions::default()).unwrap();
        assert_eq!(table_contents(r.parts), table_contents(expected));
    }

    #[test]
    fn missing_newest_delta_falls_back_to_prior_generation() {
        let stores = stores(1);
        let chain = corruptible_chain(&stores);
        for (_, key) in &chain[2].chunk_locations {
            stores[0].delete_chunk(*key).unwrap();
        }
        let r = restore_chain_resilient(&chain, &stores, 1, RestoreOptions::default()).unwrap();
        assert_eq!(r.used, 1);
        let expected = restore_chain(&chain[..2], &stores, 1, RestoreOptions::default()).unwrap();
        assert_eq!(table_contents(r.parts), table_contents(expected));
    }

    #[test]
    fn fully_corrupt_chain_is_an_error_not_a_panic() {
        let stores = stores(1);
        let chain = corruptible_chain(&stores);
        for set in &chain {
            for (_, key) in &set.chunk_locations {
                let _ = stores[0].truncate_chunk(*key);
            }
        }
        assert!(restore_chain_resilient(&chain, &stores, 1, RestoreOptions::default()).is_err());
    }

    #[test]
    fn invalid_chains_are_rejected() {
        let cell = table_cell(20);
        let stores = stores(1);
        let cfg = CheckpointConfig::default();
        let s1 = take_checkpoint(&cell, instance(), 1, Vec::new, &stores, &cfg).unwrap();
        let s2 = take_checkpoint(&cell, instance(), 2, Vec::new, &stores, &cfg).unwrap();
        // Empty chain.
        assert!(restore_chain(&[], &stores, 1, RestoreOptions::default()).is_err());
        // Out of order.
        assert!(restore_chain(
            &[s2.clone(), s1.clone()],
            &stores,
            1,
            RestoreOptions::default()
        )
        .is_err());
        // A chain starting with a non-base delta.
        let mut fake_delta = s2;
        fake_delta.delta = Some(crate::backup::DeltaMeta {
            base: false,
            chunk_space: 8,
        });
        assert!(restore_chain(&[fake_delta], &stores, 1, RestoreOptions::default()).is_err());
    }

    #[test]
    fn restore_to_zero_instances_is_rejected() {
        let cell = table_cell(1);
        let stores = stores(1);
        let set = take_checkpoint(
            &cell,
            instance(),
            1,
            Vec::new,
            &stores,
            &CheckpointConfig::default(),
        )
        .unwrap();
        assert!(restore_state(&set, &stores, 0).is_err());
    }

    #[test]
    fn missing_store_is_an_error() {
        let cell = table_cell(5);
        let stores2 = stores(2);
        let set = take_checkpoint(
            &cell,
            instance(),
            1,
            Vec::new,
            &stores2,
            &CheckpointConfig::default(),
        )
        .unwrap();
        // Present only one of the two stores at restore time.
        let r = restore_state(&set, &stores2[..1], 1);
        assert!(r.is_err());
    }
}

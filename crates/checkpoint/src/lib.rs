//! Failure recovery for SDGs (§5 of the paper).
//!
//! The mechanism combines **asynchronous local checkpoints** with **message
//! replay**, avoiding both global checkpoint coordination and global
//! rollback:
//!
//! 1. each node periodically checkpoints its local SE instances and output
//!    buffers ([`coordinator`]); checkpoint initiation is O(1) thanks to
//!    the dirty-state support in `sdg-state` — processing continues on the
//!    overlay while a background thread serialises the snapshot;
//! 2. checkpoints embed a vector timestamp of the last item applied from
//!    each input dataflow; upstream nodes trim their output buffers below
//!    all downstream checkpoints ([`buffer`]);
//! 3. checkpoints are hash-partitioned into chunks and streamed to `m`
//!    backup stores round-robin; a failed instance is restored to `n` new
//!    instances in parallel, the *m-to-n* pattern of Fig. 4 ([`backup`],
//!    [`recovery`]);
//! 4. after restoring state, the node reprocesses items replayed from
//!    upstream output buffers; downstream nodes discard duplicates by
//!    timestamp.
//!
//! A synchronous ("stop-the-world") mode is also provided so the benchmark
//! harness can reproduce the comparison of Fig. 12.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backup;
pub mod buffer;
pub mod cell;
pub mod config;
pub mod coordinator;
pub mod recovery;

pub use backup::{BackupSet, BackupStore, ChunkKey, DeltaMeta, StoreFaultSpec};
pub use buffer::{BufferedItem, BufferedPayload, OutputBuffer};
pub use cell::StateCell;
pub use config::CheckpointConfig;
pub use coordinator::{take_checkpoint, take_checkpoint_with, CheckpointOptions};
pub use recovery::{restore_chain, restore_state, restore_state_with, RestoreOptions};

//! The checkpoint protocol (§5, "State checkpointing").
//!
//! Asynchronous mode follows the paper's five steps:
//!
//! 1. under a short lock: flag the SE dirty (O(1) snapshot), copy the
//!    vector timestamp and capture the instance's output buffers;
//! 2. processing resumes immediately against the dirty overlay;
//! 3. off the processing path, a serialisation thread pool encodes the
//!    snapshot into hash-partitioned chunks (Fig. 4 step B1–B2);
//! 4. chunks stream round-robin to the `m` backup stores (step B3);
//! 5. under a short lock: consolidate the dirty overlay into the base.
//!
//! Synchronous mode holds the lock for the entire procedure — the
//! "stop-the-world" behaviour of Naiad and SEEP that Fig. 12 compares
//! against.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use sdg_common::error::{SdgError, SdgResult};
use sdg_common::ids::{EdgeId, InstanceId};
use sdg_common::obs::CheckpointInstruments;
use sdg_state::entry::partition_entries;

use crate::backup::{encode_entries, BackupSet, BackupStore, ChunkKey};
use crate::buffer::BufferedItem;
use crate::cell::StateCell;
use crate::config::CheckpointConfig;

/// Takes one checkpoint of `cell`, writing chunks to `stores`.
///
/// `capture_outputs` is invoked inside the initiation lock and must return
/// the instance's output buffers (they become part of the checkpoint so a
/// restored node can re-send downstream).
///
/// Returns the [`BackupSet`] describing where everything landed.
///
/// # Errors
///
/// Fails if a checkpoint is already in progress on the cell, if `stores`
/// is empty, or if a chunk write fails.
pub fn take_checkpoint(
    cell: &StateCell,
    instance: InstanceId,
    seq: u64,
    capture_outputs: impl FnOnce() -> Vec<(EdgeId, Vec<BufferedItem>)>,
    stores: &[Arc<BackupStore>],
    cfg: &CheckpointConfig,
) -> SdgResult<BackupSet> {
    take_checkpoint_observed(cell, instance, seq, capture_outputs, stores, cfg, None)
}

/// [`take_checkpoint`] with an optional observability probe.
///
/// When `obs` is given, the protocol's phase timings land in its
/// histograms — `snapshot_ns` (lock-held initiation), `persist_ns`
/// (off-path serialise + backup), `consolidate_ns` (lock-held overlay
/// fold), or `sync_ns` (the whole stop-the-world span in synchronous
/// mode) — and `taken`/`failed`/`bytes` are counted.
pub fn take_checkpoint_observed(
    cell: &StateCell,
    instance: InstanceId,
    seq: u64,
    capture_outputs: impl FnOnce() -> Vec<(EdgeId, Vec<BufferedItem>)>,
    stores: &[Arc<BackupStore>],
    cfg: &CheckpointConfig,
    obs: Option<&CheckpointInstruments>,
) -> SdgResult<BackupSet> {
    let result = take_checkpoint_inner(cell, instance, seq, capture_outputs, stores, cfg, obs);
    if let Some(obs) = obs {
        match &result {
            Ok(set) => {
                obs.taken.inc();
                obs.bytes.add(set.state_bytes as u64);
            }
            Err(_) => obs.failed.inc(),
        }
    }
    result
}

#[allow(clippy::too_many_arguments)]
fn take_checkpoint_inner(
    cell: &StateCell,
    instance: InstanceId,
    seq: u64,
    capture_outputs: impl FnOnce() -> Vec<(EdgeId, Vec<BufferedItem>)>,
    stores: &[Arc<BackupStore>],
    cfg: &CheckpointConfig,
    obs: Option<&CheckpointInstruments>,
) -> SdgResult<BackupSet> {
    cfg.validate()?;
    if stores.is_empty() {
        return Err(SdgError::Recovery("no backup stores configured".into()));
    }
    let fanout = cfg.backup_fanout.min(stores.len());

    if cfg.synchronous {
        let t0 = Instant::now();
        let result = take_sync(cell, instance, seq, capture_outputs, stores, fanout, cfg);
        if let Some(obs) = obs {
            obs.sync_ns.record_duration(t0.elapsed());
        }
        return result;
    }

    // Step 1: O(1) snapshot under the lock; processing resumes on the
    // dirty overlay as soon as the lock drops.
    let t0 = Instant::now();
    let (snapshot, vector, out_buffers) = cell.with(|inner| {
        let snapshot = inner.store.begin_checkpoint()?;
        Ok::<_, SdgError>((snapshot, inner.vector.clone(), capture_outputs()))
    })?;
    if let Some(obs) = obs {
        obs.snapshot_ns.record_duration(t0.elapsed());
    }
    let state_type = snapshot.state_type();

    // Steps 2–4 run off the processing path.
    let t1 = Instant::now();
    let entries = snapshot.to_entries();
    let chunks = partition_entries(entries, cfg.chunks);
    let result = write_chunks(
        &chunks,
        instance,
        seq,
        stores,
        fanout,
        cfg.serialise_threads,
    );
    if let Some(obs) = obs {
        obs.persist_ns.record_duration(t1.elapsed());
    }

    // Step 5: consolidate even if a write failed, so the cell stays usable.
    let t2 = Instant::now();
    cell.with(|inner| inner.store.consolidate())?;
    if let Some(obs) = obs {
        obs.consolidate_ns.record_duration(t2.elapsed());
    }
    let (chunk_locations, state_bytes) = result?;

    Ok(BackupSet {
        instance,
        seq,
        state_type,
        vector,
        chunk_locations,
        out_buffers,
        state_bytes,
    })
}

fn take_sync(
    cell: &StateCell,
    instance: InstanceId,
    seq: u64,
    capture_outputs: impl FnOnce() -> Vec<(EdgeId, Vec<BufferedItem>)>,
    stores: &[Arc<BackupStore>],
    fanout: usize,
    cfg: &CheckpointConfig,
) -> SdgResult<BackupSet> {
    // The entire export + serialise + write happens under the cell lock:
    // every processing thread blocks for the duration.
    cell.with(|inner| {
        let vector = inner.vector.clone();
        let out_buffers = capture_outputs();
        let state_type = inner.store.state_type();
        let entries = inner.store.export_entries();
        let chunks = partition_entries(entries, cfg.chunks);
        let (chunk_locations, state_bytes) = write_chunks(
            &chunks,
            instance,
            seq,
            stores,
            fanout,
            cfg.serialise_threads,
        )?;
        Ok(BackupSet {
            instance,
            seq,
            state_type,
            vector,
            chunk_locations,
            out_buffers,
            state_bytes,
        })
    })
}

/// Serialises and writes chunks in parallel (Fig. 4 steps B1–B3).
fn write_chunks(
    chunks: &[Vec<sdg_state::entry::StateEntry>],
    instance: InstanceId,
    seq: u64,
    stores: &[Arc<BackupStore>],
    fanout: usize,
    threads: usize,
) -> SdgResult<(Vec<(usize, ChunkKey)>, usize)> {
    let next = AtomicUsize::new(0);
    let results: Vec<parking_lot::Mutex<Option<SdgResult<usize>>>> = (0..chunks.len())
        .map(|_| parking_lot::Mutex::new(None))
        .collect();

    std::thread::scope(|scope| {
        for _ in 0..threads.max(1).min(chunks.len().max(1)) {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= chunks.len() {
                    break;
                }
                let bytes = encode_entries(&chunks[idx]);
                let len = bytes.len();
                let key = ChunkKey {
                    instance,
                    seq,
                    chunk: idx as u32,
                };
                let store = &stores[idx % fanout];
                let r = store.write_chunk(key, bytes).map(|()| len);
                *results[idx].lock() = Some(r);
            });
        }
    });

    let mut locations = Vec::with_capacity(chunks.len());
    let mut total = 0usize;
    for (idx, slot) in results.into_iter().enumerate() {
        let r = slot
            .into_inner()
            .unwrap_or_else(|| Err(SdgError::Recovery("chunk write skipped".into())))?;
        total += r;
        locations.push((
            idx % fanout,
            ChunkKey {
                instance,
                seq,
                chunk: idx as u32,
            },
        ));
    }
    Ok((locations, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdg_common::ids::TaskId;
    use sdg_common::value::{Key, Value};
    use sdg_state::store::StateType;

    fn instance() -> InstanceId {
        InstanceId::new(TaskId(0), 0)
    }

    fn populated_cell(n: i64) -> StateCell {
        let cell = StateCell::new(StateType::Table);
        for i in 0..n {
            cell.apply(EdgeId(0), (i + 1) as u64, |s| {
                s.as_table().unwrap().put(Key::Int(i), Value::Int(i * 2));
            });
        }
        cell
    }

    fn stores(m: usize) -> Vec<Arc<BackupStore>> {
        (0..m).map(|_| Arc::new(BackupStore::in_memory())).collect()
    }

    #[test]
    fn checkpoint_records_chunks_and_vector() {
        let cell = populated_cell(100);
        let stores = stores(2);
        let cfg = CheckpointConfig::default();
        let set = take_checkpoint(&cell, instance(), 1, Vec::new, &stores, &cfg).unwrap();
        assert_eq!(set.seq, 1);
        assert_eq!(set.chunk_locations.len(), cfg.chunks);
        assert_eq!(set.vector.get(EdgeId(0)), 100);
        assert!(set.state_bytes > 0);
        // Chunks alternate between the two stores.
        assert!(set.chunk_locations.iter().any(|(s, _)| *s == 0));
        assert!(set.chunk_locations.iter().any(|(s, _)| *s == 1));
        // The cell is consolidated and writable again.
        cell.with(|inner| assert!(!inner.store.is_checkpointing()));
        let set2 = take_checkpoint(&cell, instance(), 2, Vec::new, &stores, &cfg).unwrap();
        assert_eq!(set2.seq, 2);
    }

    #[test]
    fn sync_mode_produces_equivalent_backup() {
        let cell = populated_cell(50);
        let stores = stores(2);
        let mut cfg = CheckpointConfig::default();
        let async_set = take_checkpoint(&cell, instance(), 1, Vec::new, &stores, &cfg).unwrap();
        cfg.synchronous = true;
        let sync_set = take_checkpoint(&cell, instance(), 2, Vec::new, &stores, &cfg).unwrap();
        assert_eq!(async_set.state_bytes, sync_set.state_bytes);
        assert_eq!(async_set.vector, sync_set.vector);
    }

    #[test]
    fn output_buffers_are_captured() {
        let cell = populated_cell(1);
        let stores = stores(1);
        let cfg = CheckpointConfig::default();
        let outs = vec![(
            EdgeId(7),
            vec![BufferedItem {
                ts: 3,
                bytes: vec![1, 2],
            }],
        )];
        let set = take_checkpoint(&cell, instance(), 1, move || outs, &stores, &cfg).unwrap();
        assert_eq!(set.out_buffers.len(), 1);
        assert_eq!(set.out_buffers[0].0, EdgeId(7));
        assert_eq!(set.out_buffers[0].1[0].ts, 3);
    }

    #[test]
    fn empty_store_checkpoints_cleanly() {
        let cell = StateCell::new(StateType::Matrix);
        let stores = stores(1);
        let set = take_checkpoint(
            &cell,
            instance(),
            1,
            Vec::new,
            &stores,
            &CheckpointConfig::default(),
        )
        .unwrap();
        assert_eq!(
            set.state_bytes as u64,
            set.chunk_locations
                .iter()
                .map(|(s, k)| stores[*s].read_chunk(*k).unwrap().len() as u64)
                .sum::<u64>()
        );
    }

    #[test]
    fn observed_checkpoint_records_phase_timings() {
        let cell = populated_cell(200);
        let stores = stores(2);
        let obs = CheckpointInstruments::default();

        // Async mode fills the three async-phase histograms.
        take_checkpoint_observed(
            &cell,
            instance(),
            1,
            Vec::new,
            &stores,
            &CheckpointConfig::default(),
            Some(&obs),
        )
        .unwrap();
        assert_eq!(obs.taken.get(), 1);
        assert!(obs.bytes.get() > 0);
        assert_eq!(obs.snapshot_ns.count(), 1);
        assert_eq!(obs.persist_ns.count(), 1);
        assert_eq!(obs.consolidate_ns.count(), 1);
        assert_eq!(obs.sync_ns.count(), 0);

        // Synchronous mode records the stop-the-world span instead.
        let sync_cfg = CheckpointConfig {
            synchronous: true,
            ..Default::default()
        };
        take_checkpoint_observed(
            &cell,
            instance(),
            2,
            Vec::new,
            &stores,
            &sync_cfg,
            Some(&obs),
        )
        .unwrap();
        assert_eq!(obs.taken.get(), 2);
        assert_eq!(obs.sync_ns.count(), 1);
        assert_eq!(obs.snapshot_ns.count(), 1);

        // Failures are counted, not recorded as taken.
        let r = take_checkpoint_observed(
            &cell,
            instance(),
            3,
            Vec::new,
            &[],
            &CheckpointConfig::default(),
            Some(&obs),
        );
        assert!(r.is_err());
        assert_eq!(obs.failed.get(), 1);
        assert_eq!(obs.taken.get(), 2);
    }

    #[test]
    fn no_stores_is_an_error() {
        let cell = populated_cell(1);
        let r = take_checkpoint(
            &cell,
            instance(),
            1,
            Vec::new,
            &[],
            &CheckpointConfig::default(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn fanout_larger_than_stores_is_clamped() {
        let cell = populated_cell(20);
        let stores = stores(1);
        let cfg = CheckpointConfig {
            backup_fanout: 4,
            chunks: 4,
            ..Default::default()
        };
        let set = take_checkpoint(&cell, instance(), 1, Vec::new, &stores, &cfg).unwrap();
        assert!(set.chunk_locations.iter().all(|(s, _)| *s == 0));
    }
}

//! The checkpoint protocol (§5, "State checkpointing").
//!
//! Asynchronous mode follows the paper's five steps:
//!
//! 1. under a short lock (all stripes at once, forming one consistent
//!    cut): flag each stripe's shard dirty (O(1) snapshot), copy the
//!    stripe vectors, take the dirty-chunk set, and capture the instance's
//!    output buffers;
//! 2. processing resumes immediately against the dirty overlays;
//! 3. off the processing path, a serialisation thread pool encodes the
//!    snapshots into hash-partitioned chunks (Fig. 4 step B1–B2) — in
//!    incremental mode, only the chunks that went dirty since the last
//!    completed checkpoint;
//! 4. chunks stream to the `m` backup stores by `chunk_id % m` (step B3),
//!    keeping a chunk's location stable across generations;
//! 5. under a short lock: consolidate the dirty overlays into the bases.
//!
//! Synchronous mode holds the locks for the entire procedure — the
//! "stop-the-world" behaviour of Naiad and SEEP that Fig. 12 compares
//! against. Synchronous checkpoints are always full.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use sdg_common::error::{SdgError, SdgResult};
use sdg_common::ids::{EdgeId, InstanceId};
use sdg_common::obs::CheckpointInstruments;
use sdg_common::time::VectorTs;
use sdg_state::entry::{partition_entries, StateEntry};
use sdg_state::store::StateSnapshot;

use crate::backup::{encode_entries, BackupSet, BackupStore, ChunkKey, DeltaMeta};
use crate::buffer::BufferedItem;
use crate::cell::StateCell;
use crate::config::CheckpointConfig;

/// Per-checkpoint policy knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckpointOptions {
    /// Force a full (base) generation even when incremental mode would
    /// produce a delta — used by the runtime's compaction policy when the
    /// accumulated delta chain grows past the configured threshold.
    pub force_full: bool,
}

/// Takes one checkpoint of `cell`, writing chunks to `stores`.
///
/// `capture_outputs` is invoked inside the initiation lock and must return
/// the instance's output buffers (they become part of the checkpoint so a
/// restored node can re-send downstream).
///
/// Returns the [`BackupSet`] describing where everything landed.
///
/// # Errors
///
/// Fails if a checkpoint is already in progress on the cell, if `stores`
/// is empty, or if a chunk write fails.
pub fn take_checkpoint(
    cell: &StateCell,
    instance: InstanceId,
    seq: u64,
    capture_outputs: impl FnOnce() -> Vec<(EdgeId, Vec<BufferedItem>)>,
    stores: &[Arc<BackupStore>],
    cfg: &CheckpointConfig,
) -> SdgResult<BackupSet> {
    take_checkpoint_observed(cell, instance, seq, capture_outputs, stores, cfg, None)
}

/// [`take_checkpoint`] with an optional observability probe.
///
/// When `obs` is given, the protocol's phase timings land in its
/// histograms — `snapshot_ns` (lock-held initiation), `persist_ns`
/// (off-path serialise + backup), `consolidate_ns` (lock-held overlay
/// fold), or `sync_ns` (the whole stop-the-world span in synchronous
/// mode) — and `taken`/`failed`/`bytes` are counted.
pub fn take_checkpoint_observed(
    cell: &StateCell,
    instance: InstanceId,
    seq: u64,
    capture_outputs: impl FnOnce() -> Vec<(EdgeId, Vec<BufferedItem>)>,
    stores: &[Arc<BackupStore>],
    cfg: &CheckpointConfig,
    obs: Option<&CheckpointInstruments>,
) -> SdgResult<BackupSet> {
    take_checkpoint_with(
        cell,
        instance,
        seq,
        capture_outputs,
        stores,
        cfg,
        obs,
        CheckpointOptions::default(),
    )
}

/// [`take_checkpoint_observed`] with explicit [`CheckpointOptions`].
#[allow(clippy::too_many_arguments)]
pub fn take_checkpoint_with(
    cell: &StateCell,
    instance: InstanceId,
    seq: u64,
    capture_outputs: impl FnOnce() -> Vec<(EdgeId, Vec<BufferedItem>)>,
    stores: &[Arc<BackupStore>],
    cfg: &CheckpointConfig,
    obs: Option<&CheckpointInstruments>,
    opts: CheckpointOptions,
) -> SdgResult<BackupSet> {
    let result =
        take_checkpoint_inner(cell, instance, seq, capture_outputs, stores, cfg, obs, opts);
    if let Some(obs) = obs {
        match &result {
            Ok(set) => {
                obs.taken.inc();
                obs.bytes.add(set.state_bytes as u64);
                if set.delta.as_ref().is_some_and(|d| !d.base) {
                    obs.deltas.inc();
                }
            }
            Err(_) => obs.failed.inc(),
        }
    }
    result
}

/// The consistent cut taken in step 1.
struct InitCut {
    /// Per-stripe (snapshot, vector) pairs, in stripe order.
    snapshots: Vec<(StateSnapshot, VectorTs)>,
    out_buffers: Vec<(EdgeId, Vec<BufferedItem>)>,
    /// Dirty chunk ids unioned across stripes; `Some` only when every
    /// stripe tracks the configured delta chunk space.
    dirty: Option<BTreeSet<u32>>,
}

#[allow(clippy::too_many_arguments)]
fn take_checkpoint_inner(
    cell: &StateCell,
    instance: InstanceId,
    seq: u64,
    capture_outputs: impl FnOnce() -> Vec<(EdgeId, Vec<BufferedItem>)>,
    stores: &[Arc<BackupStore>],
    cfg: &CheckpointConfig,
    obs: Option<&CheckpointInstruments>,
    opts: CheckpointOptions,
) -> SdgResult<BackupSet> {
    cfg.validate()?;
    if stores.is_empty() {
        return Err(SdgError::Recovery("no backup stores configured".into()));
    }
    let fanout = cfg.backup_fanout.min(stores.len());

    if cfg.synchronous {
        let t0 = Instant::now();
        let result = take_sync(
            cell,
            instance,
            seq,
            capture_outputs,
            stores,
            fanout,
            cfg,
            obs,
        );
        if let Some(obs) = obs {
            obs.sync_ns.record_duration(t0.elapsed());
        }
        return result;
    }

    // Step 1: O(1) snapshots under the all-stripes lock; processing
    // resumes on the dirty overlays as soon as the locks drop.
    let t0 = Instant::now();
    let mut cut = cell.with_all(|inners| -> SdgResult<InitCut> {
        let tracking = cfg.incremental
            && inners
                .iter()
                .all(|i| i.store.tracked_chunks() == Some(cfg.delta_chunks));
        let mut dirty = if tracking {
            Some(BTreeSet::new())
        } else {
            None
        };
        let mut snapshots = Vec::with_capacity(inners.len());
        for k in 0..inners.len() {
            // The dirty bits are taken *before* the snapshot so overlay
            // writes landing after the lock drops re-mark their chunks for
            // the next generation.
            if let Some(set) = dirty.as_mut() {
                set.extend(inners[k].store.take_dirty_chunks().unwrap_or_default());
            }
            match inners[k].store.begin_checkpoint() {
                Ok(snap) => {
                    let vector = inners[k].vector.clone();
                    snapshots.push((snap, vector));
                }
                Err(e) => {
                    // Roll back: fold the stripes already begun and put the
                    // consumed dirty bits back (conservatively, all of
                    // them) so the next checkpoint misses nothing.
                    for begun in inners.iter_mut().take(k) {
                        let _ = begun.store.consolidate();
                    }
                    for inner in inners.iter_mut() {
                        inner.store.mark_all_dirty();
                    }
                    return Err(e);
                }
            }
        }
        Ok(InitCut {
            snapshots,
            out_buffers: capture_outputs(),
            dirty,
        })
    })?;
    if let Some(obs) = obs {
        obs.snapshot_ns.record_duration(t0.elapsed());
    }
    let state_type = cut.snapshots[0].0.state_type();
    let stripe_vectors: Vec<VectorTs> = cut.snapshots.iter().map(|(_, v)| v.clone()).collect();
    let vector = min_vector(&stripe_vectors);

    // Steps 2–4 run off the processing path. Captured output buffers are
    // sealed here too: the dispatch path only parked refcounted records
    // (deferred encoding), so the wire encode joins the state serialise on
    // the persist-phase pool and `BackupSet` stays byte-identical to the
    // eager baseline on disk.
    let t1 = Instant::now();
    let (payloads, delta) = serialise_generation(&cut, cfg, opts.force_full);
    let sealed = seal_out_buffers(&mut cut.out_buffers, cfg.serialise_threads);
    let result = write_chunks(
        &payloads,
        instance,
        seq,
        stores,
        fanout,
        cfg.serialise_threads,
    );
    if let Some(obs) = obs {
        obs.persist_ns.record_duration(t1.elapsed());
        obs.encode_deferred.add(sealed);
    }

    // Step 5: consolidate even if a write failed, so the cell stays usable.
    let t2 = Instant::now();
    cell.with_all(|inners| {
        for inner in inners.iter_mut() {
            inner.store.consolidate()?;
        }
        Ok::<_, SdgError>(())
    })?;
    if let Some(obs) = obs {
        obs.consolidate_ns.record_duration(t2.elapsed());
    }
    let (chunk_locations, state_bytes) = match result {
        Ok(ok) => ok,
        Err(e) => {
            // The dirty bits were consumed but the generation never made
            // it to the stores: re-mark everything so the next checkpoint
            // covers the loss.
            cell.mark_all_dirty();
            return Err(e);
        }
    };

    Ok(BackupSet {
        instance,
        seq,
        state_type,
        vector,
        stripe_vectors,
        chunk_locations,
        out_buffers: cut.out_buffers,
        state_bytes,
        delta,
    })
}

/// Cell-level vector: pointwise minimum across stripes.
fn min_vector(stripe_vectors: &[VectorTs]) -> VectorTs {
    if stripe_vectors.len() == 1 {
        stripe_vectors[0].clone()
    } else {
        VectorTs::pointwise_min(stripe_vectors)
    }
}

/// Encodes the cut into `(chunk_id, entries)` payloads plus the generation
/// header. Legacy (non-incremental) checkpoints keep the historical
/// `partition_entries` layout byte-for-byte.
fn serialise_generation(
    cut: &InitCut,
    cfg: &CheckpointConfig,
    force_full: bool,
) -> (Vec<(u32, Vec<StateEntry>)>, Option<DeltaMeta>) {
    match &cut.dirty {
        Some(dirty) => {
            let space = cfg.delta_chunks;
            // A generation that rewrites every chunk is a base: it can
            // start a restore chain, so label it as one (this also covers
            // the first checkpoint, which starts all-dirty).
            let base = force_full || dirty.len() >= space;
            let mut wanted = vec![false; space];
            if base {
                wanted.iter_mut().for_each(|w| *w = true);
            } else {
                for &id in dirty {
                    wanted[id as usize] = true;
                }
            }
            let mut merged: Vec<Vec<StateEntry>> = (0..space).map(|_| Vec::new()).collect();
            for (snap, _) in &cut.snapshots {
                for (id, mut entries) in snap.to_entries_for(space, &wanted).into_iter().enumerate()
                {
                    merged[id].append(&mut entries);
                }
            }
            // Every wanted chunk is written even when empty: an empty
            // chunk overwrites a stale copy whose keys were all deleted.
            let payloads = (0..space as u32)
                .filter(|&id| wanted[id as usize])
                .map(|id| (id, std::mem::take(&mut merged[id as usize])))
                .collect();
            (
                payloads,
                Some(DeltaMeta {
                    base,
                    chunk_space: space,
                }),
            )
        }
        None => {
            let mut entries = Vec::new();
            for (snap, _) in &cut.snapshots {
                entries.extend(snap.to_entries());
            }
            let chunks = partition_entries(entries, cfg.chunks);
            (
                chunks
                    .into_iter()
                    .enumerate()
                    .map(|(i, c)| (i as u32, c))
                    .collect(),
                None,
            )
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn take_sync(
    cell: &StateCell,
    instance: InstanceId,
    seq: u64,
    capture_outputs: impl FnOnce() -> Vec<(EdgeId, Vec<BufferedItem>)>,
    stores: &[Arc<BackupStore>],
    fanout: usize,
    cfg: &CheckpointConfig,
    obs: Option<&CheckpointInstruments>,
) -> SdgResult<BackupSet> {
    // The entire export + serialise + write happens under the cell locks:
    // every processing thread blocks for the duration. Sync checkpoints
    // are always full (the Fig. 12 baseline), and live output-buffer
    // captures are sealed inside the stop-the-world span.
    cell.with_all(|inners| {
        let stripe_vectors: Vec<VectorTs> = inners.iter().map(|i| i.vector.clone()).collect();
        let vector = min_vector(&stripe_vectors);
        let mut out_buffers = capture_outputs();
        let sealed = seal_out_buffers(&mut out_buffers, cfg.serialise_threads);
        if let Some(obs) = obs {
            obs.encode_deferred.add(sealed);
        }
        let state_type = inners[0].store.state_type();
        let mut entries = Vec::new();
        for inner in inners.iter_mut() {
            entries.extend(inner.store.export_entries());
        }
        let chunks = partition_entries(entries, cfg.chunks);
        let payloads: Vec<(u32, Vec<StateEntry>)> = chunks
            .into_iter()
            .enumerate()
            .map(|(i, c)| (i as u32, c))
            .collect();
        let (chunk_locations, state_bytes) = write_chunks(
            &payloads,
            instance,
            seq,
            stores,
            fanout,
            cfg.serialise_threads,
        )?;
        Ok(BackupSet {
            instance,
            seq,
            state_type,
            vector,
            stripe_vectors,
            chunk_locations,
            out_buffers,
            state_bytes,
            delta: None,
        })
    })
}

/// Serialises and writes `(chunk_id, entries)` payloads in parallel
/// (Fig. 4 steps B1–B3). A chunk's store is `chunk_id % fanout`, which is
/// stable across generations so delta chains can be garbage-collected per
/// store without relocation.
fn write_chunks(
    payloads: &[(u32, Vec<StateEntry>)],
    instance: InstanceId,
    seq: u64,
    stores: &[Arc<BackupStore>],
    fanout: usize,
    threads: usize,
) -> SdgResult<(Vec<(usize, ChunkKey)>, usize)> {
    let next = AtomicUsize::new(0);
    let results: Vec<parking_lot::Mutex<Option<SdgResult<usize>>>> = (0..payloads.len())
        .map(|_| parking_lot::Mutex::new(None))
        .collect();

    std::thread::scope(|scope| {
        for _ in 0..threads.max(1).min(payloads.len().max(1)) {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= payloads.len() {
                    break;
                }
                let (chunk_id, entries) = &payloads[idx];
                let bytes = encode_entries(entries);
                let len = bytes.len();
                let key = ChunkKey {
                    instance,
                    seq,
                    chunk: *chunk_id,
                };
                let store = &stores[*chunk_id as usize % fanout];
                let r = store.write_chunk(key, bytes).map(|()| len);
                *results[idx].lock() = Some(r);
            });
        }
    });

    let mut locations = Vec::with_capacity(payloads.len());
    let mut total = 0usize;
    for (idx, slot) in results.into_iter().enumerate() {
        let r = slot
            .into_inner()
            .unwrap_or_else(|| Err(SdgError::Recovery("chunk write skipped".into())))?;
        total += r;
        let chunk_id = payloads[idx].0;
        locations.push((
            chunk_id as usize % fanout,
            ChunkKey {
                instance,
                seq,
                chunk: chunk_id,
            },
        ));
    }
    Ok((locations, total))
}

/// Seals every captured output-buffer item into its `Encoded` wire form,
/// splitting the edges across `threads` workers. Items logged by the eager
/// baseline are already encoded and pass through untouched, so a persisted
/// `BackupSet` holds identical bytes in both modes. Returns the number of
/// encodes performed (live items sealed).
fn seal_out_buffers(out_buffers: &mut [(EdgeId, Vec<BufferedItem>)], threads: usize) -> u64 {
    if out_buffers.is_empty() {
        return 0;
    }
    let sealed = AtomicU64::new(0);
    let per_worker = out_buffers
        .len()
        .div_ceil(threads.max(1).min(out_buffers.len()));
    std::thread::scope(|scope| {
        for part in out_buffers.chunks_mut(per_worker) {
            let sealed = &sealed;
            scope.spawn(move || {
                let mut n = 0u64;
                for (_, items) in part.iter_mut() {
                    for item in items.iter_mut() {
                        if item.seal() {
                            n += 1;
                        }
                    }
                }
                sealed.fetch_add(n, Ordering::Relaxed);
            });
        }
    });
    sealed.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdg_common::ids::TaskId;
    use sdg_common::value::{Key, Value};
    use sdg_state::partition::PartitionDim;
    use sdg_state::store::StateType;

    fn instance() -> InstanceId {
        InstanceId::new(TaskId(0), 0)
    }

    fn populated_cell(n: i64) -> StateCell {
        let cell = StateCell::new(StateType::Table);
        for i in 0..n {
            cell.apply(EdgeId(0), (i + 1) as u64, |s| {
                s.as_table().unwrap().put(Key::Int(i), Value::Int(i * 2));
            });
        }
        cell
    }

    fn stores(m: usize) -> Vec<Arc<BackupStore>> {
        (0..m).map(|_| Arc::new(BackupStore::in_memory())).collect()
    }

    #[test]
    fn checkpoint_records_chunks_and_vector() {
        let cell = populated_cell(100);
        let stores = stores(2);
        let cfg = CheckpointConfig::default();
        let set = take_checkpoint(&cell, instance(), 1, Vec::new, &stores, &cfg).unwrap();
        assert_eq!(set.seq, 1);
        assert_eq!(set.chunk_locations.len(), cfg.chunks);
        assert_eq!(set.vector.get(EdgeId(0)), 100);
        assert!(set.state_bytes > 0);
        assert!(set.delta.is_none());
        assert!(set.is_base());
        assert_eq!(set.stripe_vectors.len(), 1);
        // Chunks alternate between the two stores.
        assert!(set.chunk_locations.iter().any(|(s, _)| *s == 0));
        assert!(set.chunk_locations.iter().any(|(s, _)| *s == 1));
        // The cell is consolidated and writable again.
        cell.with(|inner| assert!(!inner.store.is_checkpointing()));
        let set2 = take_checkpoint(&cell, instance(), 2, Vec::new, &stores, &cfg).unwrap();
        assert_eq!(set2.seq, 2);
    }

    #[test]
    fn sync_mode_produces_equivalent_backup() {
        let cell = populated_cell(50);
        let stores = stores(2);
        let mut cfg = CheckpointConfig::default();
        let async_set = take_checkpoint(&cell, instance(), 1, Vec::new, &stores, &cfg).unwrap();
        cfg.synchronous = true;
        let sync_set = take_checkpoint(&cell, instance(), 2, Vec::new, &stores, &cfg).unwrap();
        assert_eq!(async_set.state_bytes, sync_set.state_bytes);
        assert_eq!(async_set.vector, sync_set.vector);
    }

    #[test]
    fn output_buffers_are_captured() {
        let cell = populated_cell(1);
        let stores = stores(1);
        let cfg = CheckpointConfig::default();
        let outs = vec![(EdgeId(7), vec![BufferedItem::encoded(3, vec![1, 2])])];
        let set = take_checkpoint(&cell, instance(), 1, move || outs, &stores, &cfg).unwrap();
        assert_eq!(set.out_buffers.len(), 1);
        assert_eq!(set.out_buffers[0].0, EdgeId(7));
        assert_eq!(set.out_buffers[0].1[0].ts, 3);
    }

    fn live_capture() -> (Vec<(EdgeId, Vec<BufferedItem>)>, Vec<u8>) {
        let payload = std::sync::Arc::new(sdg_common::record! {
            "k" => Value::Int(7),
            "v" => Value::Str("deferred".into()),
        });
        let live = BufferedItem::live(3, 99, 2, payload);
        let wire = live.to_bytes();
        (vec![(EdgeId(7), vec![live])], wire)
    }

    #[test]
    fn live_captures_are_sealed_at_persist_time() {
        let cell = populated_cell(10);
        let stores = stores(2);
        let cfg = CheckpointConfig::default();
        let obs = CheckpointInstruments::default();
        let (outs, wire) = live_capture();
        let set = take_checkpoint_observed(
            &cell,
            instance(),
            1,
            move || outs,
            &stores,
            &cfg,
            Some(&obs),
        )
        .unwrap();
        assert_eq!(
            set.out_buffers[0].1[0],
            BufferedItem::encoded(3, wire),
            "persisted out_buffers must hold the eager wire bytes"
        );
        assert_eq!(obs.encode_deferred.get(), 1);
    }

    #[test]
    fn sync_mode_seals_live_captures_too() {
        let cell = populated_cell(10);
        let stores = stores(2);
        let cfg = CheckpointConfig {
            synchronous: true,
            ..Default::default()
        };
        let obs = CheckpointInstruments::default();
        let (outs, wire) = live_capture();
        let set = take_checkpoint_observed(
            &cell,
            instance(),
            1,
            move || outs,
            &stores,
            &cfg,
            Some(&obs),
        )
        .unwrap();
        assert_eq!(set.out_buffers[0].1[0], BufferedItem::encoded(3, wire));
        assert_eq!(obs.encode_deferred.get(), 1);
    }

    #[test]
    fn empty_store_checkpoints_cleanly() {
        let cell = StateCell::new(StateType::Matrix);
        let stores = stores(1);
        let set = take_checkpoint(
            &cell,
            instance(),
            1,
            Vec::new,
            &stores,
            &CheckpointConfig::default(),
        )
        .unwrap();
        assert_eq!(
            set.state_bytes as u64,
            set.chunk_locations
                .iter()
                .map(|(s, k)| stores[*s].read_chunk(*k).unwrap().len() as u64)
                .sum::<u64>()
        );
    }

    #[test]
    fn observed_checkpoint_records_phase_timings() {
        let cell = populated_cell(200);
        let stores = stores(2);
        let obs = CheckpointInstruments::default();

        // Async mode fills the three async-phase histograms.
        take_checkpoint_observed(
            &cell,
            instance(),
            1,
            Vec::new,
            &stores,
            &CheckpointConfig::default(),
            Some(&obs),
        )
        .unwrap();
        assert_eq!(obs.taken.get(), 1);
        assert!(obs.bytes.get() > 0);
        assert_eq!(obs.snapshot_ns.count(), 1);
        assert_eq!(obs.persist_ns.count(), 1);
        assert_eq!(obs.consolidate_ns.count(), 1);
        assert_eq!(obs.sync_ns.count(), 0);

        // Synchronous mode records the stop-the-world span instead.
        let sync_cfg = CheckpointConfig {
            synchronous: true,
            ..Default::default()
        };
        take_checkpoint_observed(
            &cell,
            instance(),
            2,
            Vec::new,
            &stores,
            &sync_cfg,
            Some(&obs),
        )
        .unwrap();
        assert_eq!(obs.taken.get(), 2);
        assert_eq!(obs.sync_ns.count(), 1);
        assert_eq!(obs.snapshot_ns.count(), 1);

        // Failures are counted, not recorded as taken.
        let r = take_checkpoint_observed(
            &cell,
            instance(),
            3,
            Vec::new,
            &[],
            &CheckpointConfig::default(),
            Some(&obs),
        );
        assert!(r.is_err());
        assert_eq!(obs.failed.get(), 1);
        assert_eq!(obs.taken.get(), 2);
    }

    #[test]
    fn no_stores_is_an_error() {
        let cell = populated_cell(1);
        let r = take_checkpoint(
            &cell,
            instance(),
            1,
            Vec::new,
            &[],
            &CheckpointConfig::default(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn fanout_larger_than_stores_is_clamped() {
        let cell = populated_cell(20);
        let stores = stores(1);
        let cfg = CheckpointConfig {
            backup_fanout: 4,
            chunks: 4,
            ..Default::default()
        };
        let set = take_checkpoint(&cell, instance(), 1, Vec::new, &stores, &cfg).unwrap();
        assert!(set.chunk_locations.iter().all(|(s, _)| *s == 0));
    }

    fn striped_cell(keys: i64, stripes: usize, delta_chunks: usize) -> StateCell {
        let cell = StateCell::new_striped(
            StateType::Table,
            stripes,
            PartitionDim::Row,
            Some(delta_chunks),
        );
        for i in 0..keys {
            let key = Key::Int(i);
            cell.apply_routed(EdgeId(0), (i + 1) as u64, Some(key.stable_hash()), |s| {
                s.as_table().unwrap().put(key.clone(), Value::Int(i * 2));
            });
        }
        cell
    }

    #[test]
    fn first_incremental_checkpoint_is_a_base() {
        let cell = striped_cell(200, 4, 16);
        let stores = stores(2);
        let cfg = CheckpointConfig {
            incremental: true,
            delta_chunks: 16,
            ..Default::default()
        };
        let set = take_checkpoint(&cell, instance(), 1, Vec::new, &stores, &cfg).unwrap();
        let meta = set.delta.as_ref().unwrap();
        assert!(meta.base);
        assert!(set.is_base());
        assert_eq!(meta.chunk_space, 16);
        assert_eq!(set.chunk_locations.len(), 16);
        assert_eq!(set.stripe_vectors.len(), 4);
        // The cell-level vector is the pointwise min across stripes: it
        // trails the newest item (200) but matches the cell's own view.
        assert_eq!(set.vector, cell.vector());
        let newest = set
            .stripe_vectors
            .iter()
            .map(|v| v.get(EdgeId(0)))
            .max()
            .unwrap();
        assert_eq!(newest, 200);
        assert!(set.vector.get(EdgeId(0)) <= 200);
    }

    #[test]
    fn second_checkpoint_is_a_small_delta() {
        let cell = striped_cell(500, 4, 64);
        let stores = stores(2);
        let cfg = CheckpointConfig {
            incremental: true,
            delta_chunks: 64,
            ..Default::default()
        };
        let base = take_checkpoint(&cell, instance(), 1, Vec::new, &stores, &cfg).unwrap();
        assert!(base.delta.as_ref().unwrap().base);

        // Touch a handful of keys; the delta must cover only their chunks.
        let touched: Vec<i64> = vec![3, 7];
        for &i in &touched {
            let key = Key::Int(i);
            cell.apply_routed(EdgeId(0), 500 + i as u64, Some(key.stable_hash()), |s| {
                s.as_table().unwrap().put(key.clone(), Value::Int(-i));
            });
        }
        let delta = take_checkpoint(&cell, instance(), 2, Vec::new, &stores, &cfg).unwrap();
        let meta = delta.delta.as_ref().unwrap();
        assert!(!meta.base);
        let mut expected: Vec<u32> = touched
            .iter()
            .map(|&i| (Key::Int(i).stable_hash() % 64) as u32)
            .collect();
        expected.sort_unstable();
        expected.dedup();
        let mut written: Vec<u32> = delta.chunk_locations.iter().map(|(_, k)| k.chunk).collect();
        written.sort_unstable();
        assert_eq!(written, expected);
        assert!(delta.state_bytes < base.state_bytes / 4);
    }

    #[test]
    fn force_full_produces_a_base_generation() {
        let cell = striped_cell(100, 2, 8);
        let stores = stores(2);
        let cfg = CheckpointConfig {
            incremental: true,
            delta_chunks: 8,
            ..Default::default()
        };
        take_checkpoint(&cell, instance(), 1, Vec::new, &stores, &cfg).unwrap();
        let set = take_checkpoint_with(
            &cell,
            instance(),
            2,
            Vec::new,
            &stores,
            &cfg,
            None,
            CheckpointOptions { force_full: true },
        )
        .unwrap();
        assert!(set.delta.as_ref().unwrap().base);
        assert_eq!(set.chunk_locations.len(), 8);
    }

    #[test]
    fn clean_checkpoint_writes_no_chunks() {
        let cell = striped_cell(100, 2, 8);
        let stores = stores(1);
        let cfg = CheckpointConfig {
            incremental: true,
            delta_chunks: 8,
            ..Default::default()
        };
        take_checkpoint(&cell, instance(), 1, Vec::new, &stores, &cfg).unwrap();
        // Nothing changed: the delta generation is empty.
        let set = take_checkpoint(&cell, instance(), 2, Vec::new, &stores, &cfg).unwrap();
        assert!(!set.delta.as_ref().unwrap().base);
        assert!(set.chunk_locations.is_empty());
        assert_eq!(set.state_bytes, 0);
    }

    #[test]
    fn untracked_structures_fall_back_to_full() {
        // Matrices don't support dirty tracking: incremental mode must
        // silently produce legacy full checkpoints.
        let cell = StateCell::new(StateType::Matrix);
        cell.apply(EdgeId(0), 1, |s| s.as_matrix().unwrap().set(1, 2, 3.0));
        let stores = stores(1);
        let cfg = CheckpointConfig {
            incremental: true,
            ..Default::default()
        };
        let set = take_checkpoint(&cell, instance(), 1, Vec::new, &stores, &cfg).unwrap();
        assert!(set.delta.is_none());
        assert_eq!(set.chunk_locations.len(), cfg.chunks);
    }
}

//! The shared cell wrapping one SE instance.
//!
//! Worker threads and the checkpoint coordinator share SE instances through
//! a [`StateCell`]. Since PR 4 the cell is **lock-striped**: a partitioned
//! SE instance holds a fixed set of stripes, each a mutex around a disjoint
//! shard of the [`StateStore`] plus the vector timestamp of input applied
//! *to that stripe*. Concurrent accessing tasks hitting different keys of
//! one instance no longer contend; the asynchronous checkpoint protocol
//! locks all stripes only for snapshot initiation and consolidation.
//!
//! ## Stripe identity and watermark semantics
//!
//! Items are routed to stripes by the same stable key hash the partitioner
//! uses (`Key::stable_hash() % stripes`), so a given key always lands on
//! the same stripe — across processing, checkpoint re-splits, and restore.
//! Per-(edge, src) dedupe watermarks live in the stripe owning the item's
//! key. Items of one lane arrive in timestamp order, so each stripe
//! observes an increasing subsequence and `is_duplicate` stays exact. The
//! cell-level vector used for checkpoint metadata and buffer trimming is
//! the **pointwise minimum** across stripes: a timestamp is safely trimmed
//! only once every stripe that could own one of the lane's keys has
//! progressed past it.

use parking_lot::Mutex;
use sdg_common::error::SdgResult;
use sdg_common::ids::EdgeId;
use sdg_common::time::{ScalarTs, VectorTs};
use sdg_state::entry::StateEntry;
use sdg_state::partition::PartitionDim;
use sdg_state::store::{StateStore, StateType};

/// The lock-protected contents of one stripe.
#[derive(Debug)]
pub struct CellInner {
    /// The stripe's shard of the SE data structure.
    pub store: StateStore,
    /// Last applied timestamp per input lane, for keys owned by this stripe.
    pub vector: VectorTs,
}

/// One SE instance shared between processing and checkpointing.
#[derive(Debug)]
pub struct StateCell {
    stripes: Vec<Mutex<CellInner>>,
    /// Dirty-chunk space for incremental checkpoints (`None` = full only).
    delta_chunks: Option<usize>,
    /// Partition axis used when re-splitting a merged store into stripes.
    dim: PartitionDim,
}

impl StateCell {
    /// Creates an unstriped cell holding an empty store of type `ty`.
    pub fn new(ty: StateType) -> Self {
        Self::from_store(StateStore::new(ty), VectorTs::new())
    }

    /// Creates an unstriped cell from an existing store and vector.
    pub fn from_store(store: StateStore, vector: VectorTs) -> Self {
        StateCell {
            stripes: vec![Mutex::new(CellInner { store, vector })],
            delta_chunks: None,
            dim: PartitionDim::Row,
        }
    }

    /// Creates a striped cell of `stripes` empty shards.
    ///
    /// When `delta_chunks` is `Some(n)` each shard tracks dirty chunks in an
    /// `n`-chunk space so checkpoints can serialise deltas (tables only;
    /// other structures silently fall back to full serialisation).
    ///
    /// # Panics
    ///
    /// Panics if `stripes` is zero.
    pub fn new_striped(
        ty: StateType,
        stripes: usize,
        dim: PartitionDim,
        delta_chunks: Option<usize>,
    ) -> Self {
        assert!(stripes > 0, "stripe count must be positive");
        let stripes = (0..stripes)
            .map(|_| {
                let mut store = StateStore::new(ty);
                if let Some(chunks) = delta_chunks {
                    store.enable_chunk_tracking(chunks);
                }
                Mutex::new(CellInner {
                    store,
                    vector: VectorTs::new(),
                })
            })
            .collect();
        StateCell {
            stripes,
            delta_chunks,
            dim,
        }
    }

    /// Creates a striped cell by hash-splitting `store` into `stripes`
    /// shards, assigning `vector` to every stripe.
    ///
    /// Assigning the merged vector to all stripes is only exact when the
    /// caller knows no finer-grained watermarks exist (fresh deployments
    /// and scale-out, where new items always carry higher timestamps). For
    /// restore, prefer [`StateCell::from_parts`] with the per-stripe
    /// vectors recorded in the backup.
    pub fn from_store_striped(
        store: StateStore,
        vector: VectorTs,
        stripes: usize,
        dim: PartitionDim,
        delta_chunks: Option<usize>,
    ) -> SdgResult<Self> {
        assert!(stripes > 0, "stripe count must be positive");
        if stripes == 1 {
            let mut cell = StateCell::from_store(store, vector);
            cell.delta_chunks = delta_chunks;
            cell.dim = dim;
            if let Some(chunks) = delta_chunks {
                cell.stripes[0].lock().store.enable_chunk_tracking(chunks);
            }
            return Ok(cell);
        }
        let parts = store.split_by_hash(stripes, dim)?;
        Ok(Self::from_parts(
            parts.into_iter().map(|p| (p, vector.clone())).collect(),
            dim,
            delta_chunks,
        ))
    }

    /// Creates a striped cell from exact per-stripe (store, vector) pairs,
    /// as recorded by a checkpoint (used on restore).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn from_parts(
        parts: Vec<(StateStore, VectorTs)>,
        dim: PartitionDim,
        delta_chunks: Option<usize>,
    ) -> Self {
        assert!(!parts.is_empty(), "cell needs at least one stripe");
        let stripes = parts
            .into_iter()
            .map(|(mut store, vector)| {
                if let Some(chunks) = delta_chunks {
                    store.enable_chunk_tracking(chunks);
                }
                Mutex::new(CellInner { store, vector })
            })
            .collect();
        StateCell {
            stripes,
            delta_chunks,
            dim,
        }
    }

    /// Number of stripes in this cell.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// The dirty-chunk space configured for incremental checkpoints.
    pub fn delta_chunks(&self) -> Option<usize> {
        self.delta_chunks
    }

    /// Maps a route hash to its stripe index.
    fn stripe_of(&self, route: Option<u64>) -> usize {
        match route {
            Some(h) if self.stripes.len() > 1 => (h % self.stripes.len() as u64) as usize,
            _ => 0,
        }
    }

    /// Runs `f` with the cell locked.
    ///
    /// Only valid on unstriped cells (the historical single-mutex API);
    /// striped cells must use [`StateCell::apply_routed`],
    /// [`StateCell::with_all`] or [`StateCell::with_merged`].
    pub fn with<R>(&self, f: impl FnOnce(&mut CellInner) -> R) -> R {
        debug_assert!(
            self.stripes.len() == 1,
            "StateCell::with on a striped cell; use with_all/with_merged"
        );
        f(&mut self.stripes[0].lock())
    }

    /// Runs `f` with the stripe owning `route` locked.
    pub fn with_routed<R>(&self, route: Option<u64>, f: impl FnOnce(&mut CellInner) -> R) -> R {
        f(&mut self.stripes[self.stripe_of(route)].lock())
    }

    /// Runs `f` with **all** stripes locked, in index order.
    ///
    /// This is the checkpoint cut: while `f` runs no item can mutate any
    /// stripe, so the per-stripe (snapshot, vector) pairs form one
    /// consistent cell-level state.
    pub fn with_all<R>(&self, f: impl FnOnce(&mut [&mut CellInner]) -> R) -> R {
        let mut guards: Vec<_> = self.stripes.iter().map(|m| m.lock()).collect();
        let mut inners: Vec<&mut CellInner> = guards.iter_mut().map(|g| &mut **g).collect();
        f(&mut inners)
    }

    /// Applies one input item: returns `None` without calling `f` if the
    /// item is a duplicate (already covered by the owning stripe's vector),
    /// otherwise runs `f` on the stripe's shard and advances its watermark.
    pub fn apply<R>(
        &self,
        edge: EdgeId,
        ts: ScalarTs,
        f: impl FnOnce(&mut StateStore) -> R,
    ) -> Option<R> {
        self.apply_routed(edge, ts, None, f)
    }

    /// [`StateCell::apply`] with an explicit route hash selecting the
    /// stripe. `route` must be the stable hash of the item's partition key
    /// (the same hash the dispatcher used), so the item lands on the stripe
    /// owning its key.
    pub fn apply_routed<R>(
        &self,
        edge: EdgeId,
        ts: ScalarTs,
        route: Option<u64>,
        f: impl FnOnce(&mut StateStore) -> R,
    ) -> Option<R> {
        let mut inner = self.stripes[self.stripe_of(route)].lock();
        if inner.vector.is_duplicate(edge, ts) {
            return None;
        }
        let r = f(&mut inner.store);
        inner.vector.observe(edge, ts);
        Some(r)
    }

    /// Returns the cell-level vector timestamp: the pointwise minimum
    /// across stripes (safe for trimming and replay decisions).
    pub fn vector(&self) -> VectorTs {
        if self.stripes.len() == 1 {
            return self.stripes[0].lock().vector.clone();
        }
        let vectors: Vec<VectorTs> = self
            .stripes
            .iter()
            .map(|s| s.lock().vector.clone())
            .collect();
        VectorTs::pointwise_min(&vectors)
    }

    /// Returns every stripe's vector (checkpoint metadata).
    pub fn stripe_vectors(&self) -> Vec<VectorTs> {
        self.stripes
            .iter()
            .map(|s| s.lock().vector.clone())
            .collect()
    }

    /// Returns the approximate state size in bytes (sum over stripes).
    pub fn approx_bytes(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().store.approx_bytes())
            .sum()
    }

    /// Returns the approximate bytes held by dirty overlays (0 when no
    /// checkpoint is in flight).
    pub fn dirty_bytes(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().store.dirty_bytes())
            .sum()
    }

    /// Number of chunks currently marked dirty across all stripes (0 when
    /// incremental tracking is off).
    pub fn pending_dirty_chunks(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().store.dirty_chunk_count())
            .sum()
    }

    /// Marks every tracked chunk dirty in every stripe (forces the next
    /// incremental checkpoint to serialise everything).
    pub fn mark_all_dirty(&self) {
        for s in &self.stripes {
            s.lock().store.mark_all_dirty();
        }
    }

    /// Exports the merged visible state and the merge-max vector across
    /// stripes, locking all stripes for a consistent cut.
    ///
    /// The merge-max vector is the right watermark for scale-out: the
    /// receiving instances must reject anything *any* stripe already
    /// applied, and redistributed keys carry fresh (higher) timestamps.
    pub fn export_merged(&self) -> (Vec<StateEntry>, VectorTs) {
        self.with_all(|inners| {
            let mut entries = Vec::new();
            let mut vector = VectorTs::new();
            for inner in inners.iter_mut() {
                entries.extend(inner.store.export_entries());
                vector.merge_max(&inner.vector);
            }
            (entries, vector)
        })
    }

    /// Runs `f` on a merged view of the whole cell, then re-splits the
    /// result back into the stripes.
    ///
    /// Used for bulk access (state preloading, `with_state`). On striped
    /// cells the re-split produces fresh shards, so chunk tracking is
    /// re-enabled all-dirty — the next incremental checkpoint conservatively
    /// serialises everything. Stripe vectors are unchanged (bulk access is
    /// not dataflow input).
    pub fn with_merged<R>(&self, f: impl FnOnce(&mut StateStore) -> R) -> SdgResult<R> {
        if self.stripes.len() == 1 {
            return Ok(f(&mut self.stripes[0].lock().store));
        }
        self.with_all(|inners| {
            let ty = inners[0].store.state_type();
            let mut merged = StateStore::new(ty);
            for inner in inners.iter_mut() {
                merged.import_entries(&inner.store.export_entries())?;
            }
            let r = f(&mut merged);
            let parts = merged.split_by_hash(inners.len(), self.dim)?;
            for (inner, mut part) in inners.iter_mut().zip(parts) {
                if let Some(chunks) = self.delta_chunks {
                    part.enable_chunk_tracking(chunks);
                }
                inner.store = part;
            }
            Ok(r)
        })
    }

    /// Additively merges `entries` (another replica's exported partial
    /// aggregate) into this cell and folds `vector` into every stripe's
    /// watermark by pointwise max.
    ///
    /// This is the scale-in path for `@Partial` SEs: the victim replica's
    /// contribution is summed into a survivor so the group-wide aggregate
    /// (the element-wise sum over replicas) is preserved. Merge-max is the
    /// right watermark because the group is drained first — anything either
    /// side already applied must be rejected on replay, and fresh items
    /// carry higher timestamps. The merged shards are marked all-dirty so
    /// the next incremental checkpoint serialises the new contents.
    pub fn merge_additive(&self, entries: &[StateEntry], vector: &VectorTs) -> SdgResult<()> {
        self.with_all(|inners| {
            if inners.len() == 1 {
                inners[0].store.merge_additive(entries)?;
                inners[0].store.mark_all_dirty();
                inners[0].vector.merge_max(vector);
                return Ok(());
            }
            // Striped cells: merge on the combined view, then re-split so
            // every key keeps landing on the stripe its hash selects.
            let ty = inners[0].store.state_type();
            let mut merged = StateStore::new(ty);
            for inner in inners.iter_mut() {
                merged.import_entries(&inner.store.export_entries())?;
            }
            merged.merge_additive(entries)?;
            let parts = merged.split_by_hash(inners.len(), self.dim)?;
            for (inner, mut part) in inners.iter_mut().zip(parts) {
                if let Some(chunks) = self.delta_chunks {
                    part.enable_chunk_tracking(chunks);
                }
                inner.store = part;
                inner.vector.merge_max(vector);
            }
            Ok(())
        })
    }

    /// Replaces the cell's entire contents with `store`, re-split across
    /// the stripes, assigning `vector` to every stripe (used on scale-out,
    /// where redistributed items always carry fresh timestamps).
    pub fn replace(&self, store: StateStore, vector: VectorTs) -> SdgResult<()> {
        self.with_all(|inners| {
            let parts = if inners.len() == 1 {
                vec![store]
            } else {
                store.split_by_hash(inners.len(), self.dim)?
            };
            for (inner, mut part) in inners.iter_mut().zip(parts) {
                if let Some(chunks) = self.delta_chunks {
                    part.enable_chunk_tracking(chunks);
                }
                inner.store = part;
                inner.vector = vector.clone();
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdg_common::value::{Key, Value};

    #[test]
    fn apply_rejects_duplicates() {
        let cell = StateCell::new(StateType::Table);
        let edge = EdgeId(0);
        let applied = cell.apply(edge, 1, |s| {
            s.as_table().unwrap().put(Key::Int(1), Value::Int(1));
        });
        assert!(applied.is_some());
        // Replaying the same timestamp is a no-op.
        let replayed = cell.apply(edge, 1, |s| {
            s.as_table().unwrap().put(Key::Int(1), Value::Int(999));
        });
        assert!(replayed.is_none());
        cell.with(|inner| {
            assert_eq!(
                inner.store.as_table().unwrap().get(&Key::Int(1)),
                Some(Value::Int(1))
            );
        });
    }

    #[test]
    fn apply_tracks_per_edge_watermarks() {
        let cell = StateCell::new(StateType::Table);
        assert!(cell.apply(EdgeId(0), 5, |_| ()).is_some());
        // A different edge has its own watermark.
        assert!(cell.apply(EdgeId(1), 3, |_| ()).is_some());
        assert!(cell.apply(EdgeId(0), 3, |_| ()).is_none());
        assert_eq!(cell.vector().get(EdgeId(0)), 5);
        assert_eq!(cell.vector().get(EdgeId(1)), 3);
    }

    #[test]
    fn with_gives_exclusive_access() {
        let cell = StateCell::new(StateType::Vector);
        cell.with(|inner| inner.store.as_vector().unwrap().set(9, 1.0));
        assert_eq!(cell.approx_bytes(), 80);
    }

    #[test]
    fn routed_items_land_on_their_keys_stripe() {
        let cell = StateCell::new_striped(StateType::Table, 4, PartitionDim::Row, None);
        for i in 0..40i64 {
            let key = Key::Int(i);
            let route = key.stable_hash();
            cell.apply_routed(EdgeId(0), (i + 1) as u64, Some(route), |s| {
                s.as_table().unwrap().put(key.clone(), Value::Int(i));
            });
        }
        // Every key is visible via the stripe its hash selects, and only
        // that stripe.
        for i in 0..40i64 {
            let key = Key::Int(i);
            let found = cell.with_routed(Some(key.stable_hash()), |inner| {
                inner.store.as_table().unwrap().get(&key)
            });
            assert_eq!(found, Some(Value::Int(i)));
        }
        let total: usize = cell.with_all(|inners| {
            inners
                .iter_mut()
                .map(|i| i.store.as_table().unwrap().len())
                .sum()
        });
        assert_eq!(total, 40);
    }

    #[test]
    fn cell_vector_is_pointwise_min_of_stripes() {
        let cell = StateCell::new_striped(StateType::Table, 2, PartitionDim::Row, None);
        // Find keys for each stripe.
        let mut key_for = [None, None];
        for i in 0..100i64 {
            let stripe = (Key::Int(i).stable_hash() % 2) as usize;
            if key_for[stripe].is_none() {
                key_for[stripe] = Some(i);
            }
        }
        let (k0, k1) = (key_for[0].unwrap(), key_for[1].unwrap());
        // Stripe 0 saw ts 10, stripe 1 only ts 4: the cell-level watermark
        // must be 4 so replay re-delivers 5..=10 (stripe 0 will dedupe).
        cell.apply_routed(EdgeId(7), 4, Some(Key::Int(k1).stable_hash()), |_| ());
        cell.apply_routed(EdgeId(7), 10, Some(Key::Int(k0).stable_hash()), |_| ());
        assert_eq!(cell.vector().get(EdgeId(7)), 4);
        let vs = cell.stripe_vectors();
        assert_eq!(vs.len(), 2);
        assert_eq!(vs[0].get(EdgeId(7)).max(vs[1].get(EdgeId(7))), 10);
    }

    #[test]
    fn with_merged_roundtrips_striped_contents() {
        let cell = StateCell::new_striped(StateType::Table, 4, PartitionDim::Row, Some(8));
        for i in 0..30i64 {
            let key = Key::Int(i);
            cell.apply_routed(EdgeId(0), (i + 1) as u64, Some(key.stable_hash()), |s| {
                s.as_table().unwrap().put(key.clone(), Value::Int(i * 2));
            });
        }
        let len = cell
            .with_merged(|store| {
                let t = store.as_table().unwrap();
                t.put(Key::Int(999), Value::Int(999));
                t.len()
            })
            .unwrap();
        assert_eq!(len, 31);
        // The bulk write is visible through the routed path afterwards.
        let key = Key::Int(999);
        let found = cell.with_routed(Some(key.stable_hash()), |inner| {
            inner.store.as_table().unwrap().get(&key)
        });
        assert_eq!(found, Some(Value::Int(999)));
        // Tracking was re-enabled all-dirty by the re-split.
        assert_eq!(cell.pending_dirty_chunks(), 4 * 8);
    }

    #[test]
    fn merge_additive_folds_partial_replica_in() {
        // Survivor and victim hold independent partial counts; after the
        // merge the survivor holds the element-wise sum, and its watermark
        // covers both replicas' applied input.
        let survivor = StateCell::new(StateType::Table);
        survivor.apply(EdgeId(1), 3, |s| {
            s.as_table().unwrap().put(Key::Int(1), Value::Int(5));
            s.as_table().unwrap().put(Key::Int(2), Value::Int(1));
        });
        let victim = StateCell::new(StateType::Table);
        victim.apply(EdgeId(1), 7, |s| {
            s.as_table().unwrap().put(Key::Int(1), Value::Int(2));
            s.as_table().unwrap().put(Key::Int(9), Value::Int(4));
        });
        let (entries, vector) = victim.export_merged();
        survivor.merge_additive(&entries, &vector).unwrap();
        survivor.with(|inner| {
            let t = inner.store.as_table().unwrap();
            assert_eq!(t.get(&Key::Int(1)), Some(Value::Int(7)));
            assert_eq!(t.get(&Key::Int(2)), Some(Value::Int(1)));
            assert_eq!(t.get(&Key::Int(9)), Some(Value::Int(4)));
        });
        assert_eq!(survivor.vector().get(EdgeId(1)), 7);
    }

    #[test]
    fn merge_additive_respects_stripe_routing() {
        let cell = StateCell::new_striped(StateType::Table, 4, PartitionDim::Row, Some(8));
        for i in 0..20i64 {
            let key = Key::Int(i);
            cell.apply_routed(EdgeId(0), (i + 1) as u64, Some(key.stable_hash()), |s| {
                s.as_table().unwrap().put(key.clone(), Value::Int(1));
            });
        }
        let mut incoming = StateStore::new(StateType::Table);
        for i in 0..20i64 {
            incoming
                .as_table()
                .unwrap()
                .put(Key::Int(i), Value::Int(10));
        }
        cell.merge_additive(&incoming.export_entries(), &VectorTs::new())
            .unwrap();
        for i in 0..20i64 {
            let key = Key::Int(i);
            let found = cell.with_routed(Some(key.stable_hash()), |inner| {
                inner.store.as_table().unwrap().get(&key)
            });
            assert_eq!(found, Some(Value::Int(11)));
        }
        // The re-split re-enabled tracking all-dirty.
        assert_eq!(cell.pending_dirty_chunks(), 4 * 8);
    }

    #[test]
    fn export_merged_and_replace_roundtrip() {
        let cell = StateCell::new_striped(StateType::Table, 3, PartitionDim::Row, None);
        for i in 0..20i64 {
            let key = Key::Int(i);
            cell.apply_routed(EdgeId(2), (i + 1) as u64, Some(key.stable_hash()), |s| {
                s.as_table().unwrap().put(key.clone(), Value::Int(i));
            });
        }
        let (entries, vector) = cell.export_merged();
        assert_eq!(entries.len(), 20);
        assert_eq!(vector.get(EdgeId(2)), 20);
        let mut rebuilt = StateStore::new(StateType::Table);
        rebuilt.import_entries(&entries).unwrap();
        let other = StateCell::new_striped(StateType::Table, 5, PartitionDim::Row, None);
        other.replace(rebuilt, vector.clone()).unwrap();
        assert_eq!(other.vector().get(EdgeId(2)), 20);
        for i in 0..20i64 {
            let key = Key::Int(i);
            let found = other.with_routed(Some(key.stable_hash()), |inner| {
                inner.store.as_table().unwrap().get(&key)
            });
            assert_eq!(found, Some(Value::Int(i)));
        }
    }
}

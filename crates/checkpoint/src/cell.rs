//! The shared cell wrapping one SE instance.
//!
//! Worker threads and the checkpoint coordinator share SE instances through
//! a [`StateCell`]: a mutex around the [`StateStore`] plus the vector
//! timestamp of applied input. The asynchronous checkpoint protocol holds
//! the lock only for snapshot initiation and consolidation; processing and
//! serialisation overlap.

use parking_lot::Mutex;
use sdg_common::ids::EdgeId;
use sdg_common::time::{ScalarTs, VectorTs};
use sdg_state::store::{StateStore, StateType};

/// The lock-protected contents of a cell.
#[derive(Debug)]
pub struct CellInner {
    /// The SE data structure.
    pub store: StateStore,
    /// Last applied timestamp per input dataflow.
    pub vector: VectorTs,
}

/// One SE instance shared between processing and checkpointing.
#[derive(Debug)]
pub struct StateCell {
    inner: Mutex<CellInner>,
}

impl StateCell {
    /// Creates a cell holding an empty store of type `ty`.
    pub fn new(ty: StateType) -> Self {
        Self::from_store(StateStore::new(ty), VectorTs::new())
    }

    /// Creates a cell from an existing store and vector (used on restore).
    pub fn from_store(store: StateStore, vector: VectorTs) -> Self {
        StateCell {
            inner: Mutex::new(CellInner { store, vector }),
        }
    }

    /// Runs `f` with the cell locked.
    ///
    /// Workers use this per item: check duplicates, mutate the store, then
    /// advance the vector.
    pub fn with<R>(&self, f: impl FnOnce(&mut CellInner) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Applies one input item: returns `false` without calling `f` if the
    /// item is a duplicate (already covered by the vector), otherwise runs
    /// `f` and advances the watermark.
    pub fn apply<R>(
        &self,
        edge: EdgeId,
        ts: ScalarTs,
        f: impl FnOnce(&mut StateStore) -> R,
    ) -> Option<R> {
        let mut inner = self.inner.lock();
        if inner.vector.is_duplicate(edge, ts) {
            return None;
        }
        let r = f(&mut inner.store);
        inner.vector.observe(edge, ts);
        Some(r)
    }

    /// Returns the current vector timestamp.
    pub fn vector(&self) -> VectorTs {
        self.inner.lock().vector.clone()
    }

    /// Returns the approximate state size in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.inner.lock().store.approx_bytes()
    }

    /// Returns the approximate bytes held by the dirty overlay (0 when no
    /// checkpoint is in flight).
    pub fn dirty_bytes(&self) -> usize {
        self.inner.lock().store.dirty_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdg_common::value::{Key, Value};

    #[test]
    fn apply_rejects_duplicates() {
        let cell = StateCell::new(StateType::Table);
        let edge = EdgeId(0);
        let applied = cell.apply(edge, 1, |s| {
            s.as_table().unwrap().put(Key::Int(1), Value::Int(1));
        });
        assert!(applied.is_some());
        // Replaying the same timestamp is a no-op.
        let replayed = cell.apply(edge, 1, |s| {
            s.as_table().unwrap().put(Key::Int(1), Value::Int(999));
        });
        assert!(replayed.is_none());
        cell.with(|inner| {
            assert_eq!(
                inner.store.as_table().unwrap().get(&Key::Int(1)),
                Some(Value::Int(1))
            );
        });
    }

    #[test]
    fn apply_tracks_per_edge_watermarks() {
        let cell = StateCell::new(StateType::Table);
        assert!(cell.apply(EdgeId(0), 5, |_| ()).is_some());
        // A different edge has its own watermark.
        assert!(cell.apply(EdgeId(1), 3, |_| ()).is_some());
        assert!(cell.apply(EdgeId(0), 3, |_| ()).is_none());
        assert_eq!(cell.vector().get(EdgeId(0)), 5);
        assert_eq!(cell.vector().get(EdgeId(1)), 3);
    }

    #[test]
    fn with_gives_exclusive_access() {
        let cell = StateCell::new(StateType::Vector);
        cell.with(|inner| inner.store.as_vector().unwrap().set(9, 1.0));
        assert_eq!(cell.approx_bytes(), 80);
    }
}

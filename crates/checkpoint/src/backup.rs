//! Backup stores: the simulated per-node disks checkpoints stream to.
//!
//! A [`BackupStore`] is the substitute for one node's local disk. Chunks
//! are written and read with an optional bandwidth throttle so the m-to-n
//! experiments (Fig. 11) exhibit real disk-parallelism effects: reading a
//! checkpoint from two stores is roughly twice as fast as from one.
//!
//! Durability hardening: every chunk is persisted inside a checksummed
//! frame (magic + CRC32 + payload) that is verified on read, on-disk
//! writes go through a write-temp-then-rename protocol so a crash mid
//! write never clobbers the previous generation, and both paths retry
//! transient I/O errors with bounded backoff. A deterministic
//! [`StoreFaultSpec`] can inject read/write errors and torn writes for
//! chaos testing.

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::Duration;

use bytes::BytesMut;
use parking_lot::Mutex;
use sdg_common::codec::{write_varint, Reader};
use sdg_common::error::{SdgError, SdgResult};
use sdg_common::ids::{EdgeId, InstanceId};
use sdg_common::time::VectorTs;
use sdg_state::entry::StateEntry;
use sdg_state::store::StateType;

use crate::buffer::BufferedItem;

/// Identifies one chunk of one checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkKey {
    /// The checkpointed SE instance.
    pub instance: InstanceId,
    /// Checkpoint sequence number of that instance.
    pub seq: u64,
    /// Chunk index within the checkpoint.
    pub chunk: u32,
}

impl std::fmt::Display for ChunkKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-c{}-k{}", self.instance, self.seq, self.chunk)
    }
}

#[derive(Debug)]
enum Medium {
    Memory(Mutex<HashMap<ChunkKey, Vec<u8>>>),
    Disk(PathBuf),
}

/// Magic prefix of a persisted chunk frame (`b"SDGC"`).
const FRAME_MAGIC: [u8; 4] = *b"SDGC";
/// Bytes of frame overhead: 4 magic + 4 CRC32 (little-endian).
const FRAME_HEADER: usize = 8;

/// CRC32 (IEEE 802.3 polynomial, reflected) of `bytes`, computed with a
/// compile-time table — no external dependency.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Wraps a chunk payload in the persisted frame: magic, CRC32 of the
/// payload, payload.
fn frame_chunk(payload: &[u8]) -> Vec<u8> {
    let mut framed = Vec::with_capacity(FRAME_HEADER + payload.len());
    framed.extend_from_slice(&FRAME_MAGIC);
    framed.extend_from_slice(&crc32(payload).to_le_bytes());
    framed.extend_from_slice(payload);
    framed
}

/// Verifies and strips the frame, classifying truncation, a foreign
/// prefix, and a checksum mismatch as corruption.
fn unframe_chunk(key: ChunkKey, framed: &[u8]) -> SdgResult<Vec<u8>> {
    if framed.len() < FRAME_HEADER {
        return Err(SdgError::Recovery(format!(
            "chunk {key} corrupt: truncated frame ({} bytes)",
            framed.len()
        )));
    }
    if framed[..4] != FRAME_MAGIC {
        return Err(SdgError::Recovery(format!(
            "chunk {key} corrupt: bad frame magic"
        )));
    }
    let stored = u32::from_le_bytes([framed[4], framed[5], framed[6], framed[7]]);
    let payload = &framed[FRAME_HEADER..];
    let actual = crc32(payload);
    if stored != actual {
        return Err(SdgError::Recovery(format!(
            "chunk {key} corrupt: checksum mismatch (stored {stored:#010x}, computed {actual:#010x})"
        )));
    }
    Ok(payload.to_vec())
}

/// Deterministic fault-injection plan for one [`BackupStore`].
///
/// Counters are per store and strictly ordinal, so a given spec produces
/// the same fault sequence on every run: `write_error_every = n` fails
/// write attempts `n, 2n, 3n, …` with a *transient* I/O error (a retry —
/// which is attempt `n+1` — succeeds), while `n = 1` fails every attempt,
/// modelling a *persistent* fault. `torn_write_every` tears the
/// corresponding successful writes: only a truncated prefix of the frame
/// is persisted, yet the call reports success — exactly a torn disk
/// write, detected later by the read-side checksum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreFaultSpec {
    /// Fail every Nth write attempt (0 = never, 1 = always/persistent).
    pub write_error_every: u64,
    /// Fail every Nth read attempt (0 = never, 1 = always/persistent).
    pub read_error_every: u64,
    /// Tear every Nth otherwise-successful write (0 = never).
    pub torn_write_every: u64,
}

impl StoreFaultSpec {
    /// `true` when the spec injects nothing.
    pub fn is_noop(&self) -> bool {
        self.write_error_every == 0 && self.read_error_every == 0 && self.torn_write_every == 0
    }
}

#[derive(Debug, Default)]
struct FaultState {
    spec: StoreFaultSpec,
    writes: AtomicU64,
    reads: AtomicU64,
    committed: AtomicU64,
}

impl FaultState {
    fn every(counter: &AtomicU64, n: u64) -> bool {
        if n == 0 {
            return false;
        }
        let tick = counter.fetch_add(1, Ordering::Relaxed) + 1;
        tick.is_multiple_of(n)
    }
}

/// Bounded retry policy for transient store I/O errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included); minimum 1.
    pub attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base_backoff: Duration::from_millis(1),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            base_backoff: Duration::ZERO,
        }
    }
}

/// One backup target ("disk" of a node).
#[derive(Debug)]
pub struct BackupStore {
    medium: Medium,
    write_bps: Option<u64>,
    read_bps: Option<u64>,
    retry: RetryPolicy,
    faults: Option<FaultState>,
    retried: AtomicU64,
}

impl BackupStore {
    /// Creates an in-memory store (a RAM disk).
    pub fn in_memory() -> Self {
        BackupStore {
            medium: Medium::Memory(Mutex::new(HashMap::new())),
            write_bps: None,
            read_bps: None,
            retry: RetryPolicy::default(),
            faults: None,
            retried: AtomicU64::new(0),
        }
    }

    /// Creates a store backed by files under `dir`.
    pub fn on_disk(dir: impl Into<PathBuf>) -> SdgResult<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| SdgError::Recovery(format!("cannot create backup dir: {e}")))?;
        Ok(BackupStore {
            medium: Medium::Disk(dir),
            write_bps: None,
            read_bps: None,
            retry: RetryPolicy::default(),
            faults: None,
            retried: AtomicU64::new(0),
        })
    }

    /// Sets a simulated write/read bandwidth in bytes per second.
    pub fn with_bandwidth(mut self, write_bps: Option<u64>, read_bps: Option<u64>) -> Self {
        self.write_bps = write_bps;
        self.read_bps = read_bps;
        self
    }

    /// Sets the transient-error retry policy (default: 3 attempts with
    /// 1 ms doubling backoff).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Installs a deterministic fault-injection plan.
    pub fn with_faults(mut self, spec: StoreFaultSpec) -> Self {
        self.faults = if spec.is_noop() {
            None
        } else {
            Some(FaultState {
                spec,
                ..FaultState::default()
            })
        };
        self
    }

    /// Number of I/O attempts that failed transiently and were retried.
    pub fn retried_ops(&self) -> u64 {
        self.retried.load(Ordering::Relaxed)
    }

    fn throttle(bps: Option<u64>, len: usize) {
        if let Some(bps) = bps {
            if bps > 0 && len > 0 {
                let secs = len as f64 / bps as f64;
                thread::sleep(Duration::from_secs_f64(secs));
            }
        }
    }

    /// Runs `op` under the store's retry policy: transient errors back
    /// off (doubling from `base_backoff`) and retry up to `attempts`
    /// times; any other error — and the last transient one — is returned.
    fn with_retries<T>(&self, mut op: impl FnMut(u32) -> SdgResult<T>) -> SdgResult<T> {
        let attempts = self.retry.attempts.max(1);
        let mut backoff = self.retry.base_backoff;
        for attempt in 1..=attempts {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempt < attempts => {
                    self.retried.fetch_add(1, Ordering::Relaxed);
                    if !backoff.is_zero() {
                        thread::sleep(backoff);
                        backoff = backoff.saturating_mul(2);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("loop returns on the last attempt")
    }

    /// Persists `framed` bytes for `key`. Disk writes go to a `.tmp`
    /// sibling first and are renamed into place, so a crash mid write
    /// leaves either the old generation or the new one — never a partial
    /// file under the final name.
    fn persist(&self, key: ChunkKey, framed: Vec<u8>) -> SdgResult<()> {
        match &self.medium {
            Medium::Memory(map) => {
                map.lock().insert(key, framed);
                Ok(())
            }
            Medium::Disk(dir) => {
                let tmp = dir.join(format!("{key}.tmp"));
                let dst = dir.join(key.to_string());
                fs::write(&tmp, framed).map_err(|e| {
                    SdgError::io_transient(format!("chunk {key} write failed: {e}"))
                })?;
                fs::rename(&tmp, &dst).map_err(|e| {
                    let _ = fs::remove_file(&tmp);
                    SdgError::io_transient(format!("chunk {key} rename failed: {e}"))
                })
            }
        }
    }

    /// Writes a chunk, applying the simulated write bandwidth. The
    /// payload is framed with a CRC32 checksum; transient failures
    /// (injected or real) are retried per the store's [`RetryPolicy`].
    pub fn write_chunk(&self, key: ChunkKey, bytes: Vec<u8>) -> SdgResult<()> {
        Self::throttle(self.write_bps, bytes.len());
        let framed = frame_chunk(&bytes);
        self.with_retries(|attempt| {
            if let Some(faults) = &self.faults {
                if FaultState::every(&faults.writes, faults.spec.write_error_every) {
                    return Err(SdgError::Io {
                        transient: faults.spec.write_error_every > 1,
                        message: format!("injected write fault on chunk {key} (attempt {attempt})"),
                    });
                }
                if FaultState::every(&faults.committed, faults.spec.torn_write_every) {
                    // A torn write persists a truncated frame but still
                    // reports success to the writer.
                    let cut = framed.len() / 2;
                    return self.persist(key, framed[..cut].to_vec());
                }
            }
            self.persist(key, framed.clone())
        })
    }

    /// Reads a chunk back, applying the simulated read bandwidth. The
    /// frame checksum is verified; a mismatch (torn or bit-flipped
    /// chunk) surfaces as a non-retryable corruption error.
    pub fn read_chunk(&self, key: ChunkKey) -> SdgResult<Vec<u8>> {
        let framed = self.with_retries(|attempt| {
            if let Some(faults) = &self.faults {
                if FaultState::every(&faults.reads, faults.spec.read_error_every) {
                    return Err(SdgError::Io {
                        transient: faults.spec.read_error_every > 1,
                        message: format!("injected read fault on chunk {key} (attempt {attempt})"),
                    });
                }
            }
            match &self.medium {
                Medium::Memory(map) => map
                    .lock()
                    .get(&key)
                    .cloned()
                    .ok_or_else(|| SdgError::Recovery(format!("chunk {key} not found"))),
                Medium::Disk(dir) => fs::read(dir.join(key.to_string())).map_err(|e| {
                    if e.kind() == std::io::ErrorKind::NotFound {
                        SdgError::Recovery(format!("chunk {key} not found"))
                    } else {
                        SdgError::io_transient(format!("chunk {key} read failed: {e}"))
                    }
                }),
            }
        })?;
        let payload = unframe_chunk(key, &framed)?;
        Self::throttle(self.read_bps, payload.len());
        Ok(payload)
    }

    /// Truncates a stored chunk's frame in place (chaos/test tooling):
    /// the next read fails its checksum like a torn write would.
    pub fn truncate_chunk(&self, key: ChunkKey) -> SdgResult<()> {
        self.mutate_chunk(key, |framed| framed.truncate(framed.len() / 2))
    }

    /// Flips one payload bit of a stored chunk in place (chaos/test
    /// tooling): the next read fails its checksum.
    pub fn flip_chunk_bit(&self, key: ChunkKey) -> SdgResult<()> {
        self.mutate_chunk(key, |framed| {
            let idx = framed.len() - 1;
            framed[idx] ^= 0x01;
        })
    }

    /// Deletes a stored chunk (chaos/test tooling): the next read reports
    /// it missing.
    pub fn delete_chunk(&self, key: ChunkKey) -> SdgResult<()> {
        match &self.medium {
            Medium::Memory(map) => map
                .lock()
                .remove(&key)
                .map(|_| ())
                .ok_or_else(|| SdgError::Recovery(format!("chunk {key} not found"))),
            Medium::Disk(dir) => fs::remove_file(dir.join(key.to_string()))
                .map_err(|e| SdgError::Recovery(format!("chunk {key} delete failed: {e}"))),
        }
    }

    fn mutate_chunk(&self, key: ChunkKey, f: impl FnOnce(&mut Vec<u8>)) -> SdgResult<()> {
        match &self.medium {
            Medium::Memory(map) => {
                let mut map = map.lock();
                let framed = map
                    .get_mut(&key)
                    .ok_or_else(|| SdgError::Recovery(format!("chunk {key} not found")))?;
                f(framed);
                Ok(())
            }
            Medium::Disk(dir) => {
                let path = dir.join(key.to_string());
                let mut framed = fs::read(&path)
                    .map_err(|e| SdgError::Recovery(format!("chunk {key} read failed: {e}")))?;
                f(&mut framed);
                fs::write(&path, framed)
                    .map_err(|e| SdgError::Recovery(format!("chunk {key} write failed: {e}")))
            }
        }
    }

    /// Removes chunks of checkpoints older than `keep_seq` for `instance`.
    pub fn garbage_collect(&self, instance: InstanceId, keep_seq: u64) {
        match &self.medium {
            Medium::Memory(map) => {
                map.lock()
                    .retain(|k, _| k.instance != instance || k.seq >= keep_seq);
            }
            Medium::Disk(dir) => {
                let prefix_owner = format!("{instance}-c");
                if let Ok(entries) = fs::read_dir(dir) {
                    for entry in entries.flatten() {
                        let name = entry.file_name().to_string_lossy().into_owned();
                        if let Some(rest) = name.strip_prefix(&prefix_owner) {
                            if let Some((seq, _)) = rest.split_once("-k") {
                                if seq.parse::<u64>().is_ok_and(|s| s < keep_seq) {
                                    let _ = fs::remove_file(entry.path());
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Generation header for incremental checkpoints.
///
/// An incremental chain is one *base* generation (every chunk of the delta
/// chunk-space written) followed by delta generations that re-write only
/// the chunks dirtied since the previous completed checkpoint. Each chunk
/// is written whole, so restore composes the chain newest-wins per chunk
/// id — no tombstones are needed (a key deleted from a chunk is simply
/// absent from the chunk's newest copy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaMeta {
    /// `true` for a full base generation that starts a chain.
    pub base: bool,
    /// Size of the dirty-tracking chunk space (constant along a chain).
    pub chunk_space: usize,
}

/// The durable record of one completed checkpoint: where its chunks live
/// plus the metadata needed for replay-based recovery.
#[derive(Debug, Clone)]
pub struct BackupSet {
    /// Checkpointed instance.
    pub instance: InstanceId,
    /// Sequence number.
    pub seq: u64,
    /// Structure type of the checkpointed store.
    pub state_type: StateType,
    /// Cell-level vector timestamp at snapshot time (pointwise minimum
    /// across stripes; the safe watermark for trimming and replay).
    pub vector: VectorTs,
    /// Exact per-stripe vectors at snapshot time. Restore re-creates each
    /// stripe with its own vector so replayed items are deduplicated
    /// precisely (a merged vector would either double-apply or drop items).
    pub stripe_vectors: Vec<VectorTs>,
    /// For each written chunk: the index of the store holding it, and its
    /// key (whose `chunk` field is the chunk id).
    pub chunk_locations: Vec<(usize, ChunkKey)>,
    /// The instance's output buffers at snapshot time.
    ///
    /// Always sealed to [`BufferedPayload::Encoded`] wire bytes by the
    /// coordinator's persist phase, regardless of whether the runtime
    /// logged them live (deferred encoding) or pre-encoded (eager
    /// baseline) — a persisted set is byte-identical in both modes.
    ///
    /// [`BufferedPayload::Encoded`]: crate::buffer::BufferedPayload::Encoded
    pub out_buffers: Vec<(EdgeId, Vec<BufferedItem>)>,
    /// Serialised state size in bytes (all chunks written by this
    /// generation).
    pub state_bytes: usize,
    /// Incremental-generation header; `None` for legacy full checkpoints.
    pub delta: Option<DeltaMeta>,
}

impl BackupSet {
    /// `true` when this set can start a restore chain on its own (legacy
    /// full checkpoints and incremental base generations).
    pub fn is_base(&self) -> bool {
        self.delta.as_ref().is_none_or(|d| d.base)
    }
}

/// Encodes a chunk of state entries.
pub fn encode_entries(entries: &[StateEntry]) -> Vec<u8> {
    let mut buf = BytesMut::new();
    write_varint(&mut buf, entries.len() as u64);
    for e in entries {
        write_varint(&mut buf, e.key.len() as u64);
        buf.extend_from_slice(&e.key);
        write_varint(&mut buf, e.value.len() as u64);
        buf.extend_from_slice(&e.value);
    }
    buf.to_vec()
}

/// Decodes a chunk of state entries.
pub fn decode_entries(bytes: &[u8]) -> SdgResult<Vec<StateEntry>> {
    let mut r = Reader::new(bytes);
    let count = r.read_varint()? as usize;
    if count > bytes.len() {
        return Err(SdgError::Codec(format!(
            "entry count {count} exceeds input"
        )));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let klen = r.read_varint()? as usize;
        let key = r.read_bytes(klen)?.to_vec();
        let vlen = r.read_varint()? as usize;
        let value = r.read_bytes(vlen)?.to_vec();
        out.push(StateEntry::new(key, value));
    }
    if !r.is_empty() {
        return Err(SdgError::Codec("trailing bytes after entries".into()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdg_common::ids::TaskId;
    use std::time::Instant;

    fn key(seq: u64, chunk: u32) -> ChunkKey {
        ChunkKey {
            instance: InstanceId::new(TaskId(1), 0),
            seq,
            chunk,
        }
    }

    #[test]
    fn memory_store_roundtrips() {
        let store = BackupStore::in_memory();
        store.write_chunk(key(1, 0), vec![1, 2, 3]).unwrap();
        assert_eq!(store.read_chunk(key(1, 0)).unwrap(), vec![1, 2, 3]);
        assert!(store.read_chunk(key(1, 1)).is_err());
    }

    #[test]
    fn disk_store_roundtrips() {
        let dir = std::env::temp_dir().join(format!("sdg-backup-test-{}", std::process::id()));
        let store = BackupStore::on_disk(&dir).unwrap();
        store.write_chunk(key(2, 3), vec![9; 100]).unwrap();
        assert_eq!(store.read_chunk(key(2, 3)).unwrap(), vec![9; 100]);
        store.garbage_collect(InstanceId::new(TaskId(1), 0), 3);
        assert!(store.read_chunk(key(2, 3)).is_err());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn garbage_collect_keeps_recent_and_other_instances() {
        let store = BackupStore::in_memory();
        store.write_chunk(key(1, 0), vec![1]).unwrap();
        store.write_chunk(key(2, 0), vec![2]).unwrap();
        let other = ChunkKey {
            instance: InstanceId::new(TaskId(9), 1),
            seq: 1,
            chunk: 0,
        };
        store.write_chunk(other, vec![3]).unwrap();
        store.garbage_collect(InstanceId::new(TaskId(1), 0), 2);
        assert!(store.read_chunk(key(1, 0)).is_err());
        assert!(store.read_chunk(key(2, 0)).is_ok());
        assert!(store.read_chunk(other).is_ok());
    }

    #[test]
    fn throttling_slows_writes() {
        let fast = BackupStore::in_memory();
        let slow = BackupStore::in_memory().with_bandwidth(Some(100_000), None);
        let payload = vec![0u8; 10_000]; // 0.1 s at 100 kB/s.

        let t0 = Instant::now();
        fast.write_chunk(key(1, 0), payload.clone()).unwrap();
        let fast_time = t0.elapsed();

        let t0 = Instant::now();
        slow.write_chunk(key(1, 0), payload).unwrap();
        let slow_time = t0.elapsed();

        assert!(slow_time >= Duration::from_millis(80), "{slow_time:?}");
        assert!(slow_time > fast_time);
    }

    #[test]
    fn entries_encode_decode_roundtrips() {
        let entries: Vec<StateEntry> = (0..50u8)
            .map(|i| StateEntry::new(vec![i], vec![i; i as usize % 7]))
            .collect();
        let bytes = encode_entries(&entries);
        let back = decode_entries(&bytes).unwrap();
        assert_eq!(back, entries);
        assert_eq!(decode_entries(&encode_entries(&[])).unwrap(), vec![]);
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // The canonical IEEE 802.3 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn truncated_chunk_is_detected_on_read() {
        let store = BackupStore::in_memory();
        store.write_chunk(key(1, 0), vec![7; 64]).unwrap();
        store.truncate_chunk(key(1, 0)).unwrap();
        let err = store.read_chunk(key(1, 0)).unwrap_err();
        assert!(err.to_string().contains("corrupt"), "{err}");
    }

    #[test]
    fn bit_flipped_chunk_fails_checksum() {
        let store = BackupStore::in_memory();
        store.write_chunk(key(1, 0), vec![7; 64]).unwrap();
        store.flip_chunk_bit(key(1, 0)).unwrap();
        let err = store.read_chunk(key(1, 0)).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn disk_corruption_is_detected_and_tmp_files_never_linger() {
        let dir =
            std::env::temp_dir().join(format!("sdg-backup-corrupt-test-{}", std::process::id()));
        let store = BackupStore::on_disk(&dir).unwrap();
        store.write_chunk(key(1, 0), vec![5; 128]).unwrap();
        let tmp_left = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .any(|e| e.file_name().to_string_lossy().ends_with(".tmp"));
        assert!(!tmp_left, "write must rename its temp file into place");
        store.truncate_chunk(key(1, 0)).unwrap();
        assert!(store.read_chunk(key(1, 0)).is_err());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn transient_faults_are_retried_away() {
        // Every 2nd write attempt fails; the default 3-attempt retry
        // policy absorbs each failure.
        let store = BackupStore::in_memory().with_faults(StoreFaultSpec {
            write_error_every: 2,
            read_error_every: 2,
            ..Default::default()
        });
        for i in 0..8 {
            store.write_chunk(key(1, i), vec![i as u8; 16]).unwrap();
        }
        for i in 0..8 {
            assert_eq!(store.read_chunk(key(1, i)).unwrap(), vec![i as u8; 16]);
        }
        assert!(store.retried_ops() > 0);
    }

    #[test]
    fn persistent_faults_exhaust_retries() {
        let store = BackupStore::in_memory().with_faults(StoreFaultSpec {
            write_error_every: 1,
            ..Default::default()
        });
        let err = store.write_chunk(key(1, 0), vec![1]).unwrap_err();
        assert!(!err.is_transient());
        assert!(err.to_string().contains("injected write fault"), "{err}");
        assert_eq!(store.retried_ops(), 0, "persistent faults are not retried");
    }

    #[test]
    fn torn_writes_report_success_but_fail_the_read_checksum() {
        let store = BackupStore::in_memory().with_faults(StoreFaultSpec {
            torn_write_every: 2,
            ..Default::default()
        });
        store.write_chunk(key(1, 0), vec![3; 100]).unwrap();
        store.write_chunk(key(1, 1), vec![4; 100]).unwrap(); // torn
        assert_eq!(store.read_chunk(key(1, 0)).unwrap(), vec![3; 100]);
        let err = store.read_chunk(key(1, 1)).unwrap_err();
        assert!(err.to_string().contains("corrupt"), "{err}");
    }

    #[test]
    fn corrupted_chunks_error_not_panic() {
        let entries = vec![StateEntry::new(vec![1, 2], vec![3])];
        let bytes = encode_entries(&entries);
        for cut in 0..bytes.len() {
            assert!(decode_entries(&bytes[..cut]).is_err());
        }
        let mut extended = bytes;
        extended.push(0);
        assert!(decode_entries(&extended).is_err());
    }
}

//! Backup stores: the simulated per-node disks checkpoints stream to.
//!
//! A [`BackupStore`] is the substitute for one node's local disk. Chunks
//! are written and read with an optional bandwidth throttle so the m-to-n
//! experiments (Fig. 11) exhibit real disk-parallelism effects: reading a
//! checkpoint from two stores is roughly twice as fast as from one.

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::thread;
use std::time::Duration;

use bytes::BytesMut;
use parking_lot::Mutex;
use sdg_common::codec::{write_varint, Reader};
use sdg_common::error::{SdgError, SdgResult};
use sdg_common::ids::{EdgeId, InstanceId};
use sdg_common::time::VectorTs;
use sdg_state::entry::StateEntry;
use sdg_state::store::StateType;

use crate::buffer::BufferedItem;

/// Identifies one chunk of one checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkKey {
    /// The checkpointed SE instance.
    pub instance: InstanceId,
    /// Checkpoint sequence number of that instance.
    pub seq: u64,
    /// Chunk index within the checkpoint.
    pub chunk: u32,
}

impl std::fmt::Display for ChunkKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-c{}-k{}", self.instance, self.seq, self.chunk)
    }
}

#[derive(Debug)]
enum Medium {
    Memory(Mutex<HashMap<ChunkKey, Vec<u8>>>),
    Disk(PathBuf),
}

/// One backup target ("disk" of a node).
#[derive(Debug)]
pub struct BackupStore {
    medium: Medium,
    write_bps: Option<u64>,
    read_bps: Option<u64>,
}

impl BackupStore {
    /// Creates an in-memory store (a RAM disk).
    pub fn in_memory() -> Self {
        BackupStore {
            medium: Medium::Memory(Mutex::new(HashMap::new())),
            write_bps: None,
            read_bps: None,
        }
    }

    /// Creates a store backed by files under `dir`.
    pub fn on_disk(dir: impl Into<PathBuf>) -> SdgResult<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| SdgError::Recovery(format!("cannot create backup dir: {e}")))?;
        Ok(BackupStore {
            medium: Medium::Disk(dir),
            write_bps: None,
            read_bps: None,
        })
    }

    /// Sets a simulated write/read bandwidth in bytes per second.
    pub fn with_bandwidth(mut self, write_bps: Option<u64>, read_bps: Option<u64>) -> Self {
        self.write_bps = write_bps;
        self.read_bps = read_bps;
        self
    }

    fn throttle(bps: Option<u64>, len: usize) {
        if let Some(bps) = bps {
            if bps > 0 && len > 0 {
                let secs = len as f64 / bps as f64;
                thread::sleep(Duration::from_secs_f64(secs));
            }
        }
    }

    /// Writes a chunk, applying the simulated write bandwidth.
    pub fn write_chunk(&self, key: ChunkKey, bytes: Vec<u8>) -> SdgResult<()> {
        Self::throttle(self.write_bps, bytes.len());
        match &self.medium {
            Medium::Memory(map) => {
                map.lock().insert(key, bytes);
                Ok(())
            }
            Medium::Disk(dir) => fs::write(dir.join(key.to_string()), bytes)
                .map_err(|e| SdgError::Recovery(format!("chunk write failed: {e}"))),
        }
    }

    /// Reads a chunk back, applying the simulated read bandwidth.
    pub fn read_chunk(&self, key: ChunkKey) -> SdgResult<Vec<u8>> {
        let bytes = match &self.medium {
            Medium::Memory(map) => map
                .lock()
                .get(&key)
                .cloned()
                .ok_or_else(|| SdgError::Recovery(format!("chunk {key} not found")))?,
            Medium::Disk(dir) => fs::read(dir.join(key.to_string()))
                .map_err(|e| SdgError::Recovery(format!("chunk {key} read failed: {e}")))?,
        };
        Self::throttle(self.read_bps, bytes.len());
        Ok(bytes)
    }

    /// Removes chunks of checkpoints older than `keep_seq` for `instance`.
    pub fn garbage_collect(&self, instance: InstanceId, keep_seq: u64) {
        match &self.medium {
            Medium::Memory(map) => {
                map.lock()
                    .retain(|k, _| k.instance != instance || k.seq >= keep_seq);
            }
            Medium::Disk(dir) => {
                let prefix_owner = format!("{instance}-c");
                if let Ok(entries) = fs::read_dir(dir) {
                    for entry in entries.flatten() {
                        let name = entry.file_name().to_string_lossy().into_owned();
                        if let Some(rest) = name.strip_prefix(&prefix_owner) {
                            if let Some((seq, _)) = rest.split_once("-k") {
                                if seq.parse::<u64>().is_ok_and(|s| s < keep_seq) {
                                    let _ = fs::remove_file(entry.path());
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Generation header for incremental checkpoints.
///
/// An incremental chain is one *base* generation (every chunk of the delta
/// chunk-space written) followed by delta generations that re-write only
/// the chunks dirtied since the previous completed checkpoint. Each chunk
/// is written whole, so restore composes the chain newest-wins per chunk
/// id — no tombstones are needed (a key deleted from a chunk is simply
/// absent from the chunk's newest copy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaMeta {
    /// `true` for a full base generation that starts a chain.
    pub base: bool,
    /// Size of the dirty-tracking chunk space (constant along a chain).
    pub chunk_space: usize,
}

/// The durable record of one completed checkpoint: where its chunks live
/// plus the metadata needed for replay-based recovery.
#[derive(Debug, Clone)]
pub struct BackupSet {
    /// Checkpointed instance.
    pub instance: InstanceId,
    /// Sequence number.
    pub seq: u64,
    /// Structure type of the checkpointed store.
    pub state_type: StateType,
    /// Cell-level vector timestamp at snapshot time (pointwise minimum
    /// across stripes; the safe watermark for trimming and replay).
    pub vector: VectorTs,
    /// Exact per-stripe vectors at snapshot time. Restore re-creates each
    /// stripe with its own vector so replayed items are deduplicated
    /// precisely (a merged vector would either double-apply or drop items).
    pub stripe_vectors: Vec<VectorTs>,
    /// For each written chunk: the index of the store holding it, and its
    /// key (whose `chunk` field is the chunk id).
    pub chunk_locations: Vec<(usize, ChunkKey)>,
    /// The instance's output buffers at snapshot time.
    ///
    /// Always sealed to [`BufferedPayload::Encoded`] wire bytes by the
    /// coordinator's persist phase, regardless of whether the runtime
    /// logged them live (deferred encoding) or pre-encoded (eager
    /// baseline) — a persisted set is byte-identical in both modes.
    ///
    /// [`BufferedPayload::Encoded`]: crate::buffer::BufferedPayload::Encoded
    pub out_buffers: Vec<(EdgeId, Vec<BufferedItem>)>,
    /// Serialised state size in bytes (all chunks written by this
    /// generation).
    pub state_bytes: usize,
    /// Incremental-generation header; `None` for legacy full checkpoints.
    pub delta: Option<DeltaMeta>,
}

impl BackupSet {
    /// `true` when this set can start a restore chain on its own (legacy
    /// full checkpoints and incremental base generations).
    pub fn is_base(&self) -> bool {
        self.delta.as_ref().is_none_or(|d| d.base)
    }
}

/// Encodes a chunk of state entries.
pub fn encode_entries(entries: &[StateEntry]) -> Vec<u8> {
    let mut buf = BytesMut::new();
    write_varint(&mut buf, entries.len() as u64);
    for e in entries {
        write_varint(&mut buf, e.key.len() as u64);
        buf.extend_from_slice(&e.key);
        write_varint(&mut buf, e.value.len() as u64);
        buf.extend_from_slice(&e.value);
    }
    buf.to_vec()
}

/// Decodes a chunk of state entries.
pub fn decode_entries(bytes: &[u8]) -> SdgResult<Vec<StateEntry>> {
    let mut r = Reader::new(bytes);
    let count = r.read_varint()? as usize;
    if count > bytes.len() {
        return Err(SdgError::Codec(format!(
            "entry count {count} exceeds input"
        )));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let klen = r.read_varint()? as usize;
        let key = r.read_bytes(klen)?.to_vec();
        let vlen = r.read_varint()? as usize;
        let value = r.read_bytes(vlen)?.to_vec();
        out.push(StateEntry::new(key, value));
    }
    if !r.is_empty() {
        return Err(SdgError::Codec("trailing bytes after entries".into()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdg_common::ids::TaskId;
    use std::time::Instant;

    fn key(seq: u64, chunk: u32) -> ChunkKey {
        ChunkKey {
            instance: InstanceId::new(TaskId(1), 0),
            seq,
            chunk,
        }
    }

    #[test]
    fn memory_store_roundtrips() {
        let store = BackupStore::in_memory();
        store.write_chunk(key(1, 0), vec![1, 2, 3]).unwrap();
        assert_eq!(store.read_chunk(key(1, 0)).unwrap(), vec![1, 2, 3]);
        assert!(store.read_chunk(key(1, 1)).is_err());
    }

    #[test]
    fn disk_store_roundtrips() {
        let dir = std::env::temp_dir().join(format!("sdg-backup-test-{}", std::process::id()));
        let store = BackupStore::on_disk(&dir).unwrap();
        store.write_chunk(key(2, 3), vec![9; 100]).unwrap();
        assert_eq!(store.read_chunk(key(2, 3)).unwrap(), vec![9; 100]);
        store.garbage_collect(InstanceId::new(TaskId(1), 0), 3);
        assert!(store.read_chunk(key(2, 3)).is_err());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn garbage_collect_keeps_recent_and_other_instances() {
        let store = BackupStore::in_memory();
        store.write_chunk(key(1, 0), vec![1]).unwrap();
        store.write_chunk(key(2, 0), vec![2]).unwrap();
        let other = ChunkKey {
            instance: InstanceId::new(TaskId(9), 1),
            seq: 1,
            chunk: 0,
        };
        store.write_chunk(other, vec![3]).unwrap();
        store.garbage_collect(InstanceId::new(TaskId(1), 0), 2);
        assert!(store.read_chunk(key(1, 0)).is_err());
        assert!(store.read_chunk(key(2, 0)).is_ok());
        assert!(store.read_chunk(other).is_ok());
    }

    #[test]
    fn throttling_slows_writes() {
        let fast = BackupStore::in_memory();
        let slow = BackupStore::in_memory().with_bandwidth(Some(100_000), None);
        let payload = vec![0u8; 10_000]; // 0.1 s at 100 kB/s.

        let t0 = Instant::now();
        fast.write_chunk(key(1, 0), payload.clone()).unwrap();
        let fast_time = t0.elapsed();

        let t0 = Instant::now();
        slow.write_chunk(key(1, 0), payload).unwrap();
        let slow_time = t0.elapsed();

        assert!(slow_time >= Duration::from_millis(80), "{slow_time:?}");
        assert!(slow_time > fast_time);
    }

    #[test]
    fn entries_encode_decode_roundtrips() {
        let entries: Vec<StateEntry> = (0..50u8)
            .map(|i| StateEntry::new(vec![i], vec![i; i as usize % 7]))
            .collect();
        let bytes = encode_entries(&entries);
        let back = decode_entries(&bytes).unwrap();
        assert_eq!(back, entries);
        assert_eq!(decode_entries(&encode_entries(&[])).unwrap(), vec![]);
    }

    #[test]
    fn corrupted_chunks_error_not_panic() {
        let entries = vec![StateEntry::new(vec![1, 2], vec![3])];
        let bytes = encode_entries(&entries);
        for cut in 0..bytes.len() {
            assert!(decode_entries(&bytes[..cut]).is_err());
        }
        let mut extended = bytes;
        extended.push(0);
        assert!(decode_entries(&extended).is_err());
    }
}

//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny API subset it actually uses: [`Mutex`] and [`RwLock`]
//! with `parking_lot`'s poison-free semantics, implemented on top of the
//! standard library locks. A poisoned std lock means a thread panicked
//! while holding it; like `parking_lot`, we simply continue with the data
//! as-is rather than propagating the poison.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock that does not poison on panic.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that does not poison on panic.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn locks_survive_a_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        assert_eq!(*m.lock(), 0);
    }
}

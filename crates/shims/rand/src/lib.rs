//! Offline stand-in for the `rand` crate.
//!
//! Provides a deterministic [`rngs::StdRng`] (splitmix64-seeded
//! xoshiro-style generator) with the [`Rng`]/[`SeedableRng`] trait subset
//! the workloads use: `gen`, `gen_range` over integer and float ranges,
//! and `gen_bool`. Not cryptographic; statistically fine for synthetic
//! workload generation.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing generator interface.
pub trait Rng {
    /// Returns the next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of a type with a standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples uniformly from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) as f32 * (self.end - self.start)
    }
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A deterministic 64-bit generator (xorshift* over a splitmix64 seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 scrambles small/sequential seeds into good state.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            StdRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64* (Marsaglia / Vigna).
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(1..=5);
            assert!((1..=5).contains(&w));
            let u: u8 = rng.gen_range(0..26u8);
            assert!(u < 26);
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        // Crude uniformity check: mean within [0.4, 0.6].
        assert!(
            (0.4..0.6).contains(&(sum / 1000.0)),
            "mean {}",
            sum / 1000.0
        );
    }
}

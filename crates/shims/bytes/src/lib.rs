//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`BytesMut`] (a thin wrapper over `Vec<u8>`) and the
//! [`BufMut`] write trait, covering the subset the SDG codec and
//! checkpoint buffers use. The zero-copy split/freeze machinery of the
//! real crate is intentionally absent — callers here only append and then
//! copy out.

use std::ops::{Deref, DerefMut};

/// A growable, appendable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub const fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// Creates an empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` if no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Clears the buffer, keeping its capacity.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Consumes the buffer, returning the underlying vector ("freezing"
    /// mirrors the real crate's name for finishing a write).
    pub fn freeze(self) -> Vec<u8> {
        self.inner
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> Self {
        BytesMut { inner }
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(buf: BytesMut) -> Self {
        buf.inner
    }
}

/// Append-only primitive writers (little-endian where sized).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends a `u32` little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a `u64` little-endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appends_and_reads_back() {
        let mut b = BytesMut::new();
        b.put_u8(1);
        b.put_slice(&[2, 3]);
        b.extend_from_slice(&[4]);
        assert_eq!(b.len(), 4);
        assert_eq!(&b[..], &[1, 2, 3, 4]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4]);
        assert_eq!(b.freeze(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn vec_also_implements_bufmut() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u32_le(0x0102_0304);
        assert_eq!(v, vec![4, 3, 2, 1]);
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the subset of proptest the workspace's property tests use:
//!
//! - the [`proptest!`] macro with `#![proptest_config(..)]`, multiple
//!   `#[test] fn name(pat in strategy, ..) { .. }` items;
//! - [`strategy::Strategy`] with `prop_map`, `prop_filter`,
//!   `prop_recursive` and `boxed`;
//! - [`prop_oneof!`], [`Just`], [`any`] for common scalars, numeric
//!   ranges, tuples, `prop::collection::vec`, and simple
//!   `"[class]{m,n}"` regex string strategies;
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Differences from real proptest: generation is deterministic per test
//! (seeded from the test name), there is **no shrinking**, and failures
//! report the failing iteration rather than a minimised case.

pub mod strategy;
pub mod test_runner;

/// Namespace mirror of `proptest::prop` (collections, etc.).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
    /// Fixed-size array strategies.
    pub mod array {
        pub use crate::strategy::{uniform2, uniform3, uniform4};
    }
    /// Sampling strategies.
    pub mod sample {
        pub use crate::strategy::select;
    }
}

/// Re-export surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, vec as prop_vec, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the test case
/// (without panicking the generator loop) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Rejects the current generated case (it does not count towards `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Chooses between several strategies with the same value type: uniformly
/// for plain arms, proportionally for `weight => strategy` arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines property tests. See the crate docs for supported forms.
#[macro_export]
macro_rules! proptest {
    // NB: the internal rule must precede the catch-all, which would
    // otherwise re-match `@with_config ...` forever.
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                let mut iteration: u64 = 0;
                while accepted < config.cases {
                    iteration += 1;
                    let outcome = {
                        $(let $pat = ($strategy).generate(&mut rng);)+
                        (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            { $body }
                            ::std::result::Result::Ok(())
                        })()
                    };
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => {
                            rejected += 1;
                            assert!(
                                rejected < config.cases.saturating_mul(256).max(1024),
                                "too many prop_assume rejections ({rejected}) in `{}`",
                                stringify!($name),
                            );
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "property `{}` failed at iteration {iteration}: {msg}",
                                stringify!($name),
                            );
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

pub use strategy::{any, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

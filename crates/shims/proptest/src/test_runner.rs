//! Test-loop plumbing: configuration, case outcomes, and the
//! deterministic generator behind every strategy.

/// Configuration accepted by `#![proptest_config(..)]`.
///
/// Only `cases` changes behaviour; the other fields exist so call sites
/// written against real proptest (`.. ProptestConfig::default()`) keep
/// meaningful struct-update syntax.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of *accepted* cases to run per property.
    pub cases: u32,
    /// Upper bound on `prop_assume` rejections before the run aborts.
    pub max_global_rejects: u32,
    /// Unused (no shrinking in this implementation).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// A default configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Outcome of one generated case, produced by the `prop_assert*` /
/// `prop_assume!` macros.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case does not satisfy an assumption; generate another.
    Reject,
    /// The property is false for this case.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure with the given message (mirrors the upstream
    /// `TestCaseError::fail` constructor).
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Deterministic 64-bit generator (xorshift64*), seeded from the test
/// name so each property explores a stable but distinct sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary string (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Seeds the generator from a raw 64-bit value.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed | 1 }
    }

    /// Returns the next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform `usize` in `[lo, hi)`; the range must be non-empty.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty usize range");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform `i128` in `[lo, hi)`; the range must be non-empty.
    pub fn i128_in(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo < hi, "empty integer range");
        let span = (hi - lo) as u128;
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        lo + (wide % span) as i128
    }

    /// Uniform `f64` in `[0, 1)` with 53 mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("prop_x");
        let mut b = TestRng::from_name("prop_x");
        let mut c = TestRng::from_name("prop_y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(99);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let v = rng.i128_in(-5, 5);
            assert!((-5..5).contains(&v));
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}

//! Value-generation strategies: the [`Strategy`] trait, combinators, and
//! the built-in strategies the workspace's property tests rely on
//! (scalars via [`any`], numeric ranges, tuples, `Just`, unions,
//! collections, and a `[class]{m,n}` regex subset for `&str`).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// Generates values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// returns a finished value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred`, retrying with fresh
    /// ones. Panics (citing `reason`) if acceptance looks impossible.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Builds a recursive strategy: `self` generates leaves and
    /// `recurse` wraps a strategy for depth `d` into one for depth
    /// `d + 1`. `_desired_size` / `_branch_size` are accepted for
    /// call-site compatibility but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut levels = vec![self.boxed()];
        for _ in 0..depth {
            let prev = levels.last().expect("at least the leaf level").clone();
            levels.push(recurse(prev).boxed());
        }
        Recursive { levels }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 10000 consecutive values: {}",
            self.reason
        );
    }
}

/// See [`Strategy::prop_recursive`]. Generates from a uniformly chosen
/// nesting level, so both shallow and deep values appear.
pub struct Recursive<T> {
    levels: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for Recursive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.levels.len() as u64) as usize;
        self.levels[idx].generate(rng)
    }
}

/// Uniform choice between strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

/// Weighted choice between strategies; built by `prop_oneof!` with
/// `weight => strategy` arms.
pub struct WeightedUnion<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> WeightedUnion<T> {
    /// Creates a weighted union over `arms` (total weight must be > 0).
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! weights must sum to > 0");
        WeightedUnion { arms, total }
    }
}

impl<T> Strategy for WeightedUnion<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut r = rng.below(self.total);
        for (w, arm) in &self.arms {
            if r < u64::from(*w) {
                return arm.generate(rng);
            }
            r -= u64::from(*w);
        }
        unreachable!("below(total) is always covered by some arm")
    }
}

/// Uniformly selects one of the given values; see [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].clone()
    }
}

/// Mirrors `proptest::sample::select`: a strategy yielding one of
/// `options` uniformly (must be non-empty).
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}

/// Fixed-size array of independently generated elements; see
/// [`uniform2`]/[`uniform3`]/[`uniform4`].
pub struct UniformArray<S, const N: usize>(S);

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|_| self.0.generate(rng))
    }
}

/// Mirrors `proptest::array::uniform2`.
pub fn uniform2<S: Strategy>(element: S) -> UniformArray<S, 2> {
    UniformArray(element)
}

/// Mirrors `proptest::array::uniform3`.
pub fn uniform3<S: Strategy>(element: S) -> UniformArray<S, 3> {
    UniformArray(element)
}

/// Mirrors `proptest::array::uniform4`.
pub fn uniform4<S: Strategy>(element: S) -> UniformArray<S, 4> {
    UniformArray(element)
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-range strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mix of ordinary magnitudes and special values, NaN included —
        // callers that cannot handle NaN filter it out explicitly.
        match rng.below(16) {
            0 => 0.0,
            1 => -0.0,
            2 => f64::INFINITY,
            3 => f64::NEG_INFINITY,
            4 => f64::NAN,
            5 => f64::MIN_POSITIVE,
            _ => {
                let mag = (rng.unit_f64() - 0.5) * 2.0; // [-1, 1)
                let exp = rng.i128_in(-60, 61) as i32;
                mag * (2.0f64).powi(exp)
            }
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-range strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.i128_in(self.start as i128, self.end as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.i128_in(*self.start() as i128, *self.end() as i128 + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Sizes accepted by [`vec`]: a fixed length, `lo..hi`, or `lo..=hi`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.usize_in(self.size.lo, self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Mirrors `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// `&str` literals act as regex strategies. Supported subset:
/// concatenations of `[class]{m,n}` / `[class]{m}` / `[class]` /
/// literal characters, where a class may contain ranges (`a-z`) and
/// literal characters (`-` last is literal).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self)
            .unwrap_or_else(|e| panic!("unsupported regex strategy {self:?}: {e}"));
        let mut out = String::new();
        for piece in &pieces {
            let n = rng.usize_in(piece.min, piece.max + 1);
            for _ in 0..n {
                let idx = rng.below(piece.chars.len() as u64) as usize;
                out.push(piece.chars[idx]);
            }
        }
        out
    }
}

struct Piece {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pat: &str) -> Result<Vec<Piece>, String> {
    let chars: Vec<char> = pat.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let alphabet = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .ok_or("unterminated character class")?
                + i;
            let set = parse_class(&chars[i + 1..close])?;
            i = close + 1;
            set
        } else if matches!(
            chars[i],
            '(' | ')' | '|' | '*' | '+' | '?' | '.' | '^' | '$'
        ) {
            return Err(format!("unsupported regex metacharacter '{}'", chars[i]));
        } else if chars[i] == '\\' {
            i += 1;
            let c = *chars.get(i).ok_or("dangling escape")?;
            i += 1;
            vec![c]
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .ok_or("unterminated repetition")?
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().map_err(|_| "bad repetition bound")?,
                    hi.trim().parse().map_err(|_| "bad repetition bound")?,
                ),
                None => {
                    let n: usize = body.trim().parse().map_err(|_| "bad repetition count")?;
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        if min > max {
            return Err("repetition lower bound exceeds upper bound".into());
        }
        if alphabet.is_empty() {
            return Err("empty character class".into());
        }
        pieces.push(Piece {
            chars: alphabet,
            min,
            max,
        });
    }
    Ok(pieces)
}

fn parse_class(body: &[char]) -> Result<Vec<char>, String> {
    let mut set = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if body[i] == '\\' {
            i += 1;
            set.push(*body.get(i).ok_or("dangling escape in class")?);
            i += 1;
        } else if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            if lo > hi {
                return Err(format!("inverted range {lo}-{hi}"));
            }
            for c in lo..=hi {
                set.push(c);
            }
            i += 3;
        } else {
            set.push(body[i]);
            i += 1;
        }
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(0xDEAD_BEEF)
    }

    #[test]
    fn regex_subset_respects_class_and_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z0-9]{0,16}".generate(&mut r);
            assert!(s.len() <= 16);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));

            let t = "[a-zA-Z0-9 _:/-]{0,24}".generate(&mut r);
            assert!(t.len() <= 24);
            assert!(t
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " _:/-".contains(c)));

            let u = "[a-z]{1,8}".generate(&mut r);
            assert!((1..=8).contains(&u.len()));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut r = rng();
        let s = (0usize..3, -5i64..5)
            .prop_map(|(a, b)| a as i64 + b)
            .prop_filter("must be even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut r) % 2, 0);
        }
    }

    #[test]
    fn vec_sizes_and_recursive_depth() {
        let mut r = rng();
        let exact = vec(0i64..10, 6);
        assert_eq!(exact.generate(&mut r).len(), 6);

        let ranged = vec(any::<bool>(), 0..6);
        for _ in 0..50 {
            assert!(ranged.generate(&mut r).len() < 6);
        }

        // Depth-limited nesting: each level wraps values in a vec.
        let nested = (0i64..3)
            .prop_map(|n| vec![n])
            .prop_recursive(3, 48, 6, |inner| {
                inner.prop_map(|mut v: Vec<i64>| {
                    v.push(-1);
                    v
                })
            });
        for _ in 0..50 {
            let v = nested.generate(&mut r);
            assert!((1..=4).contains(&v.len()));
        }
    }

    #[test]
    fn weighted_union_respects_weights() {
        let mut r = rng();
        let u = WeightedUnion::new(vec![(9, Just(0usize).boxed()), (1, Just(1usize).boxed())]);
        let mut counts = [0u32; 2];
        for _ in 0..1000 {
            counts[u.generate(&mut r)] += 1;
        }
        // Both arms fire, and the 9:1 weighting is roughly respected.
        assert!(counts[1] > 0);
        assert!(counts[0] > counts[1] * 4, "counts: {counts:?}");
    }

    #[test]
    fn select_and_uniform_arrays() {
        let mut r = rng();
        let s = select(vec!["a", "b", "c"]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.generate(&mut r));
        }
        assert_eq!(seen.len(), 3);

        let arr = uniform3(-5i64..5);
        for _ in 0..50 {
            assert!(arr.generate(&mut r).iter().all(|v| (-5..5).contains(v)));
        }
        assert_eq!(uniform2(Just(7u8)).generate(&mut r), [7, 7]);
        assert_eq!(uniform4(Just(1u8)).generate(&mut r).len(), 4);
    }

    #[test]
    fn union_uses_every_arm() {
        let mut r = rng();
        let u = Union::new(vec![Just(1i64).boxed(), Just(2i64).boxed()]);
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[(u.generate(&mut r) - 1) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's `harness = false` benches
//! use: [`Criterion::benchmark_group`], chainable `warm_up_time` /
//! `measurement_time` / `sample_size`, `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Statistics are intentionally simple: each sample times a batch of
//! iterations and the report prints the median ns/iter with min/max.
//! There is no plotting, no saved baselines, and no outlier analysis.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting
/// benchmarked work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for a parameterised benchmark (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to bench closures; [`Bencher::iter`] runs and times the
/// workload.
pub struct Bencher<'a> {
    config: &'a GroupConfig,
    /// Filled in by `iter`: (median, min, max) ns per iteration.
    result: Option<(f64, f64, f64)>,
}

impl Bencher<'_> {
    /// Times `routine`, first warming up, then collecting
    /// `sample_size` samples within the measurement budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent, scaling the
        // batch size up to keep timer overhead negligible.
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if Instant::now() >= warm_deadline {
                break;
            }
            if elapsed < Duration::from_millis(1) {
                batch = batch.saturating_mul(2).min(1 << 20);
            }
        }

        let samples = self.config.sample_size.max(2);
        let per_sample = self.config.measurement_time / samples as u32;
        let mut ns_per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let sample_deadline = Instant::now() + per_sample;
            let mut iters: u64 = 0;
            let start = Instant::now();
            loop {
                for _ in 0..batch {
                    black_box(routine());
                }
                iters += batch;
                if Instant::now() >= sample_deadline {
                    break;
                }
            }
            let total = start.elapsed().as_nanos() as f64;
            ns_per_iter.push(total / iters as f64);
        }
        ns_per_iter.sort_by(|a, b| a.partial_cmp(b).expect("elapsed times are finite"));
        let median = ns_per_iter[ns_per_iter.len() / 2];
        let min = ns_per_iter[0];
        let max = *ns_per_iter.last().expect("at least two samples");
        self.result = Some((median, min, max));
    }
}

#[derive(Debug, Clone)]
struct GroupConfig {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            sample_size: 20,
        }
    }
}

/// A named set of related benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: GroupConfig,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut bencher = Bencher {
            config: &self.config,
            result: None,
        };
        f(&mut bencher);
        report(&self.name, &id.to_string(), bencher.result);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let mut bencher = Bencher {
            config: &self.config,
            result: None,
        };
        f(&mut bencher, input);
        report(&self.name, &id.to_string(), bencher.result);
        self
    }

    /// Ends the group (reports stream as benches run, so this is a
    /// no-op kept for API compatibility).
    pub fn finish(self) {}
}

fn report(group: &str, bench: &str, result: Option<(f64, f64, f64)>) {
    match result {
        Some((median, min, max)) => println!(
            "{group}/{bench:<32} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max)
        ),
        None => println!("{group}/{bench:<32} (no measurement taken)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Benchmark driver; created by [`criterion_main!`] via `default()`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepts (and ignores) CLI arguments for compatibility with the
    /// real harness's `--bench` flags.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: GroupConfig::default(),
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    /// No-op kept for API compatibility.
    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_times_a_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(3);
        let mut ran = false;
        group.bench_function("add", |b| {
            b.iter(|| black_box(1u64) + black_box(2u64));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("multiply", 64).to_string(), "multiply/64");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}

//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`channel`] is provided: multi-producer multi-consumer channels
//! with clonable senders *and* receivers, bounded backpressure, timeouts
//! and disconnect detection — the subset the SDG runtime uses. The
//! implementation is a `Mutex<VecDeque>` with two condvars; adequate for
//! the worker fan-out sizes the runtime deploys (tens of threads), if not
//! for crossbeam's lock-free throughput.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        /// Signalled when an item is pushed (wakes receivers).
        not_empty: Condvar,
        /// Signalled when an item is popped or a side disconnects (wakes
        /// bounded senders).
        not_full: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned when sending on a channel with no receivers left.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait hit the deadline with the channel still empty.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded channel: `send` blocks while `cap` items queue.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                match inner.cap {
                    Some(cap) if inner.queue.len() >= cap => {
                        inner = self
                            .shared
                            .not_full
                            .wait(inner)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            inner.queue.push_back(value);
            drop(inner);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Number of queued items (racy, for monitoring only).
        pub fn len(&self) -> usize {
            self.shared
                .inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .queue
                .len()
        }

        /// `true` when no items are queued (racy, for monitoring only).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receives an item, blocking until one arrives or all senders are
        /// dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .shared
                    .not_empty
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Receives an item, waiting at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .shared
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                inner = guard;
                if res.timed_out() && inner.queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Receives an item if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of queued items (racy, for monitoring only).
        pub fn len(&self) -> usize {
            self.shared
                .inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .queue
                .len()
        }

        /// `true` when no items are queued (racy, for monitoring only).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
                inner.senders -= 1;
                inner.senders
            };
            if remaining == 0 {
                // Wake receivers blocked on an empty queue so they observe
                // the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
                inner.receivers -= 1;
                inner.receivers
            };
            if remaining == 0 {
                // Wake senders blocked on a full queue so they observe the
                // disconnect.
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Sender {{ len: {} }}", self.len())
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Receiver {{ len: {} }}", self.len())
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn unbounded_roundtrip_across_threads() {
            let (tx, rx) = unbounded();
            let h = thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn recv_reports_disconnect() {
            let (tx, rx) = unbounded::<i32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn bounded_send_blocks_until_popped() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let h = thread::spawn(move || {
                tx.send(2).unwrap(); // Blocks until the first item is taken.
                tx.len()
            });
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            h.join().unwrap();
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        }

        #[test]
        fn send_to_dropped_receiver_fails() {
            let (tx, rx) = bounded(1);
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn cloned_receivers_share_the_queue() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let a = rx1.recv().unwrap();
            let b = rx2.recv().unwrap();
            assert_eq!(a + b, 3);
        }
    }
}
